//! Direct and indirect parallel loops over unstructured sets.
//!
//! * [`par_loop_direct`] — every element writes only its own entries;
//!   trivially parallel.
//! * [`par_loop_colored`] — elements make *indirect* increments through
//!   maps; parallel execution proceeds color class by color class using a
//!   [`Coloring`] whose conflict-freedom guarantees race-freedom (OP2's
//!   OpenMP scheme).
//! * [`par_loop_gather`] — the "MPI vec" execution shape: elements are
//!   processed in fixed-width lanes with explicit gather/scatter staging
//!   buffers, and the extra staged bytes are recorded so the performance
//!   model can price the pack/unpack overhead the paper describes in §6.

use crate::access::{self, UKind, UScheduleObs};
use crate::color::{BlockColoring, Coloring};
use crate::set::DatU;
use bwb_ops::Profile;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Unstructured execution backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecModeU {
    /// Sequential over elements (pure MPI per-rank execution).
    Serial,
    /// Thread-parallel within each color class (the OpenMP backend).
    Colored,
}

/// Write view over one unstructured dataset.
///
/// Safety discipline mirrors `bwb-ops`: constructed by the drivers from
/// `&mut DatU` (exclusive for the loop's duration); parallel disjointness is
/// guaranteed by the coloring contract (no two same-color elements share an
/// indirect target) or by direct loops writing only their own element.
#[derive(Clone, Copy)]
struct WViewU<T> {
    ptr: *mut T,
    dim: usize,
    len: usize,
}

// SAFETY: the view is a raw base + extent over a `DatU` exclusively borrowed
// by the driver for the loop's duration; sending it to worker threads moves
// only the pointer, and the coloring / own-element contracts (type docs)
// keep concurrent element writes disjoint.
unsafe impl<T: Send> Send for WViewU<T> {}
// SAFETY: shared references only expose `write`/`read`, whose target
// disjointness across threads is guaranteed by the same driver contracts.
unsafe impl<T: Send> Sync for WViewU<T> {}

impl<T: Copy> WViewU<T> {
    #[inline]
    fn index(&self, e: usize, c: usize) -> usize {
        debug_assert!(c < self.dim);
        let idx = e * self.dim + c;
        assert!(
            idx < self.len,
            "write at element {e} comp {c} outside dataset"
        );
        idx
    }

    #[inline]
    fn write(&self, e: usize, c: usize, v: T) {
        let idx = self.index(e, c);
        // SAFETY: bounds asserted; disjointness per the driver contract.
        unsafe { *self.ptr.add(idx) = v }
    }

    #[inline]
    fn read(&self, e: usize, c: usize) -> T {
        let idx = self.index(e, c);
        // SAFETY: as in `write`.
        unsafe { *self.ptr.add(idx) }
    }
}

/// Kernel accessor over the output datasets. Unlike the structured case the
/// element index is explicit, because indirect loops write *mapped* targets.
pub struct UOut<'a, T> {
    views: &'a [WViewU<T>],
}

impl<T: Copy> UOut<'_, T> {
    /// Overwrite component `c` of element `e` of output dataset `f`.
    #[inline]
    pub fn set(&self, f: usize, e: usize, c: usize, v: T) {
        if access::recording_active_u() {
            access::note_access(f, e, UKind::Set);
        }
        self.views[f].write(e, c, v);
    }

    /// Read back (for read-modify-write of owned targets).
    #[inline]
    pub fn get(&self, f: usize, e: usize, c: usize) -> T {
        if access::recording_active_u() {
            access::note_access(f, e, UKind::Get);
        }
        self.views[f].read(e, c)
    }
}

impl UOut<'_, f64> {
    /// Increment — the canonical OP2 indirect access (`OP_INC`).
    #[inline]
    pub fn add(&self, f: usize, e: usize, c: usize, v: f64) {
        if access::recording_active_u() {
            access::note_access(f, e, UKind::Inc);
        }
        let cur = self.views[f].read(e, c);
        self.views[f].write(e, c, cur + v);
    }
}

impl UOut<'_, f32> {
    #[inline]
    pub fn add32(&self, f: usize, e: usize, c: usize, v: f32) {
        if access::recording_active_u() {
            access::note_access(f, e, UKind::Inc);
        }
        let cur = self.views[f].read(e, c);
        self.views[f].write(e, c, cur + v);
    }
}

fn uviews<T: Copy>(outs: &mut [&mut DatU<T>]) -> Vec<WViewU<T>> {
    outs.iter_mut()
        .map(|d| WViewU {
            ptr: d.raw_mut().as_mut_ptr(),
            dim: d.dim,
            len: d.raw().len(),
        })
        .collect()
}

/// Direct loop: `kernel(e, out)` may write only element `e` of each output.
#[allow(clippy::too_many_arguments)]
pub fn par_loop_direct<T, F>(
    profile: &mut Profile,
    name: &str,
    mode: ExecModeU,
    set_size: usize,
    outs: &mut [&mut DatU<T>],
    bytes_per_elem: usize,
    flops_per_elem: f64,
    kernel: F,
) where
    T: Copy + Send + Sync,
    F: Fn(usize, &UOut<T>) + Sync,
{
    let recording = access::recording_active_u();
    let mode = if recording { ExecModeU::Serial } else { mode };
    if recording {
        access::begin_uloop(
            name,
            set_size,
            outs.iter().map(|d| d.name.clone()).collect(),
            UScheduleObs::Direct,
        );
    }
    let views = uviews(outs);
    let body = |e: usize| {
        let out = UOut { views: &views };
        kernel(e, &out);
    };
    let mut tspan = bwb_trace::span(bwb_trace::Cat::Loop, name);
    let t0 = Instant::now();
    match mode {
        ExecModeU::Serial => {
            for e in 0..set_size {
                if recording {
                    access::set_current(e);
                }
                body(e);
            }
        }
        ExecModeU::Colored => (0..set_size).into_par_iter().for_each(body),
    }
    let seconds = t0.elapsed().as_secs_f64();
    tspan.set_args(
        (set_size * bytes_per_elem) as f64,
        set_size as f64 * flops_per_elem,
        set_size as f64,
    );
    drop(tspan);
    if recording {
        access::end_uloop();
    }
    profile.record(
        name,
        set_size,
        set_size * bytes_per_elem,
        set_size as f64 * flops_per_elem,
        seconds,
    );
}

/// Indirect loop: `kernel(e, out)` may increment mapped targets; the
/// `coloring` must be conflict-free for every map the kernel writes through
/// (build it with [`Coloring::greedy`] over those maps).
#[allow(clippy::too_many_arguments)]
pub fn par_loop_colored<T, F>(
    profile: &mut Profile,
    name: &str,
    mode: ExecModeU,
    coloring: &Coloring,
    outs: &mut [&mut DatU<T>],
    bytes_per_elem: usize,
    flops_per_elem: f64,
    kernel: F,
) where
    T: Copy + Send + Sync,
    F: Fn(usize, &UOut<T>) + Sync,
{
    let set_size = coloring.colors.len();
    let recording = access::recording_active_u();
    let mode = if recording { ExecModeU::Serial } else { mode };
    if recording {
        access::begin_uloop(
            name,
            set_size,
            outs.iter().map(|d| d.name.clone()).collect(),
            UScheduleObs::Colored {
                colors: coloring.colors.clone(),
                n_colors: coloring.n_colors,
            },
        );
    }
    let views = uviews(outs);
    let mut tspan = bwb_trace::span(bwb_trace::Cat::Loop, name);
    let t0 = Instant::now();
    match mode {
        ExecModeU::Serial => {
            // Sequential: element order, ignoring colors (no races possible).
            let out = UOut { views: &views };
            for e in 0..set_size {
                if recording {
                    access::set_current(e);
                }
                kernel(e, &out);
            }
        }
        ExecModeU::Colored => {
            for (color, class) in coloring.by_color.iter().enumerate() {
                let mut cspan = bwb_trace::span(bwb_trace::Cat::Color, "color_round");
                cspan.set_args(color as f64, class.len() as f64, 0.0);
                class.par_iter().for_each(|&e| {
                    let out = UOut { views: &views };
                    kernel(e as usize, &out);
                });
            }
        }
    }
    let seconds = t0.elapsed().as_secs_f64();
    tspan.set_args(
        (set_size * bytes_per_elem) as f64,
        set_size as f64 * flops_per_elem,
        set_size as f64,
    );
    drop(tspan);
    if recording {
        access::end_uloop();
    }
    profile.record(
        name,
        set_size,
        set_size * bytes_per_elem,
        set_size as f64 * flops_per_elem,
        seconds,
    );
}

/// Indirect loop executed at *block* granularity: within each block color
/// the blocks run in parallel, and each block's elements run sequentially
/// in ascending order. One parallel region (and barrier) per block color —
/// typically far fewer than the element-granularity schedule needs — and
/// each task touches consecutive elements, restoring gather locality.
///
/// The `coloring` must be conflict-free for every map the kernel writes
/// through (build it with [`BlockColoring::greedy`] over those maps).
#[allow(clippy::too_many_arguments)]
pub fn par_loop_block_colored<T, F>(
    profile: &mut Profile,
    name: &str,
    mode: ExecModeU,
    coloring: &BlockColoring,
    outs: &mut [&mut DatU<T>],
    bytes_per_elem: usize,
    flops_per_elem: f64,
    kernel: F,
) where
    T: Copy + Send + Sync,
    F: Fn(usize, &UOut<T>) + Sync,
{
    let set_size = coloring.set_size;
    let recording = access::recording_active_u();
    let mode = if recording { ExecModeU::Serial } else { mode };
    if recording {
        // Expand block colors to per-element colors so analyzers see one
        // uniform schedule shape.
        let colors: Vec<u32> = (0..set_size)
            .map(|e| coloring.block_colors[e / coloring.block_size])
            .collect();
        access::begin_uloop(
            name,
            set_size,
            outs.iter().map(|d| d.name.clone()).collect(),
            UScheduleObs::Colored {
                colors,
                n_colors: coloring.n_colors,
            },
        );
    }
    let views = uviews(outs);
    let mut tspan = bwb_trace::span(bwb_trace::Cat::Loop, name);
    let t0 = Instant::now();
    match mode {
        ExecModeU::Serial => {
            let out = UOut { views: &views };
            for e in 0..set_size {
                if recording {
                    access::set_current(e);
                }
                kernel(e, &out);
            }
        }
        ExecModeU::Colored => {
            for (color, class) in coloring.by_color.iter().enumerate() {
                let mut cspan = bwb_trace::span(bwb_trace::Cat::Color, "color_round");
                // Elements, not blocks: the per-round work actually executed.
                let elems: usize = class
                    .iter()
                    .map(|&b| coloring.block_range(b as usize).len())
                    .sum();
                cspan.set_args(color as f64, elems as f64, 0.0);
                class.par_iter().for_each(|&b| {
                    let out = UOut { views: &views };
                    for e in coloring.block_range(b as usize) {
                        kernel(e, &out);
                    }
                });
            }
        }
    }
    let seconds = t0.elapsed().as_secs_f64();
    tspan.set_args(
        (set_size * bytes_per_elem) as f64,
        set_size as f64 * flops_per_elem,
        set_size as f64,
    );
    drop(tspan);
    if recording {
        access::end_uloop();
    }
    profile.record(
        name,
        set_size,
        set_size * bytes_per_elem,
        set_size as f64 * flops_per_elem,
        seconds,
    );
}

/// One staged indirect write of the gather/scatter shape.
#[derive(Clone, Copy)]
struct StagedWrite<T> {
    f: u32,
    e: u32,
    c: u32,
    v: T,
    /// `true` for increments (`OP_INC`), `false` for overwrites.
    inc: bool,
}

/// Reusable pack/unpack staging for [`par_loop_gather`].
///
/// OP2's vectorized generated code stages indirect operands through
/// per-thread scratch buffers that live across loop invocations; holding a
/// `GatherScratch` at the call site and passing it to every invocation
/// mirrors that — the scatter buffer is allocated once and reused across
/// lane batches *and* across calls, instead of a fresh `Vec` each time.
#[derive(Default)]
pub struct GatherScratch<T> {
    staged: Vec<StagedWrite<T>>,
}

impl<T> GatherScratch<T> {
    pub fn new() -> Self {
        GatherScratch { staged: Vec::new() }
    }
}

/// Kernel accessor for the gather/scatter shape: indirect writes are staged
/// into the scatter buffer and applied in element order when the lane batch
/// completes, like OP2's pack/unpack code. `get` reads the pre-batch value
/// (kernels of the vec shape do not read targets they increment — the
/// standard `OP_INC` contract).
pub struct UStage<'a, T> {
    views: &'a [WViewU<T>],
    staged: &'a std::cell::RefCell<Vec<StagedWrite<T>>>,
}

impl<T: Copy> UStage<'_, T> {
    /// Stage an overwrite of component `c` of element `e` of dataset `f`.
    #[inline]
    pub fn set(&self, f: usize, e: usize, c: usize, v: T) {
        if access::recording_active_u() {
            access::note_access(f, e, UKind::Set);
        }
        self.staged.borrow_mut().push(StagedWrite {
            f: f as u32,
            e: e as u32,
            c: c as u32,
            v,
            inc: false,
        });
    }

    /// Stage an increment — the canonical OP2 indirect access (`OP_INC`).
    #[inline]
    pub fn add(&self, f: usize, e: usize, c: usize, v: T) {
        if access::recording_active_u() {
            access::note_access(f, e, UKind::Inc);
        }
        self.staged.borrow_mut().push(StagedWrite {
            f: f as u32,
            e: e as u32,
            c: c as u32,
            v,
            inc: true,
        });
    }

    /// Read the pre-batch value (staged writes of this batch are invisible).
    #[inline]
    pub fn get(&self, f: usize, e: usize, c: usize) -> T {
        if access::recording_active_u() {
            access::note_access(f, e, UKind::Get);
        }
        self.views[f].read(e, c)
    }
}

/// Gather/scatter ("MPI vec") loop shape: elements are processed serially in
/// lanes of `lanes`, with indirect writes staged through the reusable
/// scatter buffer in `scratch` and applied in element order at the end of
/// each batch. Functionally identical to a serial loop for the vec-shape
/// access contract (indirect targets written by increments, not read in the
/// same batch); the staged bytes (`indirect_bytes_per_elem × set_size`,
/// both directions) are added to the loop's byte account, which is how the
/// pack/unpack overhead of the paper's vectorized implementation enters the
/// performance model.
#[allow(clippy::too_many_arguments)]
pub fn par_loop_gather<T, F>(
    profile: &mut Profile,
    name: &str,
    lanes: usize,
    set_size: usize,
    outs: &mut [&mut DatU<T>],
    scratch: &mut GatherScratch<T>,
    bytes_per_elem: usize,
    indirect_bytes_per_elem: usize,
    flops_per_elem: f64,
    kernel: F,
) where
    T: Copy + Send + Sync + std::ops::Add<Output = T>,
    F: Fn(usize, &UStage<T>),
{
    assert!(lanes >= 1);
    let recording = access::recording_active_u();
    if recording {
        access::begin_uloop(
            name,
            set_size,
            outs.iter().map(|d| d.name.clone()).collect(),
            UScheduleObs::Gather,
        );
    }
    let views = uviews(outs);
    let staged = std::cell::RefCell::new(std::mem::take(&mut scratch.staged));
    let mut tspan = bwb_trace::span(bwb_trace::Cat::Loop, name);
    let t0 = Instant::now();
    let mut e = 0;
    while e < set_size {
        let hi = (e + lanes).min(set_size);
        // "Gather"/compute: kernels read operands and stage their indirect
        // writes into the scatter buffer.
        {
            let _g = bwb_trace::span(bwb_trace::Cat::Other, "gather_batch");
            let out = UStage {
                views: &views,
                staged: &staged,
            };
            for ee in e..hi {
                if recording {
                    access::set_current(ee);
                }
                kernel(ee, &out);
            }
        }
        // "Scatter": apply the batch in element order (drain keeps the
        // buffer's capacity for the next batch).
        {
            let _s = bwb_trace::span(bwb_trace::Cat::Other, "scatter_batch");
            for w in staged.borrow_mut().drain(..) {
                let view = &views[w.f as usize];
                let v = if w.inc {
                    view.read(w.e as usize, w.c as usize) + w.v
                } else {
                    w.v
                };
                view.write(w.e as usize, w.c as usize, v);
            }
        }
        e = hi;
    }
    let seconds = t0.elapsed().as_secs_f64();
    tspan.set_args(
        (set_size * (bytes_per_elem + 2 * indirect_bytes_per_elem)) as f64,
        set_size as f64 * flops_per_elem,
        set_size as f64,
    );
    drop(tspan);
    if recording {
        access::end_uloop();
    }
    scratch.staged = staged.into_inner();
    profile.record(
        name,
        set_size,
        set_size * (bytes_per_elem + 2 * indirect_bytes_per_elem),
        set_size as f64 * flops_per_elem,
        seconds,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::{Map, Set};

    fn ring_mesh(n: usize) -> (Set, Set, Map) {
        let nodes = Set::new("nodes", n);
        let edges = Set::new("edges", n);
        let idx: Vec<u32> = (0..n)
            .flat_map(|e| [e as u32, ((e + 1) % n) as u32])
            .collect();
        let map = Map::new("e2n", &edges, &nodes, 2, idx);
        (nodes, edges, map)
    }

    #[test]
    fn direct_loop_writes_own_element() {
        let s = Set::new("s", 10);
        let mut d = DatU::<f64>::new("d", &s, 2);
        let mut p = Profile::new();
        par_loop_direct(
            &mut p,
            "init",
            ExecModeU::Colored,
            10,
            &mut [&mut d],
            16,
            0.0,
            |e, out| {
                out.set(0, e, 0, e as f64);
                out.set(0, e, 1, -(e as f64));
            },
        );
        assert_eq!(d.get(7, 0), 7.0);
        assert_eq!(d.get(7, 1), -7.0);
    }

    #[test]
    fn colored_indirect_increment_matches_serial() {
        let n = 101;
        let (nodes, _edges, map) = ring_mesh(n);
        let coloring = Coloring::greedy(n, &[&map]);
        assert!(coloring.validate(&[&map]));

        let run = |mode: ExecModeU| {
            let mut acc = DatU::<f64>::new("acc", &nodes, 1);
            let mut p = Profile::new();
            let m = &map;
            par_loop_colored(
                &mut p,
                "inc",
                mode,
                &coloring,
                &mut [&mut acc],
                16,
                2.0,
                |e, out| {
                    let w = (e + 1) as f64;
                    out.add(0, m.get(e, 0), 0, w);
                    out.add(0, m.get(e, 1), 0, -0.5 * w);
                },
            );
            acc
        };
        let serial = run(ExecModeU::Serial);
        let colored = run(ExecModeU::Colored);
        assert_eq!(serial.max_abs_diff(&colored), 0.0);
        // Conservation check: each edge adds w - w/2 = w/2 in total.
        let expect: f64 = (1..=n).map(|w| w as f64 * 0.5).sum();
        assert!((serial.sum() - expect).abs() < 1e-9);
    }

    #[test]
    fn gather_loop_matches_and_accounts_staging() {
        let n = 64;
        let (nodes, _edges, map) = ring_mesh(n);
        let mut acc_ref = DatU::<f64>::new("r", &nodes, 1);
        let mut acc_vec = DatU::<f64>::new("v", &nodes, 1);
        let coloring = Coloring::trivial(n);
        let mut p1 = Profile::new();
        let mut p2 = Profile::new();
        let m = &map;
        par_loop_colored(
            &mut p1,
            "k",
            ExecModeU::Serial,
            &coloring,
            &mut [&mut acc_ref],
            8,
            1.0,
            |e, out| {
                out.add(0, m.get(e, 0), 0, 1.0);
            },
        );
        let mut scratch = GatherScratch::new();
        par_loop_gather(
            &mut p2,
            "k",
            8,
            n,
            &mut [&mut acc_vec],
            &mut scratch,
            8,
            16,
            1.0,
            |e, out| {
                out.add(0, m.get(e, 0), 0, 1.0);
            },
        );
        assert_eq!(acc_ref.max_abs_diff(&acc_vec), 0.0);
        // Vec loop accounts 8 + 2×16 bytes per element.
        assert_eq!(p2.get("k").unwrap().bytes, n * 40);
        assert_eq!(p1.get("k").unwrap().bytes, n * 8);
    }

    #[test]
    fn block_colored_indirect_increment_matches_serial() {
        let n = 97;
        let (nodes, _edges, map) = ring_mesh(n);
        for block_size in [1usize, 4, 16, 97] {
            let coloring = BlockColoring::greedy(n, block_size, &[&map]);
            assert!(coloring.validate(&[&map]));
            let run = |mode: ExecModeU| {
                let mut acc = DatU::<f64>::new("acc", &nodes, 1);
                let mut p = Profile::new();
                let m = &map;
                par_loop_block_colored(
                    &mut p,
                    "inc",
                    mode,
                    &coloring,
                    &mut [&mut acc],
                    16,
                    2.0,
                    |e, out| {
                        let w = (e + 1) as f64;
                        out.add(0, m.get(e, 0), 0, w);
                        out.add(0, m.get(e, 1), 0, -0.5 * w);
                    },
                );
                (acc, p)
            };
            let (serial, ps) = run(ExecModeU::Serial);
            let (colored, pc) = run(ExecModeU::Colored);
            assert_eq!(
                serial.max_abs_diff(&colored),
                0.0,
                "block_size={block_size}"
            );
            // Accounting identical between modes.
            assert_eq!(ps.get("inc").unwrap().bytes, pc.get("inc").unwrap().bytes);
            assert_eq!(ps.get("inc").unwrap().points, n);
        }
    }

    #[test]
    fn gather_scratch_reused_across_calls() {
        let n = 32;
        let (nodes, _edges, map) = ring_mesh(n);
        let mut acc = DatU::<f64>::new("acc", &nodes, 1);
        let mut scratch = GatherScratch::new();
        let m = &map;
        let mut p = Profile::new();
        for _ in 0..3 {
            par_loop_gather(
                &mut p,
                "k",
                4,
                n,
                &mut [&mut acc],
                &mut scratch,
                8,
                16,
                1.0,
                |e, out| {
                    out.add(0, m.get(e, 0), 0, 1.0);
                },
            );
        }
        // Buffer kept its capacity (one batch's worth of staged writes) and
        // every call produced the same increments.
        assert!(scratch.staged.capacity() >= 4);
        assert!(scratch.staged.is_empty());
        assert_eq!(acc.sum(), 3.0 * n as f64);
        assert_eq!(p.get("k").unwrap().calls, 3);
    }

    #[test]
    fn staged_set_and_get_preserve_batch_semantics() {
        // `get` sees the pre-batch value; staged `set`s land at batch end
        // in element order (last writer wins).
        let s = Set::new("s", 4);
        let mut d = DatU::<f64>::new("d", &s, 1);
        d.fill(7.0);
        let mut p = Profile::new();
        let mut scratch = GatherScratch::new();
        par_loop_gather(
            &mut p,
            "k",
            4,
            4,
            &mut [&mut d],
            &mut scratch,
            8,
            0,
            0.0,
            |e, out| {
                // Every element overwrites slot 0; reads still see 7.0.
                assert_eq!(out.get(0, 0, 0), 7.0);
                out.set(0, 0, 0, e as f64);
            },
        );
        assert_eq!(d.get(0, 0), 3.0);
    }

    #[test]
    fn reading_back_written_values() {
        let s = Set::new("s", 4);
        let mut d = DatU::<f64>::new("d", &s, 1);
        d.fill(10.0);
        let mut p = Profile::new();
        par_loop_direct(
            &mut p,
            "rmw",
            ExecModeU::Serial,
            4,
            &mut [&mut d],
            8,
            1.0,
            |e, out| {
                let v = out.get(0, e, 0);
                out.set(0, e, 0, v * 2.0);
            },
        );
        assert_eq!(d.get(3, 0), 20.0);
    }

    #[test]
    fn f32_increments() {
        let s = Set::new("s", 3);
        let mut d = DatU::<f32>::new("d", &s, 1);
        let mut p = Profile::new();
        par_loop_direct(
            &mut p,
            "k",
            ExecModeU::Serial,
            3,
            &mut [&mut d],
            4,
            0.0,
            |e, out| {
                out.add32(0, e, 0, 1.5);
            },
        );
        assert_eq!(d.get(2, 0), 1.5);
    }

    #[test]
    fn empty_set_is_noop() {
        let s = Set::new("s", 0);
        let mut d = DatU::<f64>::new("d", &s, 1);
        let mut p = Profile::new();
        par_loop_direct(
            &mut p,
            "k",
            ExecModeU::Colored,
            0,
            &mut [&mut d],
            8,
            1.0,
            |_e, _o| panic!("must not run"),
        );
        assert_eq!(p.get("k").unwrap().points, 0);
    }
}
