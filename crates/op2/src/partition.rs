//! Owner-compute partitioning and halo planning.
//!
//! The paper partitions unstructured meshes over MPI with PT-Scotch ("we
//! perform a standard owner-compute decomposition of the mesh over MPI
//! using PT-Scotch", §4). PT-Scotch is a proprietary-quality graph
//! partitioner we substitute with **recursive coordinate bisection** (RCB):
//! geometrically balanced, deterministic, and producing the same *kind* of
//! partitions (compact, low-surface) for the mesh classes at hand.
//!
//! [`HaloPlan`] derives from a partition the import/export lists each rank
//! would exchange per iteration — the message counts and volumes the
//! performance model prices for Figures 4–7.

use crate::set::Map;
use serde::{Deserialize, Serialize};

/// Recursive coordinate bisection: split `coords` (dim-major per element:
/// `[x0,y0,(z0,) x1,y1,...]`) into `nparts` balanced parts. `nparts` need
/// not be a power of two — splits are sized proportionally.
pub fn rcb_partition(coords: &[f64], dim: usize, nparts: usize) -> Vec<u32> {
    assert!((1..=3).contains(&dim));
    assert!(nparts >= 1);
    assert_eq!(coords.len() % dim, 0);
    let n = coords.len() / dim;
    let mut part = vec![0u32; n];
    let mut elems: Vec<u32> = (0..n as u32).collect();
    rcb_recurse(coords, dim, &mut elems, 0, nparts as u32, &mut part);
    part
}

fn rcb_recurse(
    coords: &[f64],
    dim: usize,
    elems: &mut [u32],
    first_part: u32,
    nparts: u32,
    out: &mut [u32],
) {
    if nparts <= 1 || elems.is_empty() {
        for &e in elems.iter() {
            out[e as usize] = first_part;
        }
        return;
    }
    // Widest dimension of this subset's bounding box.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &e in elems.iter() {
        for d in 0..dim {
            let v = coords[e as usize * dim + d];
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    let split_dim = (0..dim)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
        .unwrap();

    // Proportional split: left gets floor(nparts/2)/nparts of the elements.
    let left_parts = nparts / 2;
    let right_parts = nparts - left_parts;
    let split_at = (elems.len() as u64 * left_parts as u64 / nparts as u64) as usize;

    elems.sort_unstable_by(|&a, &b| {
        let va = coords[a as usize * dim + split_dim];
        let vb = coords[b as usize * dim + split_dim];
        va.partial_cmp(&vb).unwrap().then(a.cmp(&b))
    });
    let (left, right) = elems.split_at_mut(split_at);
    rcb_recurse(coords, dim, left, first_part, left_parts, out);
    rcb_recurse(
        coords,
        dim,
        right,
        first_part + left_parts,
        right_parts,
        out,
    );
}

/// How a source element (edge) whose two endpoints live in different
/// parts picks its owner. Interior edges always go to their endpoints'
/// common owner; the rule only decides cut edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutEdgeRule {
    /// Every cut edge goes to its first endpoint's part. Simple, but one
    /// side of each RCB cut then exports its whole interface while the
    /// other exports nothing — commcheck's imbalance analyzer flags the
    /// resulting >2x halo-byte skew. Kept as the planted-negative rule
    /// the fixture suite exercises.
    FirstEndpoint,
    /// Cut edges split between the two sides by endpoint-index-sum
    /// parity: on average half of each interface is owned by each side,
    /// so the halo exchange stays balanced. The production rule.
    Parity,
}

/// Assign an owner part to every source element of a binary (arity-2)
/// connectivity, given the target-set (node) partition. Shared by the
/// production owner-compute drivers and the fixture suite so the two
/// stay comparable rule-for-rule.
pub fn edge_ownership(e2n: &Map, node_part: &[u32], rule: CutEdgeRule) -> Vec<u32> {
    assert_eq!(e2n.arity, 2, "edge ownership needs an arity-2 map");
    assert_eq!(node_part.len(), e2n.to_size);
    (0..e2n.from_size)
        .map(|e| {
            let a = e2n.get(e, 0);
            let b = e2n.get(e, 1);
            let (pa, pb) = (node_part[a], node_part[b]);
            match rule {
                CutEdgeRule::FirstEndpoint => pa,
                CutEdgeRule::Parity => {
                    if pa == pb || (a + b).is_multiple_of(2) {
                        pa
                    } else {
                        pb
                    }
                }
            }
        })
        .collect()
}

/// Per-rank halo exchange plan derived from a partition: for every pair of
/// ranks, how many target-set elements rank *a* must import from rank *b*
/// because one of *a*'s source elements references them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HaloPlan {
    pub nparts: usize,
    /// `imports[a][b]` = elements rank `a` imports from rank `b`.
    pub imports: Vec<Vec<usize>>,
    /// Total cut edges (source elements whose targets span ≥2 parts).
    pub cut_elements: usize,
}

impl HaloPlan {
    /// Build a plan for source elements partitioned by `src_part` accessing
    /// the target set partitioned by `tgt_part` through `map`.
    pub fn build(map: &Map, src_part: &[u32], tgt_part: &[u32], nparts: usize) -> Self {
        assert_eq!(src_part.len(), map.from_size);
        assert_eq!(tgt_part.len(), map.to_size);
        // Unique imports per (rank, target).
        let mut needed: Vec<std::collections::HashSet<u32>> =
            vec![std::collections::HashSet::new(); nparts];
        let mut cut_elements = 0usize;
        for (e, &sp) in src_part.iter().enumerate() {
            let owner = sp as usize;
            let mut cut = false;
            for &t in map.targets(e) {
                let towner = tgt_part[t as usize] as usize;
                if towner != owner {
                    needed[owner].insert(t);
                    cut = true;
                }
            }
            cut_elements += usize::from(cut);
        }
        let mut imports = vec![vec![0usize; nparts]; nparts];
        for (a, set) in needed.iter().enumerate() {
            for &t in set {
                let b = tgt_part[t as usize] as usize;
                imports[a][b] += 1;
            }
        }
        HaloPlan {
            nparts,
            imports,
            cut_elements,
        }
    }

    /// Total imported elements across all ranks.
    pub fn total_imports(&self) -> usize {
        self.imports.iter().flatten().sum()
    }

    /// Number of (ordered) rank pairs that exchange at least one element —
    /// i.e. the number of messages per halo exchange.
    pub fn message_count(&self) -> usize {
        self.imports.iter().flatten().filter(|&&n| n > 0).count()
    }

    /// Exchange volume in bytes per halo exchange for a dataset of
    /// `elem_bytes` per element (each import is one element sent once).
    pub fn exchange_bytes(&self, elem_bytes: usize) -> usize {
        self.total_imports() * elem_bytes
    }

    /// Largest per-rank import count — the imbalance-critical quantity.
    pub fn max_rank_imports(&self) -> usize {
        self.imports
            .iter()
            .map(|row| row.iter().sum::<usize>())
            .max()
            .unwrap_or(0)
    }
}

/// Partition balance: max part size / ideal part size (1.0 = perfect).
pub fn partition_imbalance(part: &[u32], nparts: usize) -> f64 {
    if part.is_empty() || nparts == 0 {
        return 1.0;
    }
    let mut counts = vec![0usize; nparts];
    for &p in part {
        counts[p as usize] += 1;
    }
    let max = *counts.iter().max().unwrap();
    let ideal = part.len() as f64 / nparts as f64;
    max as f64 / ideal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::Set;

    fn grid_coords(nx: usize, ny: usize) -> Vec<f64> {
        let mut c = Vec::with_capacity(nx * ny * 2);
        for j in 0..ny {
            for i in 0..nx {
                c.push(i as f64);
                c.push(j as f64);
            }
        }
        c
    }

    #[test]
    fn rcb_covers_all_parts_balanced() {
        let coords = grid_coords(16, 16);
        for nparts in [1usize, 2, 3, 4, 7, 8, 16] {
            let part = rcb_partition(&coords, 2, nparts);
            assert_eq!(part.len(), 256);
            let used: std::collections::HashSet<u32> = part.iter().copied().collect();
            assert_eq!(used.len(), nparts, "nparts={nparts}");
            assert!(part.iter().all(|&p| (p as usize) < nparts));
            let imb = partition_imbalance(&part, nparts);
            assert!(imb < 1.1, "nparts={nparts} imbalance {imb}");
        }
    }

    #[test]
    fn rcb_partitions_are_spatially_compact() {
        // On a 2-part split of a wide domain, the split must be by x.
        let coords = grid_coords(32, 4);
        let part = rcb_partition(&coords, 2, 2);
        for j in 0..4 {
            for i in 0..32 {
                let p = part[j * 32 + i];
                assert_eq!(p, u32::from(i >= 16), "element ({i},{j})");
            }
        }
    }

    #[test]
    fn rcb_single_part_is_all_zero() {
        let coords = grid_coords(4, 4);
        let part = rcb_partition(&coords, 2, 1);
        assert!(part.iter().all(|&p| p == 0));
    }

    #[test]
    fn rcb_3d() {
        let mut coords = Vec::new();
        for k in 0..4 {
            for j in 0..4 {
                for i in 0..4 {
                    coords.extend([i as f64, j as f64, k as f64]);
                }
            }
        }
        let part = rcb_partition(&coords, 3, 8);
        let imb = partition_imbalance(&part, 8);
        assert!(imb < 1.01);
    }

    /// Edge→node line mesh for halo tests.
    fn line(n_edges: usize) -> Map {
        let nodes = Set::new("nodes", n_edges + 1);
        let edges = Set::new("edges", n_edges);
        let idx: Vec<u32> = (0..n_edges)
            .flat_map(|e| [e as u32, e as u32 + 1])
            .collect();
        Map::new("e2n", &edges, &nodes, 2, idx)
    }

    #[test]
    fn halo_plan_line_mesh_two_parts() {
        let m = line(10);
        // Edges 0..5 → part 0, 5..10 → part 1; nodes 0..=5 → 0, 6..=10 → 1.
        let src: Vec<u32> = (0..10).map(|e| u32::from(e >= 5)).collect();
        let tgt: Vec<u32> = (0..11).map(|n| u32::from(n >= 6)).collect();
        let plan = HaloPlan::build(&m, &src, &tgt, 2);
        // Edge 5 (part 1) touches node 5 (part 0) → part 1 imports 1 node.
        assert_eq!(plan.imports[1][0], 1);
        assert_eq!(plan.imports[0][1], 0);
        assert_eq!(plan.total_imports(), 1);
        assert_eq!(plan.message_count(), 1);
        assert_eq!(plan.cut_elements, 1);
        assert_eq!(plan.exchange_bytes(8), 8);
    }

    #[test]
    fn halo_plan_no_cut_when_single_part() {
        let m = line(10);
        let src = vec![0u32; 10];
        let tgt = vec![0u32; 11];
        let plan = HaloPlan::build(&m, &src, &tgt, 1);
        assert_eq!(plan.total_imports(), 0);
        assert_eq!(plan.message_count(), 0);
    }

    #[test]
    fn more_parts_more_cut_volume() {
        // 2-D quad grid of cells → nodes; more parts cut more.
        let nx = 16;
        let nodes = Set::new("nodes", (nx + 1) * (nx + 1));
        let cells = Set::new("cells", nx * nx);
        let mut idx = Vec::new();
        let mut coords = Vec::new();
        for cy in 0..nx {
            for cx in 0..nx {
                let n0 = (cy * (nx + 1) + cx) as u32;
                idx.extend([n0, n0 + 1, n0 + nx as u32 + 1, n0 + nx as u32 + 2]);
                coords.extend([cx as f64, cy as f64]);
            }
        }
        let map = Map::new("c2n", &cells, &nodes, 4, idx);
        let mut node_coords = Vec::new();
        for ny_ in 0..=nx {
            for nx_ in 0..=nx {
                node_coords.extend([nx_ as f64, ny_ as f64]);
            }
        }
        let volumes: Vec<usize> = [2usize, 4, 16]
            .iter()
            .map(|&np| {
                let cp = rcb_partition(&coords, 2, np);
                let npart = rcb_partition(&node_coords, 2, np);
                HaloPlan::build(&map, &cp, &npart, np).total_imports()
            })
            .collect();
        assert!(
            volumes[0] < volumes[1] && volumes[1] < volumes[2],
            "{volumes:?}"
        );
    }

    #[test]
    fn imbalance_of_skewed_partition() {
        let part = vec![0u32, 0, 0, 1];
        assert!((partition_imbalance(&part, 2) - 1.5).abs() < 1e-12);
    }
}
