//! Executable halo exchange for partitioned unstructured meshes.
//!
//! [`crate::partition::HaloPlan`] counts what ranks *would* exchange; this
//! module builds the concrete import/export lists for one rank and moves
//! dataset values through a [`bwb_shmpi::Comm`] — the owner-compute
//! execution scheme of OP2 over MPI (paper §4): each rank owns a subset of
//! the target set, computes over its own source elements, and refreshes
//! ghost copies of off-rank targets before each indirect loop.
//!
//! The layout convention: datasets remain *globally indexed* (each rank
//! holds the full-size array but only its owned entries plus refreshed
//! ghosts are meaningful). This mirrors OP2's debug/sequential layout and
//! keeps the kernels identical between serial and distributed runs, at the
//! cost of memory scalability — acceptable for the in-process rank counts
//! this suite runs.

use crate::set::{DatU, Map};
use bwb_shmpi::Comm;
use serde::{Deserialize, Serialize};

/// Tag space for unstructured halo traffic (public for commcheck and
/// tag-discipline tests). Forward (gather) exchanges use `UHALO_TAG`;
/// reverse (scatter-add) exchanges use `UHALO_TAG + 1` so a gather and a
/// scatter between the same rank pair can never cross-match.
pub const UHALO_TAG: u32 = 0x5000_0000;

/// Tag for reverse-flow contribution traffic ([`RankHalo::scatter_add`]).
pub const UHALO_SCATTER_TAG: u32 = UHALO_TAG + 1;

/// One rank's exchange lists for a (map, partition) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankHalo {
    pub rank: usize,
    pub nparts: usize,
    /// `imports[p]` = target elements this rank needs from rank `p`
    /// (sorted; empty for p == rank).
    pub imports: Vec<Vec<u32>>,
    /// `exports[p]` = owned target elements rank `p` needs from us.
    pub exports: Vec<Vec<u32>>,
}

impl RankHalo {
    /// Build the lists for `rank`: a target element is imported when one of
    /// the rank's source elements references it through `map` and it is
    /// owned elsewhere. Exports are derived symmetrically, so that
    /// `RankHalo::build` called on every rank yields matching pairs.
    pub fn build(
        map: &Map,
        src_part: &[u32],
        tgt_part: &[u32],
        nparts: usize,
        rank: usize,
    ) -> Self {
        assert_eq!(src_part.len(), map.from_size);
        assert_eq!(tgt_part.len(), map.to_size);
        assert!(rank < nparts);

        // All (owner_of_source, target) needs, deduplicated.
        let mut need: Vec<std::collections::BTreeSet<u32>> =
            vec![std::collections::BTreeSet::new(); nparts];
        for (e, &sp) in src_part.iter().enumerate() {
            let owner = sp as usize;
            for &t in map.targets(e) {
                if tgt_part[t as usize] as usize != owner {
                    need[owner].insert(t);
                }
            }
        }

        let imports: Vec<Vec<u32>> = (0..nparts)
            .map(|p| {
                if p == rank {
                    return Vec::new();
                }
                need[rank]
                    .iter()
                    .copied()
                    .filter(|&t| tgt_part[t as usize] as usize == p)
                    .collect()
            })
            .collect();
        let exports: Vec<Vec<u32>> = (0..nparts)
            .map(|p| {
                if p == rank {
                    return Vec::new();
                }
                need[p]
                    .iter()
                    .copied()
                    .filter(|&t| tgt_part[t as usize] as usize == rank)
                    .collect()
            })
            .collect();
        RankHalo {
            rank,
            nparts,
            imports,
            exports,
        }
    }

    pub fn total_imports(&self) -> usize {
        self.imports.iter().map(|v| v.len()).sum()
    }

    pub fn total_exports(&self) -> usize {
        self.exports.iter().map(|v| v.len()).sum()
    }

    /// Refresh the ghost entries of `dat`: send owned exported elements,
    /// receive imports into their global slots. Non-neighbours exchange
    /// nothing. Export buffers are drawn from the rank-local
    /// [`bwb_shmpi::bufpool`] and received buffers are returned to it, so a
    /// steady sequence of exchanges recycles the same allocations.
    pub fn exchange<T: Copy + Send + 'static>(&self, comm: &mut Comm, dat: &mut DatU<T>) {
        assert_eq!(comm.rank(), self.rank, "halo built for a different rank");
        assert_eq!(comm.size(), self.nparts);
        comm.set_comm_ctx(&dat.name);
        let dim = dat.dim;
        // Post all sends first (eager), then receive.
        for p in 0..self.nparts {
            if self.exports[p].is_empty() {
                continue;
            }
            let mut buf: Vec<T> = bwb_shmpi::bufpool::take();
            buf.reserve(self.exports[p].len() * dim);
            for &t in &self.exports[p] {
                buf.extend_from_slice(dat.elem(t as usize));
            }
            comm.send(p, UHALO_TAG, buf);
        }
        for p in 0..self.nparts {
            if self.imports[p].is_empty() {
                continue;
            }
            let buf = comm.recv::<T>(p, UHALO_TAG);
            assert_eq!(buf.len(), self.imports[p].len() * dim, "halo payload size");
            for (k, &t) in self.imports[p].iter().enumerate() {
                for c in 0..dim {
                    dat.set(t as usize, c, buf[k * dim + c]);
                }
            }
            bwb_shmpi::bufpool::put(buf);
        }
        comm.clear_comm_ctx();
    }

    /// Reverse-flow exchange: each rank *sends* the contributions it
    /// accumulated into its ghost copies (the `imports` slots) back to the
    /// owners, which *add* them into their owned entries. This is the
    /// communication step of OP2's `OP_INC` indirect loops under
    /// owner-compute: compute over owned source elements, scatter partial
    /// sums to ghost targets, then fold the ghosts back onto the owners.
    pub fn scatter_add<T>(&self, comm: &mut Comm, dat: &mut DatU<T>)
    where
        T: Copy + Send + std::ops::AddAssign + 'static,
    {
        assert_eq!(comm.rank(), self.rank, "halo built for a different rank");
        assert_eq!(comm.size(), self.nparts);
        comm.set_comm_ctx(&dat.name);
        let dim = dat.dim;
        // Send my ghost contributions to each owner (reverse of exchange:
        // imports are outgoing here, exports incoming).
        for p in 0..self.nparts {
            if self.imports[p].is_empty() {
                continue;
            }
            let mut buf: Vec<T> = bwb_shmpi::bufpool::take();
            buf.reserve(self.imports[p].len() * dim);
            for &t in &self.imports[p] {
                buf.extend_from_slice(dat.elem(t as usize));
            }
            comm.send(p, UHALO_SCATTER_TAG, buf);
        }
        for p in 0..self.nparts {
            if self.exports[p].is_empty() {
                continue;
            }
            let buf = comm.recv::<T>(p, UHALO_SCATTER_TAG);
            assert_eq!(
                buf.len(),
                self.exports[p].len() * dim,
                "scatter payload size"
            );
            for (k, &t) in self.exports[p].iter().enumerate() {
                for c in 0..dim {
                    let mut v = dat.get(t as usize, c);
                    v += buf[k * dim + c];
                    dat.set(t as usize, c, v);
                }
            }
            bwb_shmpi::bufpool::put(buf);
        }
        comm.clear_comm_ctx();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::rcb_partition;
    use crate::set::Set;
    use bwb_shmpi::Universe;

    /// Line mesh: edge e → nodes (e, e+1); edges/nodes partitioned in
    /// contiguous blocks.
    fn line(n_edges: usize) -> Map {
        let nodes = Set::new("nodes", n_edges + 1);
        let edges = Set::new("edges", n_edges);
        let idx: Vec<u32> = (0..n_edges)
            .flat_map(|e| [e as u32, e as u32 + 1])
            .collect();
        Map::new("e2n", &edges, &nodes, 2, idx)
    }

    fn block_part(n: usize, nparts: usize) -> Vec<u32> {
        (0..n).map(|i| ((i * nparts) / n) as u32).collect()
    }

    #[test]
    fn imports_and_exports_are_symmetric_across_ranks() {
        let map = line(20);
        let src = block_part(20, 4);
        let tgt = block_part(21, 4);
        let halos: Vec<RankHalo> = (0..4)
            .map(|r| RankHalo::build(&map, &src, &tgt, 4, r))
            .collect();
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(
                    halos[a].imports[b], halos[b].exports[a],
                    "rank {a} imports from {b} must equal {b}'s exports to {a}"
                );
            }
        }
    }

    #[test]
    fn line_mesh_boundary_nodes_are_imported() {
        let map = line(10);
        let src = block_part(10, 2);
        let tgt = block_part(11, 2);
        // Rank 1 owns edges 5..10 → needs node 5 (owned by rank 0).
        let h1 = RankHalo::build(&map, &src, &tgt, 2, 1);
        assert_eq!(h1.imports[0], vec![5]);
        assert_eq!(h1.total_imports(), 1);
        let h0 = RankHalo::build(&map, &src, &tgt, 2, 0);
        assert_eq!(h0.exports[1], vec![5]);
        assert_eq!(h0.total_imports(), 0, "rank 0's edges only touch nodes ≤ 5");
    }

    #[test]
    fn exchange_moves_owner_values_into_ghosts() {
        let map = line(12);
        let src = block_part(12, 3);
        let tgt = block_part(13, 3);
        let nodes = Set::new("nodes", 13);
        let out = Universe::run(3, move |c| {
            let halo = RankHalo::build(&map, &src, &tgt, 3, c.rank());
            let mut d = DatU::<f64>::new("v", &nodes, 2);
            // Owners write (owner_rank, global_id); ghosts start poisoned.
            for (t, &owner) in tgt.iter().enumerate() {
                if owner as usize == c.rank() {
                    d.set(t, 0, c.rank() as f64);
                    d.set(t, 1, t as f64);
                } else {
                    d.set(t, 0, -1.0);
                    d.set(t, 1, -1.0);
                }
            }
            halo.exchange(c, &mut d);
            // All imported ghosts now hold the owner's values.
            let mut ok = true;
            for p in 0..3 {
                for &t in &halo.imports[p] {
                    ok &= d.get(t as usize, 0) == tgt[t as usize] as f64;
                    ok &= d.get(t as usize, 1) == t as f64;
                }
            }
            ok
        });
        assert!(out.results.iter().all(|&b| b));
    }

    #[test]
    fn distributed_indirect_sum_matches_serial() {
        // Each rank accumulates over its OWN edges into a global residual
        // (owner-compute with post-exchange of contributions), then we
        // verify the reassembled residual equals the serial one.
        let map = line(16);
        let src = block_part(16, 4);
        let nodes = Set::new("nodes", 17);

        // Serial reference.
        let mut serial = DatU::<f64>::new("r", &nodes, 1);
        for e in 0..16 {
            let (a, b) = (map.get(e, 0), map.get(e, 1));
            serial.set(a, 0, serial.get(a, 0) + (e + 1) as f64);
            serial.set(b, 0, serial.get(b, 0) - 0.5 * (e + 1) as f64);
        }

        let map2 = map.clone();
        let src2 = src.clone();
        let out = Universe::run(4, move |c| {
            let mut local = DatU::<f64>::new("r", &nodes, 1);
            for (e, &owner) in src2.iter().enumerate() {
                if owner as usize != c.rank() {
                    continue;
                }
                let (a, b) = (map2.get(e, 0), map2.get(e, 1));
                local.set(a, 0, local.get(a, 0) + (e + 1) as f64);
                local.set(b, 0, local.get(b, 0) - 0.5 * (e + 1) as f64);
            }
            // Contributions to off-rank targets are summed with an
            // allreduce here (OP2 uses neighbour exchange of the
            // contribution buffers; the result is identical).
            c.allreduce(local.raw(), bwb_shmpi::ReduceOp::Sum)
        });
        for r in &out.results {
            for (t, &rv) in r.iter().enumerate() {
                assert!((rv - serial.get(t, 0)).abs() < 1e-12, "node {t}");
            }
        }
    }

    #[test]
    fn scatter_add_folds_ghost_contributions_onto_owners() {
        // Same residual as distributed_indirect_sum, but communicated the
        // owner-compute way: accumulate locally (owned + ghost slots), then
        // scatter_add the ghost partial sums back to their owners.
        let map = line(16);
        let src = block_part(16, 4);
        let tgt = block_part(17, 4);
        let nodes = Set::new("nodes", 17);

        let mut serial = DatU::<f64>::new("r", &nodes, 1);
        for e in 0..16 {
            let (a, b) = (map.get(e, 0), map.get(e, 1));
            serial.set(a, 0, serial.get(a, 0) + (e + 1) as f64);
            serial.set(b, 0, serial.get(b, 0) - 0.5 * (e + 1) as f64);
        }

        let map2 = map.clone();
        let src2 = src.clone();
        let tgt2 = tgt.clone();
        let out = Universe::run(4, move |c| {
            let halo = RankHalo::build(&map2, &src2, &tgt2, 4, c.rank());
            let mut local = DatU::<f64>::new("r", &nodes, 1);
            for (e, &owner) in src2.iter().enumerate() {
                if owner as usize != c.rank() {
                    continue;
                }
                let (a, b) = (map2.get(e, 0), map2.get(e, 1));
                local.set(a, 0, local.get(a, 0) + (e + 1) as f64);
                local.set(b, 0, local.get(b, 0) - 0.5 * (e + 1) as f64);
            }
            halo.scatter_add(c, &mut local);
            // Owned entries now hold the full sum.
            let mut owned = vec![];
            for (t, &owner) in tgt2.iter().enumerate() {
                if owner as usize == c.rank() {
                    owned.push((t, local.get(t, 0)));
                }
            }
            owned
        });
        for owned in &out.results {
            for &(t, v) in owned {
                assert!((v - serial.get(t, 0)).abs() < 1e-12, "node {t}");
            }
        }
    }

    #[test]
    fn rcb_partition_feeds_rank_halos() {
        // End-to-end: RCB over a quad mesh, halos built per rank, totals
        // agree with the aggregate HaloPlan.
        use crate::partition::HaloPlan;
        let n = 8;
        let nodes = Set::new("nodes", (n + 1) * (n + 1));
        let cells = Set::new("cells", n * n);
        let mut idx = Vec::new();
        let mut coords = Vec::new();
        for cy in 0..n {
            for cx in 0..n {
                let n0 = (cy * (n + 1) + cx) as u32;
                idx.extend([n0, n0 + 1, n0 + n as u32 + 1, n0 + n as u32 + 2]);
                coords.extend([cx as f64, cy as f64]);
            }
        }
        let map = Map::new("c2n", &cells, &nodes, 4, idx);
        let mut node_coords = Vec::new();
        for ny in 0..=n {
            for nx in 0..=n {
                node_coords.extend([nx as f64 - 0.5, ny as f64 - 0.5]);
            }
        }
        let cpart = rcb_partition(&coords, 2, 4);
        let npart = rcb_partition(&node_coords, 2, 4);
        let plan = HaloPlan::build(&map, &cpart, &npart, 4);
        let total: usize = (0..4)
            .map(|r| RankHalo::build(&map, &cpart, &npart, 4, r).total_imports())
            .sum();
        assert_eq!(total, plan.total_imports());
        assert!(total > 0, "a 4-way split of a quad mesh must cut something");
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn exchange_rejects_wrong_rank() {
        // The misused rank panics inside its thread ("halo built for a
        // different rank"); the scope surfaces it at join.
        let map = line(4);
        let src = block_part(4, 2);
        let tgt = block_part(5, 2);
        let nodes = Set::new("nodes", 5);
        Universe::run(2, move |c| {
            if c.rank() == 0 {
                // Built for rank 1, used on rank 0 → panic.
                let halo = RankHalo::build(&map, &src, &tgt, 2, 1);
                let mut d = DatU::<f64>::new("v", &nodes, 1);
                halo.exchange(c, &mut d);
            }
        });
    }
}
