//! # bwb-op2 — unstructured-mesh parallel-loop DSL
//!
//! Re-implementation of the execution model of the OP2 active library
//! ([Reguly 2012], [Mudalige et al.]) that the paper's unstructured
//! applications — MG-CFD and Volna — are written in:
//!
//! * [`set`] — sets (nodes/edges/cells), mappings between them, and
//!   multi-component datasets;
//! * [`color`] — greedy set coloring so that elements in the same color
//!   share no indirect write target: the race-avoidance scheme OP2 uses for
//!   its OpenMP backend (paper §4: "for OpenMP and SYCL one needs to
//!   explicitly avoid race conditions – for which we use a coloring
//!   scheme");
//! * [`exec`] — direct and colored-indirect parallel loops with the same
//!   byte/FLOP accounting as `bwb-ops`, including separate *indirect* byte
//!   accounting so the performance model can price gather/scatter
//!   (the "MPI vec" pack/unpack overhead of §6);
//! * [`partition`] — recursive coordinate bisection (standing in for
//!   PT-Scotch's owner-compute partitioning) and halo plans that count the
//!   import/export volumes each rank pair would exchange.
//!
//! [Reguly 2012]: https://doi.org/10.1109/InPar.2012.6339594

pub mod access;
pub mod color;
pub mod exec;
pub mod halo_exchange;
pub mod partition;
pub mod set;

pub use access::{
    lower_recording_u, recording_active_u, with_recording_u, UAccessObs, UArgSpec, UKind, ULoopObs,
    ULoopSpec, UScheduleObs,
};
pub use color::{BlockColoring, Coloring};
pub use exec::{
    par_loop_block_colored, par_loop_colored, par_loop_direct, par_loop_gather, ExecModeU,
    GatherScratch, UOut, UStage,
};
pub use halo_exchange::RankHalo;
pub use partition::{edge_ownership, rcb_partition, CutEdgeRule, HaloPlan};
pub use set::{DatU, Map, Set};
