//! Greedy set coloring for race-free indirect increments.
//!
//! Two source elements *conflict* when they touch the same target through
//! any of the write maps; elements of one color are conflict-free and can be
//! processed in parallel. This is OP2's standard OpenMP/SYCL execution
//! scheme ([Reguly et al. 2021], the paper's [23]); the paper notes the
//! locality cost it carries versus the vectorized MPI implementation.

use crate::set::Map;
use serde::{Deserialize, Serialize};

/// A coloring of a source set with conflict-free color classes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coloring {
    /// `colors[e]` = color of element `e`.
    pub colors: Vec<u32>,
    pub n_colors: u32,
    /// Elements grouped by color, each group sorted ascending (preserving
    /// as much memory locality as a colored schedule can).
    pub by_color: Vec<Vec<u32>>,
}

impl Coloring {
    /// Greedy first-fit coloring of `set_size` elements so that no two
    /// elements of one color share a target through any map in `write_maps`.
    pub fn greedy(set_size: usize, write_maps: &[&Map]) -> Self {
        for m in write_maps {
            assert_eq!(
                m.from_size, set_size,
                "map '{}' source-set mismatch",
                m.name
            );
        }
        let mut colors = vec![u32::MAX; set_size];
        // For each target of each map, the colors already used on it.
        let mut target_used: Vec<Vec<u64>> = write_maps
            .iter()
            .map(|m| vec![0u64; m.to_size]) // bitmask of first 64 colors
            .collect();
        let mut overflow: Vec<std::collections::BTreeMap<usize, Vec<u32>>> = write_maps
            .iter()
            .map(|_| std::collections::BTreeMap::new())
            .collect();
        let mut n_colors = 0u32;

        for (e, color_slot) in colors.iter_mut().enumerate() {
            // Forbidden colors = union over maps/targets of used colors.
            let mut forbidden: u64 = 0;
            let mut forbidden_hi: Vec<u32> = Vec::new();
            for (mi, m) in write_maps.iter().enumerate() {
                for &t in m.targets(e) {
                    forbidden |= target_used[mi][t as usize];
                    if let Some(hi) = overflow[mi].get(&(t as usize)) {
                        forbidden_hi.extend_from_slice(hi);
                    }
                }
            }
            let mut c = forbidden.trailing_ones();
            if c >= 64 {
                // Rare: fall back to scanning beyond 64 colors.
                c = 64;
                forbidden_hi.sort_unstable();
                while forbidden_hi.binary_search(&c).is_ok() {
                    c += 1;
                }
            }
            *color_slot = c;
            n_colors = n_colors.max(c + 1);
            for (mi, m) in write_maps.iter().enumerate() {
                for &t in m.targets(e) {
                    if c < 64 {
                        target_used[mi][t as usize] |= 1u64 << c;
                    } else {
                        overflow[mi].entry(t as usize).or_default().push(c);
                    }
                }
            }
        }

        let mut by_color = vec![Vec::new(); n_colors as usize];
        for (e, &c) in colors.iter().enumerate() {
            by_color[c as usize].push(e as u32);
        }
        Coloring {
            colors,
            n_colors,
            by_color,
        }
    }

    /// Trivial coloring: every element the same color (valid only for
    /// direct loops or serial execution).
    pub fn trivial(set_size: usize) -> Self {
        Coloring {
            colors: vec![0; set_size],
            n_colors: 1,
            by_color: vec![(0..set_size as u32).collect()],
        }
    }

    /// Verify the coloring is conflict-free for the given maps. Duplicate
    /// targets *within one element* (e.g. a self-loop edge) are not
    /// conflicts — the element's increments are sequential in its kernel.
    pub fn validate(&self, write_maps: &[&Map]) -> bool {
        for m in write_maps {
            // seen[t] = (color, element) of the last toucher.
            let mut seen: Vec<(u32, u32)> = vec![(u32::MAX, u32::MAX); m.to_size];
            for (color, elems) in self.by_color.iter().enumerate() {
                for &e in elems {
                    for &t in m.targets(e as usize) {
                        let (c, prev_e) = seen[t as usize];
                        if c == color as u32 && prev_e != e {
                            return false;
                        }
                        seen[t as usize] = (color as u32, e);
                    }
                }
            }
        }
        true
    }

    /// The locality penalty proxy the paper discusses: average stride
    /// between consecutively-processed elements (1.0 = perfectly
    /// sequential, larger = worse cache behaviour of the colored schedule).
    pub fn mean_schedule_stride(&self) -> f64 {
        let mut total = 0u64;
        let mut count = 0u64;
        for elems in &self.by_color {
            for w in elems.windows(2) {
                total += (w[1] - w[0]) as u64;
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            total as f64 / count as f64
        }
    }
}

/// A coloring of contiguous element *blocks*.
///
/// OP2's OpenMP scheme at block granularity: the source set is cut into
/// blocks of `block_size` consecutive elements and the blocks are colored
/// so that no two same-colored blocks share a target through any write map.
/// Compared to element coloring this (a) needs one parallel region and
/// barrier per *block* color — typically far fewer colors than the
/// element-granularity schedule when conflicts are local — and (b) keeps
/// gather locality, since each task walks consecutive elements instead of a
/// strided color class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockColoring {
    pub block_size: usize,
    pub set_size: usize,
    /// `block_colors[b]` = color of block `b`.
    pub block_colors: Vec<u32>,
    pub n_colors: u32,
    /// Block ids grouped by color, each group ascending.
    pub by_color: Vec<Vec<u32>>,
}

impl BlockColoring {
    /// Greedy first-fit coloring of `ceil(set_size / block_size)` contiguous
    /// blocks so that no two blocks of one color share a target through any
    /// map in `write_maps`.
    pub fn greedy(set_size: usize, block_size: usize, write_maps: &[&Map]) -> Self {
        assert!(block_size >= 1);
        for m in write_maps {
            assert_eq!(
                m.from_size, set_size,
                "map '{}' source-set mismatch",
                m.name
            );
        }
        let n_blocks = set_size.div_ceil(block_size);
        let mut block_colors = vec![u32::MAX; n_blocks];
        let mut target_used: Vec<Vec<u64>> =
            write_maps.iter().map(|m| vec![0u64; m.to_size]).collect();
        let mut overflow: Vec<std::collections::BTreeMap<usize, Vec<u32>>> = write_maps
            .iter()
            .map(|_| std::collections::BTreeMap::new())
            .collect();
        let mut n_colors = 0u32;

        for (b, color_slot) in block_colors.iter_mut().enumerate() {
            let lo = b * block_size;
            let hi = (lo + block_size).min(set_size);
            let mut forbidden: u64 = 0;
            let mut forbidden_hi: Vec<u32> = Vec::new();
            for (mi, m) in write_maps.iter().enumerate() {
                for e in lo..hi {
                    for &t in m.targets(e) {
                        forbidden |= target_used[mi][t as usize];
                        if let Some(hi_colors) = overflow[mi].get(&(t as usize)) {
                            forbidden_hi.extend_from_slice(hi_colors);
                        }
                    }
                }
            }
            let mut c = forbidden.trailing_ones();
            if c >= 64 {
                c = 64;
                forbidden_hi.sort_unstable();
                while forbidden_hi.binary_search(&c).is_ok() {
                    c += 1;
                }
            }
            *color_slot = c;
            n_colors = n_colors.max(c + 1);
            for (mi, m) in write_maps.iter().enumerate() {
                for e in lo..hi {
                    for &t in m.targets(e) {
                        if c < 64 {
                            target_used[mi][t as usize] |= 1u64 << c;
                        } else {
                            overflow[mi].entry(t as usize).or_default().push(c);
                        }
                    }
                }
            }
        }

        let mut by_color = vec![Vec::new(); n_colors as usize];
        for (b, &c) in block_colors.iter().enumerate() {
            by_color[c as usize].push(b as u32);
        }
        BlockColoring {
            block_size,
            set_size,
            block_colors,
            n_colors,
            by_color,
        }
    }

    pub fn n_blocks(&self) -> usize {
        self.block_colors.len()
    }

    /// Element range `[lo, hi)` of block `b`.
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        let lo = b * self.block_size;
        lo..(lo + self.block_size).min(self.set_size)
    }

    /// Verify that no two *distinct* blocks of one color share a target.
    /// Conflicts within one block are fine — its elements run sequentially.
    pub fn validate(&self, write_maps: &[&Map]) -> bool {
        for m in write_maps {
            // seen[t] = (color, block) of the last toucher.
            let mut seen: Vec<(u32, u32)> = vec![(u32::MAX, u32::MAX); m.to_size];
            for (color, blocks) in self.by_color.iter().enumerate() {
                for &b in blocks {
                    for e in self.block_range(b as usize) {
                        for &t in m.targets(e) {
                            let (c, prev_b) = seen[t as usize];
                            if c == color as u32 && prev_b != b {
                                return false;
                            }
                            seen[t as usize] = (color as u32, b);
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::Set;

    fn line_mesh(n_edges: usize) -> Map {
        let nodes = Set::new("nodes", n_edges + 1);
        let edges = Set::new("edges", n_edges);
        let idx: Vec<u32> = (0..n_edges)
            .flat_map(|e| [e as u32, e as u32 + 1])
            .collect();
        Map::new("e2n", &edges, &nodes, 2, idx)
    }

    #[test]
    fn line_mesh_needs_two_colors() {
        let m = line_mesh(10);
        let c = Coloring::greedy(10, &[&m]);
        assert_eq!(c.n_colors, 2);
        assert!(c.validate(&[&m]));
        // Alternating colors on a line.
        for e in 0..10 {
            assert_eq!(c.colors[e], (e % 2) as u32);
        }
    }

    #[test]
    fn color_classes_partition_the_set() {
        let m = line_mesh(17);
        let c = Coloring::greedy(17, &[&m]);
        let total: usize = c.by_color.iter().map(|v| v.len()).sum();
        assert_eq!(total, 17);
        let mut all: Vec<u32> = c.by_color.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..17u32).collect::<Vec<_>>());
    }

    #[test]
    fn star_mesh_needs_degree_colors() {
        // 6 edges all touching node 0: every edge conflicts with every
        // other → 6 colors.
        let nodes = Set::new("nodes", 7);
        let edges = Set::new("edges", 6);
        let idx: Vec<u32> = (0..6).flat_map(|e| [0u32, e as u32 + 1]).collect();
        let m = Map::new("e2n", &edges, &nodes, 2, idx);
        let c = Coloring::greedy(6, &[&m]);
        assert_eq!(c.n_colors, 6);
        assert!(c.validate(&[&m]));
        assert!(c.n_colors as usize >= m.max_target_degree());
    }

    #[test]
    fn multiple_maps_all_respected() {
        let m1 = line_mesh(8);
        // Second map: edge → the single "cell" floor(e/2).
        let edges = Set::new("edges", 8);
        let cells = Set::new("cells", 4);
        let idx: Vec<u32> = (0..8).map(|e| (e / 2) as u32).collect();
        let m2 = Map::new("e2c", &edges, &cells, 1, idx);
        let c = Coloring::greedy(8, &[&m1, &m2]);
        assert!(c.validate(&[&m1, &m2]));
    }

    #[test]
    fn validate_rejects_bad_coloring() {
        let m = line_mesh(4);
        let bad = Coloring::trivial(4);
        assert!(!bad.validate(&[&m]));
    }

    #[test]
    fn trivial_coloring_is_single_class() {
        let c = Coloring::trivial(5);
        assert_eq!(c.n_colors, 1);
        assert_eq!(c.by_color[0].len(), 5);
    }

    #[test]
    fn greedy_color_count_bounded_by_max_conflict_degree() {
        // Brooks-style bound for greedy: colors ≤ max conflicts + 1.
        // Random quad mesh: cells → 4 nodes on a grid.
        let nx = 8;
        let nodes = Set::new("nodes", (nx + 1) * (nx + 1));
        let cells = Set::new("cells", nx * nx);
        let mut idx = Vec::new();
        for cy in 0..nx {
            for cx in 0..nx {
                let n0 = (cy * (nx + 1) + cx) as u32;
                idx.extend([n0, n0 + 1, n0 + nx as u32 + 1, n0 + nx as u32 + 2]);
            }
        }
        let m = Map::new("c2n", &cells, &nodes, 4, idx);
        let c = Coloring::greedy(nx * nx, &[&m]);
        assert!(c.validate(&[&m]));
        // Quad grid cells sharing a node: ≤ 4 cells per node → greedy needs
        // at most ~ 2*4 colors in practice; sanity bound:
        assert!(c.n_colors <= 8, "n_colors = {}", c.n_colors);
    }

    #[test]
    fn block_coloring_line_mesh_two_colors() {
        // Blocks of 4 on a line mesh conflict only with their neighbours
        // (shared boundary node) → alternating colors, far fewer barriers
        // than elements would imply.
        let m = line_mesh(32);
        let c = BlockColoring::greedy(32, 4, &[&m]);
        assert_eq!(c.n_blocks(), 8);
        assert_eq!(c.n_colors, 2);
        assert!(c.validate(&[&m]));
        for b in 0..8 {
            assert_eq!(c.block_colors[b], (b % 2) as u32);
        }
    }

    #[test]
    fn block_ranges_partition_the_set() {
        let m = line_mesh(10);
        let c = BlockColoring::greedy(10, 4, &[&m]);
        assert_eq!(c.n_blocks(), 3);
        assert_eq!(c.block_range(0), 0..4);
        assert_eq!(c.block_range(2), 8..10); // ragged tail clipped
        let total: usize = (0..c.n_blocks()).map(|b| c.block_range(b).len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn block_coloring_validate_rejects_conflicts() {
        let m = line_mesh(8);
        let mut c = BlockColoring::greedy(8, 2, &[&m]);
        assert!(c.validate(&[&m]));
        // Force adjacent blocks (which share a node) onto one color.
        c.block_colors.iter_mut().for_each(|x| *x = 0);
        c.n_colors = 1;
        c.by_color = vec![(0..c.n_blocks() as u32).collect()];
        assert!(!c.validate(&[&m]));
    }

    #[test]
    fn block_size_covering_set_is_single_color() {
        let m = line_mesh(20);
        let c = BlockColoring::greedy(20, 64, &[&m]);
        assert_eq!(c.n_blocks(), 1);
        assert_eq!(c.n_colors, 1);
        assert!(c.validate(&[&m]));
    }

    #[test]
    fn block_coloring_uses_fewer_colors_than_star_elements() {
        // 6 edges all touching node 0: element coloring needs 6 colors;
        // one block of 6 holds every conflict internally → 1 color.
        let nodes = Set::new("nodes", 7);
        let edges = Set::new("edges", 6);
        let idx: Vec<u32> = (0..6).flat_map(|e| [0u32, e as u32 + 1]).collect();
        let m = Map::new("e2n", &edges, &nodes, 2, idx);
        let elem = Coloring::greedy(6, &[&m]);
        let block = BlockColoring::greedy(6, 6, &[&m]);
        assert_eq!(elem.n_colors, 6);
        assert_eq!(block.n_colors, 1);
        assert!(block.validate(&[&m]));
    }

    #[test]
    fn schedule_stride_reports_locality_cost() {
        let m = line_mesh(100);
        let colored = Coloring::greedy(100, &[&m]);
        let serial = Coloring::trivial(100);
        assert!(colored.mean_schedule_stride() > serial.mean_schedule_stride());
        assert_eq!(serial.mean_schedule_stride(), 1.0);
    }
}
