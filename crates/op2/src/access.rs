//! Access declarations and checked-execution recording for unstructured
//! loops — the OP2 half of the `bwb-dslcheck` contract.
//!
//! Mirrors `bwb_ops::access` for the unstructured engine: apps declare what
//! each loop writes (mode + direct/indirect), and a thread-local recording
//! session captures what kernels *actually* touch — every `(dataset,
//! source element, target element, kind)` tuple — along with the schedule
//! the loop ran under (its coloring, if any). Analyzers diff the two and
//! prove the coloring race-free.
//!
//! Recording forces serial execution inside the drivers, so the session can
//! live in plain thread-local storage with zero cost on the parallel paths.

use bwb_ops::access::Access;
use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;

/// Declared shape of one output argument of an unstructured loop.
#[derive(Debug, Clone)]
pub struct UArgSpec {
    /// Dataset name (as constructed by the app).
    pub name: String,
    pub access: Access,
    /// `true` if written through a map (targets other than the iteration
    /// element), `false` for own-element writes.
    pub indirect: bool,
}

/// Declared contract of one unstructured loop.
#[derive(Debug, Clone)]
pub struct ULoopSpec {
    pub name: String,
    pub outs: Vec<UArgSpec>,
}

impl ULoopSpec {
    pub fn new(name: &str, outs: Vec<UArgSpec>) -> Self {
        ULoopSpec {
            name: name.to_string(),
            outs,
        }
    }
}

impl UArgSpec {
    pub fn new(name: &str, access: Access, indirect: bool) -> Self {
        UArgSpec {
            name: name.to_string(),
            access,
            indirect,
        }
    }
}

/// What kind of access a kernel performed on an output dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UKind {
    /// Plain overwrite (`UOut::set` / staged `set`).
    Set,
    /// Read-back of an output (`UOut::get` / staged `get`).
    Get,
    /// Increment (`UOut::add`/`add32` / staged `add`).
    Inc,
}

/// One deduplicated observed access: dataset `f`, performed while iterating
/// element `src`, landing on element `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct UAccessObs {
    pub f: usize,
    pub src: usize,
    pub target: usize,
    pub kind: UKind,
}

/// The schedule a recorded loop declared it would run under. Recording
/// forces serial execution, so this is the schedule *to be validated*, not
/// the one used during the recording itself.
#[derive(Debug, Clone)]
pub enum UScheduleObs {
    /// Direct loop: every element may write only itself.
    Direct,
    /// Indirect loop under a per-element coloring (element or block
    /// granularity, expanded to per-element colors).
    Colored { colors: Vec<u32>, n_colors: u32 },
    /// Gather/scatter lanes: staged writes applied in element order, so
    /// overlap is well-defined (last writer wins).
    Gather,
}

/// Everything recorded about one executed unstructured loop.
#[derive(Debug, Clone)]
pub struct ULoopObs {
    pub name: String,
    pub set_size: usize,
    /// Runtime names of the output datasets, positionally.
    pub out_names: Vec<String>,
    pub schedule: UScheduleObs,
    pub accesses: BTreeSet<UAccessObs>,
}

struct SessionU {
    done: Vec<ULoopObs>,
    current: Option<ULoopObs>,
    current_elem: usize,
}

thread_local! {
    static ACTIVE_U: Cell<bool> = const { Cell::new(false) };
    static SESSION_U: RefCell<SessionU> = const {
        RefCell::new(SessionU {
            done: Vec::new(),
            current: None,
            current_elem: 0,
        })
    };
}

/// Is an unstructured recording session active on this thread?
#[inline]
pub fn recording_active_u() -> bool {
    ACTIVE_U.with(|a| a.get())
}

/// Run `f` with unstructured-loop recording enabled and return its result
/// plus the observations of every `par_loop_*` executed inside.
pub fn with_recording_u<R>(f: impl FnOnce() -> R) -> (R, Vec<ULoopObs>) {
    SESSION_U.with(|s| {
        let mut s = s.borrow_mut();
        s.done.clear();
        s.current = None;
        s.current_elem = 0;
    });
    ACTIVE_U.with(|a| a.set(true));
    let out = f();
    ACTIVE_U.with(|a| a.set(false));
    let obs = SESSION_U.with(|s| std::mem::take(&mut s.borrow_mut().done));
    (out, obs)
}

/// Lower an unstructured recording to the shared loop-plan IR
/// ([`bwb_ops::plan::LoopIr`]) that optimization plans index into.
///
/// Unstructured loops have no rectangular range (`dims` 0, `points` =
/// set size) and the recorder only observes *output* accesses — kernel
/// reads go through closures it cannot see — so the lowered IR carries
/// empty input lists. That is deliberately honest: a planner consuming
/// this IR sees no read sets and therefore can certify nothing that
/// depends on them (the `OutputOnlyRecording` limitation, made
/// structural).
pub fn lower_recording_u(obs: &[ULoopObs]) -> Vec<bwb_ops::plan::LoopIr> {
    obs.iter()
        .map(|o| {
            let mut outs = o.out_names.clone();
            outs.sort();
            outs.dedup();
            bwb_ops::plan::LoopIr {
                name: o.name.clone(),
                dims: 0,
                points: o.set_size,
                outs,
                ins: Vec::new(),
            }
        })
        .collect()
}

pub(crate) fn begin_uloop(
    name: &str,
    set_size: usize,
    out_names: Vec<String>,
    schedule: UScheduleObs,
) {
    SESSION_U.with(|s| {
        let mut s = s.borrow_mut();
        debug_assert!(s.current.is_none(), "nested unstructured loop recording");
        s.current_elem = 0;
        s.current = Some(ULoopObs {
            name: name.to_string(),
            set_size,
            out_names,
            schedule,
            accesses: BTreeSet::new(),
        });
    });
}

pub(crate) fn end_uloop() {
    SESSION_U.with(|s| {
        let mut s = s.borrow_mut();
        if let Some(obs) = s.current.take() {
            s.done.push(obs);
        }
    });
}

/// The drivers call this before invoking the kernel on element `e`, so
/// accessor notes know which iteration element performed them.
#[inline]
pub(crate) fn set_current(e: usize) {
    SESSION_U.with(|s| s.borrow_mut().current_elem = e);
}

#[inline]
pub(crate) fn note_access(f: usize, target: usize, kind: UKind) {
    SESSION_U.with(|s| {
        let mut s = s.borrow_mut();
        let src = s.current_elem;
        if let Some(cur) = &mut s.current {
            cur.accesses.insert(UAccessObs {
                f,
                src,
                target,
                kind,
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_captures_and_dedupes_accesses() {
        let ((), obs) = with_recording_u(|| {
            begin_uloop("k", 3, vec!["d".into()], UScheduleObs::Direct);
            set_current(0);
            note_access(0, 0, UKind::Set);
            note_access(0, 0, UKind::Set); // duplicate
            set_current(1);
            note_access(0, 2, UKind::Inc);
            end_uloop();
        });
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].accesses.len(), 2);
        let v: Vec<_> = obs[0].accesses.iter().collect();
        assert_eq!(v[0].src, 0);
        assert_eq!(v[1].target, 2);
        assert!(!recording_active_u());
    }

    #[test]
    fn sessions_are_independent() {
        let ((), a) = with_recording_u(|| {
            begin_uloop("one", 1, vec![], UScheduleObs::Gather);
            end_uloop();
        });
        let ((), b) = with_recording_u(|| {});
        assert_eq!(a.len(), 1);
        assert!(b.is_empty());
    }
}
