//! # bwb-core — the bwbench facade
//!
//! One crate that re-exports the whole suite and provides the
//! [`Experiment`] runner: ask for any figure of the paper
//! *"Comparative evaluation of bandwidth-bound applications on the Intel
//! Xeon CPU MAX Series"* (Reguly, SC'23) and get its reproduction as
//! rendered text plus structured data.
//!
//! ```
//! use bwb_core::{Experiment, Figure};
//!
//! let text = Experiment::new(Figure::Fig2Latency).render();
//! assert!(text.contains("cross-socket"));
//! ```

pub use bwb_apps as apps;
pub use bwb_machine as machine;
pub use bwb_memsim as memsim;
pub use bwb_op2 as op2;
pub use bwb_ops as ops;
pub use bwb_ops::hash;
pub use bwb_perfmodel as perfmodel;
pub use bwb_report as report;
pub use bwb_serve as serve;
pub use bwb_shmpi as shmpi;
pub use bwb_stream as stream;
pub use bwb_trace as trace;

pub mod experiment;

pub use experiment::{Experiment, Figure};
