//! The experiment runner: regenerate any figure of the paper as text.

use bwb_machine::{platforms, CommDistance};
use bwb_perfmodel::figures;
use bwb_report::{BarChart, CsvWriter, Table};
use bwb_stream::model::figure1_curves_with;

/// Figure-1 curves driven by the Triad traffic model *derived* from a
/// recorded reference kernel by the whole-chain dataflow analyzer (which
/// cross-checks it against `bwb_memsim`'s hand-declared STREAM constant).
/// The figures therefore consume measured-program traffic, not a typed-in
/// number.
fn figure1_curves(
    min_elements: u64,
    max_elements: u64,
    points: usize,
) -> Vec<bwb_stream::Figure1Series> {
    figure1_curves_with(
        bwb_dslcheck::traffic::reference_triad_traffic(),
        min_elements,
        max_elements,
        points,
    )
}

/// The paper's figures (1–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Figure {
    /// BabelStream Triad bandwidth vs array size.
    Fig1Stream,
    /// Core-to-core message-passing latency.
    Fig2Latency,
    /// Structured-mesh configuration matrix.
    Fig3StructuredConfigs,
    /// Unstructured-mesh configuration matrix.
    Fig4UnstructuredConfigs,
    /// Parallelization speedups vs pure MPI on the Xeon MAX.
    Fig5Parallelizations,
    /// Best performance per platform + speedup table.
    Fig6Platforms,
    /// Fraction of runtime in MPI.
    Fig7MpiFraction,
    /// Achieved effective bandwidth.
    Fig8EffectiveBandwidth,
    /// CloverLeaf 2D cache-blocking tiling.
    Fig9Tiling,
}

impl Figure {
    pub const ALL: [Figure; 9] = [
        Figure::Fig1Stream,
        Figure::Fig2Latency,
        Figure::Fig3StructuredConfigs,
        Figure::Fig4UnstructuredConfigs,
        Figure::Fig5Parallelizations,
        Figure::Fig6Platforms,
        Figure::Fig7MpiFraction,
        Figure::Fig8EffectiveBandwidth,
        Figure::Fig9Tiling,
    ];

    pub fn title(self) -> &'static str {
        match self {
            Figure::Fig1Stream => "Figure 1: BabelStream Triad bandwidth",
            Figure::Fig2Latency => "Figure 2: message-passing latency",
            Figure::Fig3StructuredConfigs => "Figure 3: structured-mesh configurations",
            Figure::Fig4UnstructuredConfigs => "Figure 4: unstructured-mesh configurations",
            Figure::Fig5Parallelizations => "Figure 5: parallelizations vs pure MPI (Xeon MAX)",
            Figure::Fig6Platforms => "Figure 6: best performance per platform",
            Figure::Fig7MpiFraction => "Figure 7: fraction of runtime in MPI",
            Figure::Fig8EffectiveBandwidth => "Figure 8: achieved effective bandwidth",
            Figure::Fig9Tiling => "Figure 9: CloverLeaf 2D cache-blocking tiling",
        }
    }
}

/// A runnable experiment bound to one figure.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    pub figure: Figure,
}

impl Experiment {
    pub fn new(figure: Figure) -> Self {
        Experiment { figure }
    }

    /// Render the reproduction as text (and return it).
    pub fn render(&self) -> String {
        let body = match self.figure {
            Figure::Fig1Stream => render_fig1(),
            Figure::Fig2Latency => render_fig2(),
            Figure::Fig3StructuredConfigs => render_matrix(
                figures::figure3_structured_matrix(&platforms::xeon_max_9480()),
                "(paper on MAX: mean 1.25, median 1.12; on 8360Y: 1.11 / 1.05)",
            ),
            Figure::Fig4UnstructuredConfigs => render_matrix(
                figures::figure4_unstructured_matrix(&platforms::xeon_max_9480()),
                "(paper: MPI vec best on average by 66%; ZMM high required; HT helps by 13%)",
            ),
            Figure::Fig5Parallelizations => render_fig5(),
            Figure::Fig6Platforms => render_fig6(),
            Figure::Fig7MpiFraction => render_fig7(),
            Figure::Fig8EffectiveBandwidth => render_fig8(),
            Figure::Fig9Tiling => render_fig9(),
        };
        format!(
            "{}\n{}\n{}",
            self.figure.title(),
            "=".repeat(self.figure.title().len()),
            body
        )
    }

    /// Write the figure's data as CSV under the given directory; returns
    /// the file path.
    pub fn save_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let (name, csv) = self.to_csv();
        let path = dir.join(name);
        csv.save(&path)?;
        Ok(path)
    }

    /// Figure data as (file name, CSV).
    pub fn to_csv(&self) -> (&'static str, CsvWriter) {
        match self.figure {
            Figure::Fig1Stream => {
                let mut w = CsvWriter::new(&[
                    "platform",
                    "subset",
                    "streaming_stores",
                    "elements",
                    "bandwidth_gbs",
                ]);
                for s in figure1_curves(1 << 12, 1 << 30, 28) {
                    for p in &s.points {
                        w.row(&[
                            s.platform.clone(),
                            s.subset.label().to_owned(),
                            s.streaming_stores.to_string(),
                            p.elements.to_string(),
                            format!("{:.1}", p.bandwidth_gbs),
                        ]);
                    }
                }
                ("fig1_stream.csv", w)
            }
            Figure::Fig2Latency => {
                let mut w = CsvWriter::new(&["platform", "distance", "latency_ns"]);
                for p in platforms::all_cpus() {
                    for d in CommDistance::ALL {
                        w.row(&[
                            p.name.clone(),
                            d.label().to_owned(),
                            format!("{:.0}", p.latency.latency_ns(d)),
                        ]);
                    }
                }
                ("fig2_latency.csv", w)
            }
            Figure::Fig3StructuredConfigs => {
                let m = figures::figure3_structured_matrix(&platforms::xeon_max_9480());
                let mut header = vec!["configuration".to_owned()];
                header.extend(m.apps.iter().map(|a| a.label().to_owned()));
                let hrefs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
                let mut w = CsvWriter::new(&hrefs);
                for r in &m.rows {
                    let mut cells = vec![r.label.clone()];
                    cells.extend(r.slowdowns.iter().map(|s| match s {
                        Some(v) => format!("{v:.2}"),
                        None => "n/a".to_owned(),
                    }));
                    w.row(&cells);
                }
                ("fig3_structured.csv", w)
            }
            Figure::Fig4UnstructuredConfigs => {
                let m = figures::figure4_unstructured_matrix(&platforms::xeon_max_9480());
                let mut header = vec!["configuration".to_owned()];
                header.extend(m.apps.iter().map(|a| a.label().to_owned()));
                let hrefs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
                let mut w = CsvWriter::new(&hrefs);
                for r in &m.rows {
                    let mut cells = vec![r.label.clone()];
                    cells.extend(r.slowdowns.iter().map(|s| match s {
                        Some(v) => format!("{v:.2}"),
                        None => "n/a".to_owned(),
                    }));
                    w.row(&cells);
                }
                ("fig4_unstructured.csv", w)
            }
            Figure::Fig5Parallelizations => {
                let mut w = CsvWriter::new(&["app", "parallelization", "speedup_vs_mpi"]);
                for e in figures::figure5_parallelization_speedups() {
                    for (par, s) in &e.speedups {
                        w.row(&[e.app.label().to_owned(), par.clone(), format!("{s:.3}")]);
                    }
                }
                ("fig5_parallelizations.csv", w)
            }
            Figure::Fig6Platforms => {
                let mut w = CsvWriter::new(&[
                    "app",
                    "platform",
                    "best_seconds",
                    "best_config",
                    "speedup_vs_8360y",
                    "speedup_vs_epyc",
                    "a100_vs_max",
                ]);
                for e in figures::figure6_platform_comparison() {
                    for (k, t, label) in &e.best {
                        w.row(&[
                            e.app.label().to_owned(),
                            k.label().to_owned(),
                            format!("{t:.3}"),
                            label.clone(),
                            format!("{:.2}", e.speedup_vs_8360y),
                            format!("{:.2}", e.speedup_vs_epyc),
                            format!("{:.2}", e.a100_vs_max),
                        ]);
                    }
                }
                ("fig6_platforms.csv", w)
            }
            Figure::Fig7MpiFraction => {
                let mut w = CsvWriter::new(&[
                    "app",
                    "platform",
                    "mpi_fraction_pure",
                    "mpi_fraction_openmp",
                ]);
                for e in figures::figure7_mpi_fractions() {
                    w.row(&[
                        e.app.label().to_owned(),
                        e.platform.label().to_owned(),
                        format!("{:.4}", e.mpi_fraction_pure),
                        format!("{:.4}", e.mpi_fraction_openmp),
                    ]);
                }
                ("fig7_mpi_fraction.csv", w)
            }
            Figure::Fig8EffectiveBandwidth => {
                let mut w =
                    CsvWriter::new(&["app", "platform", "effective_gbs", "fraction_of_stream"]);
                for e in figures::figure8_effective_bandwidth() {
                    w.row(&[
                        e.app.label().to_owned(),
                        e.platform.label().to_owned(),
                        format!("{:.0}", e.effective_gbs),
                        format!("{:.3}", e.fraction_of_stream),
                    ]);
                }
                ("fig8_effective_bandwidth.csv", w)
            }
            Figure::Fig9Tiling => {
                let mut w =
                    CsvWriter::new(&["platform", "untiled_seconds", "tiled_seconds", "gain"]);
                for e in figures::figure9_tiling() {
                    w.row(&[
                        e.platform.label().to_owned(),
                        format!("{:.3}", e.untiled_seconds),
                        format!("{:.3}", e.tiled_seconds),
                        format!("{:.2}", e.gain),
                    ]);
                }
                ("fig9_tiling.csv", w)
            }
        }
    }
}

fn render_fig1() -> String {
    let curves = figure1_curves(1 << 12, 1 << 30, 28);
    let mut chart = BarChart::new("large-array Triad plateau (GB/s)");
    for s in &curves {
        let plateau = s.large_size_plateau_gbs();
        let label = format!(
            "{} [{}{}]",
            s.platform_kind.label(),
            s.subset.label(),
            if s.streaming_stores { ", SS" } else { "" }
        );
        chart.bar(&label, plateau, &format!("{plateau:.0} GB/s"));
    }
    let mut out = chart.render();
    out.push_str("\npaper: MAX 1446 (default) / 1643 (SS); 8360Y 296; EPYC 310 GB/s\n");
    out
}

fn render_fig2() -> String {
    let mut t = Table::new(&[
        "platform",
        "hyperthread",
        "adjacent core",
        "cross-NUMA",
        "cross-socket",
    ]);
    for p in platforms::all_cpus() {
        t.row(&[
            p.name.clone(),
            match p.latency.hyperthread_ns {
                Some(v) => format!("{v:.0} ns"),
                None => "SMT off".to_owned(),
            },
            format!("{:.0} ns", p.latency.same_numa_ns),
            format!("{:.0} ns", p.latency.cross_numa_ns),
            format!("{:.0} ns", p.latency.cross_socket_ns),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\npaper: no significant improvement on MAX vs 8360Y; EPYC cross-socket ~1.6x worse\n",
    );
    out
}

fn render_matrix(m: figures::SlowdownMatrix, note: &str) -> String {
    let mut header = vec!["configuration"];
    let labels: Vec<&str> = m.apps.iter().map(|a| a.label()).collect();
    header.extend(&labels);
    let mut t = Table::new(&header);
    for r in &m.rows {
        let mut cells = vec![r.label.clone()];
        cells.extend(r.slowdowns.iter().map(|s| match s {
            Some(v) => format!("{v:.2}"),
            None => "-".to_owned(),
        }));
        t.row(&cells);
    }
    let (mean, median) = figures::summary_stats(&m);
    format!(
        "{}\nmean slowdown vs best: {:.2}  median: {:.2}  {}\n",
        t.render(),
        mean,
        median,
        note
    )
}

fn render_fig5() -> String {
    let data = figures::figure5_parallelization_speedups();
    let mut t = Table::new(&[
        "app",
        "MPI",
        "MPI vec",
        "MPI+OpenMP",
        "SYCL flat",
        "SYCL ndrange",
    ]);
    for e in &data {
        let get = |l: &str| {
            e.speedups
                .iter()
                .find(|(x, _)| x == l)
                .map(|(_, s)| format!("{s:.2}"))
                .unwrap_or_else(|| "-".to_owned())
        };
        t.row(&[
            e.app.label().to_owned(),
            get("MPI"),
            get("MPI vec"),
            get("MPI+OpenMP"),
            get("MPI+SYCL (flat)"),
            get("MPI+SYCL (ndrange)"),
        ]);
    }
    let mut out = t.render();
    out.push_str("\npaper: hybrid MPI+OpenMP best on structured (esp. Acoustic); MPI vec 1.6-1.8x on unstructured; SYCL trails OpenMP (worst on CloverLeaf)\n");
    out
}

fn render_fig6() -> String {
    let data = figures::figure6_platform_comparison();
    let mut t = Table::new(&[
        "app", "MAX 9480", "8360Y", "EPYC", "A100", "vs 8360Y", "vs EPYC", "A100/MAX",
    ]);
    for e in &data {
        let get = |k: bwb_machine::PlatformKind| {
            e.best
                .iter()
                .find(|(p, _, _)| *p == k)
                .map(|(_, t, _)| format!("{t:.2}s"))
                .unwrap()
        };
        t.row(&[
            e.app.label().to_owned(),
            get(bwb_machine::PlatformKind::XeonMax9480),
            get(bwb_machine::PlatformKind::Xeon8360Y),
            get(bwb_machine::PlatformKind::Epyc7V73X),
            get(bwb_machine::PlatformKind::A100Pcie40GB),
            format!("{:.2}x", e.speedup_vs_8360y),
            format!("{:.2}x", e.speedup_vs_epyc),
            format!("{:.2}x", e.a100_vs_max),
        ]);
    }
    let mut out = t.render();
    out.push_str("\npaper speedups vs 8360Y/EPYC: Clover2D 4.2x, SA 3.8x, SN 2.5x, Acoustic 1.98x, MG-CFD 2.5/2x, miniBUDE 1.9/1.36x; A100 1.1-2.1x faster than MAX\n");
    out
}

fn render_fig7() -> String {
    let data = figures::figure7_mpi_fractions();
    let mut t = Table::new(&["app", "platform", "MPI (pure)", "MPI (+OpenMP)"]);
    for e in &data {
        t.row(&[
            e.app.label().to_owned(),
            e.platform.label().to_owned(),
            format!("{:.1}%", e.mpi_fraction_pure * 100.0),
            format!("{:.1}%", e.mpi_fraction_openmp * 100.0),
        ]);
    }
    let mut out = t.render();
    out.push_str("\npaper: MPI+OpenMP has lower MPI overhead (all but Volna); MAX fraction 1.2-5.3x higher than 8360Y\n");
    out
}

fn render_fig8() -> String {
    let data = figures::figure8_effective_bandwidth();
    let mut chart =
        BarChart::new("achieved effective bandwidth on Xeon MAX 9480 (fraction of STREAM)");
    for e in data
        .iter()
        .filter(|e| e.platform == bwb_machine::PlatformKind::XeonMax9480)
    {
        chart.bar(
            e.app.label(),
            e.fraction_of_stream,
            &format!(
                "{:.0} GB/s ({:.0}%)",
                e.effective_gbs,
                e.fraction_of_stream * 100.0
            ),
        );
    }
    let mut out = chart.render();
    out.push_str("\npaper: Clover2D 75%, Clover3D/SA >65%, SN 53%, Acoustic 41%; 8360Y 75-85%, EPYC 79-96%\n");
    out
}

fn render_fig9() -> String {
    let data = figures::figure9_tiling();
    let mut t = Table::new(&["platform", "untiled", "tiled", "gain"]);
    for e in &data {
        t.row(&[
            e.platform.label().to_owned(),
            format!("{:.2}s", e.untiled_seconds),
            format!("{:.2}s", e.tiled_seconds),
            format!("{:.2}x", e.gain),
        ]);
    }
    let mut out = t.render();
    out.push_str("\npaper gains: MAX 1.84x, 8360Y 2.7x, EPYC 4x; tiled MAX beats A100 by 1.5x\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_renders_nonempty() {
        for f in Figure::ALL {
            let s = Experiment::new(f).render();
            assert!(s.len() > 100, "{:?} rendered too little: {}", f, s.len());
            assert!(s.contains(f.title()));
        }
    }

    #[test]
    fn every_figure_exports_csv() {
        for f in Figure::ALL {
            let (name, csv) = Experiment::new(f).to_csv();
            assert!(name.ends_with(".csv"));
            assert!(csv.as_str().lines().count() > 2, "{:?} CSV too small", f);
        }
    }

    #[test]
    fn fig2_mentions_all_platforms() {
        let s = Experiment::new(Figure::Fig2Latency).render();
        assert!(s.contains("MAX 9480"));
        assert!(s.contains("8360Y"));
        assert!(s.contains("EPYC"));
        assert!(s.contains("SMT off")); // EPYC has no hyperthread column
    }

    #[test]
    fn fig6_contains_speedup_columns() {
        let s = Experiment::new(Figure::Fig6Platforms).render();
        assert!(s.contains("vs 8360Y"));
        assert!(s.contains("miniBUDE"));
    }

    #[test]
    fn derived_triad_traffic_agrees_with_declared_constant() {
        // The agreement the Figure-1 wiring relies on: the dataflow-derived
        // reference Triad model must equal memsim's declared one, so
        // consuming derived traffic cannot drift the published curves.
        let derived = bwb_dslcheck::traffic::reference_triad_traffic();
        let declared = bwb_memsim::TrafficModel::stream_triad();
        assert_eq!(derived.read_bytes, declared.read_bytes);
        assert_eq!(derived.write_bytes, declared.write_bytes);
    }

    #[test]
    fn titles_unique() {
        let set: std::collections::HashSet<&str> = Figure::ALL.iter().map(|f| f.title()).collect();
        assert_eq!(set.len(), Figure::ALL.len());
    }
}
