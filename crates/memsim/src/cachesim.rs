//! Executable set-associative cache simulator.
//!
//! The analytic model in [`crate::hierarchy`] predicts *where* capacity
//! transitions happen; this simulator lets tests verify those predictions by
//! actually streaming address traces through an LRU cache, and lets the
//! tiling experiments (Figure 9) demonstrate the reuse mechanism at small
//! scale.
//!
//! Single level, physically-indexed, true-LRU replacement, write-allocate /
//! write-back by default with an optional streaming-store (non-temporal)
//! path that bypasses allocation — the distinction behind the paper's two
//! Xeon MAX flag sets.

use serde::{Deserialize, Serialize};

/// Kind of access fed to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    Read,
    /// Regular write: write-allocate (miss brings the line in: an RFO read).
    Write,
    /// Non-temporal / streaming store: bypasses the cache entirely.
    StreamingWrite,
}

/// Aggregate statistics after a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub reads: u64,
    pub writes: u64,
    pub streaming_writes: u64,
    pub read_hits: u64,
    pub write_hits: u64,
    /// Lines read from the next level (demand misses + RFOs).
    pub lines_in: u64,
    /// Dirty lines written back to the next level.
    pub lines_out: u64,
}

impl CacheStats {
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes + self.streaming_writes
    }

    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Hit rate over allocating accesses (reads + writes).
    pub fn hit_rate(&self) -> f64 {
        let a = self.reads + self.writes;
        if a == 0 {
            return 0.0;
        }
        self.hits() as f64 / a as f64
    }

    /// Bytes of traffic to the next level from cached accesses, given the
    /// line size. Streaming writes bypass the cache and are accounted by
    /// [`CacheSim::memory_traffic_bytes`] instead.
    pub fn next_level_bytes(&self, line_bytes: u64) -> u64 {
        (self.lines_in + self.lines_out) * line_bytes
    }
}

/// A single-level set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: u64,
    n_sets: u64,
    ways: usize,
    /// `tags[set * ways + way]` = Some((tag, dirty, lru_stamp)).
    tags: Vec<Option<(u64, bool, u64)>>,
    clock: u64,
    stats: CacheStats,
    /// Streaming stores write full lines to the next level directly.
    nt_line_writes: u64,
}

impl CacheSim {
    /// Create a cache of `capacity_bytes` with `ways`-way associativity and
    /// `line_bytes` lines. Capacity must be an exact multiple of
    /// `ways × line_bytes`.
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(ways >= 1 && line_bytes.is_power_of_two() && line_bytes >= 8);
        assert!(
            capacity_bytes.is_multiple_of(ways as u64 * line_bytes) && capacity_bytes > 0,
            "capacity {capacity_bytes} must be a positive multiple of ways*line"
        );
        let n_sets = capacity_bytes / (ways as u64 * line_bytes);
        CacheSim {
            line_bytes,
            n_sets,
            ways,
            tags: vec![None; (n_sets as usize) * ways],
            clock: 0,
            stats: CacheStats::default(),
            nt_line_writes: 0,
        }
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.n_sets * self.ways as u64 * self.line_bytes
    }

    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Total bytes moved between this cache and the next level, counting
    /// streaming stores as full-line writes that bypass allocation.
    pub fn memory_traffic_bytes(&self) -> u64 {
        (self.stats.lines_in + self.stats.lines_out + self.nt_line_writes) * self.line_bytes
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        ((line % self.n_sets) as usize, line / self.n_sets)
    }

    /// Access one byte address.
    pub fn access(&mut self, addr: u64, kind: AccessKind) {
        self.clock += 1;
        if kind == AccessKind::StreamingWrite {
            self.stats.streaming_writes += 1;
            // Bypass: write-combining buffer emits the line downstream.
            // Count one line out per *line-sized group*; approximate by
            // counting a line every line_bytes-th byte (callers usually
            // issue line-granular traces; per-byte traces over-count, so we
            // only count when the address is line-aligned).
            if addr.is_multiple_of(self.line_bytes) {
                self.nt_line_writes += 1;
            }
            // Must also invalidate any cached copy (hardware semantics).
            let (set, tag) = self.set_and_tag(addr);
            let base = set * self.ways;
            for w in 0..self.ways {
                if let Some((t, dirty, _)) = self.tags[base + w] {
                    if t == tag {
                        if dirty {
                            self.stats.lines_out += 1;
                        }
                        self.tags[base + w] = None;
                    }
                }
            }
            return;
        }

        let is_write = kind == AccessKind::Write;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }

        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;

        // Hit?
        for w in 0..self.ways {
            if let Some((t, dirty, _)) = self.tags[base + w] {
                if t == tag {
                    self.tags[base + w] = Some((t, dirty || is_write, self.clock));
                    if is_write {
                        self.stats.write_hits += 1;
                    } else {
                        self.stats.read_hits += 1;
                    }
                    return;
                }
            }
        }

        // Miss: allocate (write-allocate policy ⇒ RFO read on write miss).
        self.stats.lines_in += 1;
        // Victim: empty way or true-LRU.
        let mut victim = 0usize;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            match self.tags[base + w] {
                None => {
                    victim = w;
                    break;
                }
                Some((_, _, stamp)) => {
                    if stamp < oldest {
                        oldest = stamp;
                        victim = w;
                    }
                }
            }
        }
        if let Some((_, dirty, _)) = self.tags[base + victim] {
            if dirty {
                self.stats.lines_out += 1;
            }
        }
        self.tags[base + victim] = Some((tag, is_write, self.clock));
    }

    /// Stream a contiguous array access pattern: `n` elements of
    /// `elem_bytes` starting at `base`, with the given kind.
    pub fn stream(&mut self, base: u64, n: u64, elem_bytes: u64, kind: AccessKind) {
        for i in 0..n {
            self.access(base + i * elem_bytes, kind);
        }
    }

    /// Flush all dirty lines (end-of-kernel accounting) and clear contents.
    pub fn flush(&mut self) {
        for slot in &mut self.tags {
            if let Some((_, dirty, _)) = slot.take() {
                if dirty {
                    self.stats.lines_out += 1;
                }
            }
        }
    }

    /// Reset statistics but keep contents (for steady-state measurements).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.nt_line_writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_geometry() {
        let c = CacheSim::new(32 << 10, 8, 64);
        assert_eq!(c.capacity_bytes(), 32 << 10);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    #[should_panic]
    fn rejects_non_multiple_capacity() {
        CacheSim::new(1000, 8, 64);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(4 << 10, 4, 64);
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Read);
        c.access(8, AccessKind::Read); // same line
        let s = c.stats();
        assert_eq!(s.reads, 3);
        assert_eq!(s.read_hits, 2);
        assert_eq!(s.lines_in, 1);
    }

    #[test]
    fn working_set_within_capacity_gets_full_reuse() {
        let mut c = CacheSim::new(64 << 10, 8, 64);
        // Touch 32 KiB twice: second pass must be all hits.
        c.stream(0, 512, 64, AccessKind::Read);
        c.reset_stats();
        c.stream(0, 512, 64, AccessKind::Read);
        assert_eq!(c.stats().hit_rate(), 1.0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_lru() {
        let mut c = CacheSim::new(4 << 10, 4, 64);
        // Stream 64 KiB cyclically: LRU on a cyclic pattern larger than
        // capacity gives 0% reuse on every pass.
        c.stream(0, 1024, 64, AccessKind::Read);
        c.reset_stats();
        c.stream(0, 1024, 64, AccessKind::Read);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn write_allocate_reads_line_in() {
        let mut c = CacheSim::new(4 << 10, 4, 64);
        c.access(0, AccessKind::Write);
        let s = c.stats();
        assert_eq!(s.lines_in, 1, "write miss must RFO the line");
        c.flush();
        assert_eq!(c.stats().lines_out, 1, "dirty line must write back");
    }

    #[test]
    fn streaming_store_bypasses_allocation() {
        let mut c = CacheSim::new(4 << 10, 4, 64);
        for i in 0..64u64 {
            c.access(i * 64, AccessKind::StreamingWrite);
        }
        let s = c.stats();
        assert_eq!(s.lines_in, 0, "NT stores must not allocate");
        assert_eq!(c.memory_traffic_bytes(), 64 * 64);
    }

    #[test]
    fn streaming_store_triad_moves_three_quarters_of_write_allocate_traffic() {
        // Triad: a[i] = b[i] + s*c[i]. With write-allocate: read b, read c,
        // RFO a, write back a = 4 lines per line of output. With NT stores:
        // read b, read c, stream a = 3 lines. Ratio 4/3 ≈ 1.33 — the upper
        // bound on the paper's 1446→1643 streaming-store gain.
        let n = 4096u64; // elements per array, f64
        let run = |nt: bool| {
            let mut c = CacheSim::new(32 << 10, 8, 64); // small: everything misses
            let (a, b, cc) = (0u64, 1 << 22, 2 << 22);
            for i in 0..n {
                c.access(b + i * 8, AccessKind::Read);
                c.access(cc + i * 8, AccessKind::Read);
                c.access(
                    a + i * 8,
                    if nt {
                        AccessKind::StreamingWrite
                    } else {
                        AccessKind::Write
                    },
                );
            }
            c.flush();
            c.memory_traffic_bytes()
        };
        let wa = run(false);
        let nt = run(true);
        let ratio = wa as f64 / nt as f64;
        assert!((ratio - 4.0 / 3.0).abs() < 0.05, "traffic ratio {ratio}");
    }

    #[test]
    fn lru_evicts_oldest() {
        // Direct-mapped-like scenario: 2-way set, 3 conflicting lines.
        let mut c = CacheSim::new(128, 2, 64); // 1 set, 2 ways
        c.access(0, AccessKind::Read); // line A
        c.access(64, AccessKind::Read); // line B
        c.access(0, AccessKind::Read); // touch A (B is now LRU)
        c.access(128, AccessKind::Read); // line C evicts B
        c.reset_stats();
        c.access(0, AccessKind::Read); // A still resident
        c.access(128, AccessKind::Read); // C still resident
        assert_eq!(c.stats().hit_rate(), 1.0);
        c.access(64, AccessKind::Read); // B was evicted
        assert_eq!(c.stats().lines_in, 1);
    }

    #[test]
    fn flush_is_idempotent() {
        let mut c = CacheSim::new(4 << 10, 4, 64);
        c.stream(0, 8, 64, AccessKind::Write);
        c.flush();
        let out1 = c.stats().lines_out;
        c.flush();
        assert_eq!(c.stats().lines_out, out1);
    }

    #[test]
    fn tiled_reuse_beats_streaming_over_large_array() {
        // The Figure 9 mechanism in miniature: process a 256 KiB array
        // twice. Untiled (pass 1 fully, then pass 2 fully) thrashes a
        // 64 KiB cache; tiled (per 32 KiB tile, do both passes) hits in
        // cache for the second pass of each tile.
        let cache_cap = 64 << 10;
        let array = 256 << 10u64;
        let untiled = {
            let mut c = CacheSim::new(cache_cap, 8, 64);
            c.stream(0, array / 64, 64, AccessKind::Read);
            c.stream(0, array / 64, 64, AccessKind::Read);
            c.flush();
            c.memory_traffic_bytes()
        };
        let tiled = {
            let mut c = CacheSim::new(cache_cap, 8, 64);
            let tile = 32 << 10u64;
            let mut base = 0;
            while base < array {
                c.stream(base, tile / 64, 64, AccessKind::Read);
                c.stream(base, tile / 64, 64, AccessKind::Read);
                base += tile;
            }
            c.flush();
            c.memory_traffic_bytes()
        };
        assert!(
            (untiled as f64 / tiled as f64 - 2.0).abs() < 0.1,
            "tiling should halve traffic: untiled {untiled} tiled {tiled}"
        );
    }
}
