//! Working-set → bandwidth model (Figure 1).
//!
//! BabelStream measures the bandwidth of simple vector kernels as a function
//! of array size. The observed curve is a staircase: while the working set
//! fits in a cache level the kernel streams at that level's bandwidth; once
//! it spills, bandwidth drops to the next level. The transitions are soft
//! because a working set slightly larger than a cache still gets partial
//! reuse.
//!
//! [`MemoryHierarchyModel`] evaluates that staircase for any
//! [`MachineSubset`] (one NUMA domain / one socket / whole machine), scaling
//! both capacity and bandwidth by the subset, exactly as the paper's
//! Figure 1 does.

use bwb_machine::{CacheScope, Platform};
use serde::{Deserialize, Serialize};

/// Which part of the machine runs the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineSubset {
    /// Threads confined to a single NUMA domain (and its memory).
    OneNuma,
    /// One full socket.
    OneSocket,
    /// The whole two-socket node.
    WholeMachine,
}

impl MachineSubset {
    pub const ALL: [MachineSubset; 3] = [
        MachineSubset::OneNuma,
        MachineSubset::OneSocket,
        MachineSubset::WholeMachine,
    ];

    pub fn label(self) -> &'static str {
        match self {
            MachineSubset::OneNuma => "1 NUMA domain",
            MachineSubset::OneSocket => "1 socket",
            MachineSubset::WholeMachine => "2 sockets",
        }
    }
}

/// One point of a bandwidth curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthCurve {
    pub working_set_bytes: u64,
    pub bandwidth_gbs: f64,
    /// Which level (1, 2, 3) served most of the traffic; 0 = main memory.
    pub dominant_level: u8,
}

/// Analytic memory-hierarchy model for one platform.
#[derive(Debug, Clone)]
pub struct MemoryHierarchyModel {
    platform: Platform,
}

impl MemoryHierarchyModel {
    pub fn new(platform: Platform) -> Self {
        Self { platform }
    }

    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Fraction of the machine's cores in the subset.
    pub fn core_fraction(&self, subset: MachineSubset) -> f64 {
        let t = &self.platform.topology;
        match subset {
            MachineSubset::OneNuma => 1.0 / t.total_numa() as f64,
            MachineSubset::OneSocket => 1.0 / t.sockets as f64,
            MachineSubset::WholeMachine => 1.0,
        }
    }

    /// Number of active physical cores in the subset.
    pub fn active_cores(&self, subset: MachineSubset) -> u32 {
        let t = &self.platform.topology;
        match subset {
            MachineSubset::OneNuma => t.cores_per_numa as u32,
            MachineSubset::OneSocket => (t.cores_per_numa * t.numa_per_socket) as u32,
            MachineSubset::WholeMachine => t.physical_cores(),
        }
    }

    /// Capacity of cache level `lvl` visible to the subset, bytes.
    pub fn subset_cache_capacity(&self, level: u8, subset: MachineSubset) -> u64 {
        let t = &self.platform.topology;
        let cores = self.active_cores(subset) as u64;
        let (sockets, numa) = match subset {
            MachineSubset::OneNuma => (1u64, 1u64),
            MachineSubset::OneSocket => (1, t.numa_per_socket as u64),
            MachineSubset::WholeMachine => (t.sockets as u64, t.total_numa() as u64),
        };
        self.platform
            .caches
            .iter()
            .find(|c| c.level == level)
            .map(|c| match c.scope {
                CacheScope::PerCore => c.capacity_bytes * cores,
                CacheScope::PerSocket => c.capacity_bytes * sockets,
                CacheScope::PerNuma => c.capacity_bytes * numa,
            })
            .unwrap_or(0)
    }

    /// Main-memory streaming bandwidth available to the subset, GB/s.
    ///
    /// NUMA memory controllers partition with the domains, so a single
    /// domain gets ~1/N of the machine bandwidth; a single socket gets half.
    pub fn subset_memory_bw(&self, subset: MachineSubset) -> f64 {
        self.platform.measured_triad_gbs * self.core_fraction(subset)
    }

    /// Cache-level streaming bandwidth for the subset, GB/s.
    pub fn subset_cache_bw(&self, level: u8, subset: MachineSubset) -> f64 {
        self.platform
            .caches
            .iter()
            .find(|c| c.level == level)
            .map(|c| c.stream_bw_gbs * self.core_fraction(subset))
            .unwrap_or(0.0)
    }

    /// Effective streaming bandwidth for a kernel whose per-core working set
    /// totals `working_set_bytes` across the subset.
    ///
    /// The model: find the innermost level whose subset capacity holds the
    /// working set; blend bandwidths across the transition with the hit
    /// fraction `min(1, capacity/ws)` (a working set 2× the cache still gets
    /// ~half its lines from cache).
    pub fn bandwidth(&self, working_set_bytes: u64, subset: MachineSubset) -> BandwidthCurve {
        let ws = working_set_bytes.max(1) as f64;
        // Ordered levels, innermost first, then memory as level 0.
        let mut levels: Vec<(u8, f64, f64)> = self
            .platform
            .caches
            .iter()
            .map(|c| {
                (
                    c.level,
                    self.subset_cache_capacity(c.level, subset) as f64,
                    self.subset_cache_bw(c.level, subset),
                )
            })
            .collect();
        levels.sort_by_key(|&(l, _, _)| l);

        let mem_bw = self.subset_memory_bw(subset);

        // Walk outwards: the first level that fully holds the WS serves it.
        for &(lvl, cap, bw) in &levels {
            if ws <= cap {
                return BandwidthCurve {
                    working_set_bytes,
                    bandwidth_gbs: bw,
                    dominant_level: lvl,
                };
            }
        }
        // Spilled past the LLC: blend LLC and memory bandwidth by the
        // fraction of lines still caught by the LLC.
        if let Some(&(lvl, cap, bw)) = levels.last() {
            let hit = (cap / ws).min(1.0);
            // Harmonic blend: time per byte is hit/bw_cache + (1-hit)/bw_mem.
            let t = hit / bw + (1.0 - hit) / mem_bw;
            let eff = 1.0 / t;
            let dominant = if hit > 0.5 { lvl } else { 0 };
            return BandwidthCurve {
                working_set_bytes,
                bandwidth_gbs: eff,
                dominant_level: dominant,
            };
        }
        BandwidthCurve {
            working_set_bytes,
            bandwidth_gbs: mem_bw,
            dominant_level: 0,
        }
    }

    /// Sweep working-set sizes (bytes, log-spaced) and return the curve —
    /// the Figure 1 x-axis.
    pub fn sweep(
        &self,
        subset: MachineSubset,
        from: u64,
        to: u64,
        points: usize,
    ) -> Vec<BandwidthCurve> {
        assert!(from > 0 && to > from && points >= 2);
        let lf = (from as f64).ln();
        let lt = (to as f64).ln();
        (0..points)
            .map(|i| {
                let x = lf + (lt - lf) * i as f64 / (points - 1) as f64;
                self.bandwidth(x.exp() as u64, subset)
            })
            .collect()
    }

    /// The cache:memory bandwidth ratio seen by the whole machine — drives
    /// the tiling gains of Figure 9.
    pub fn cache_ratio(&self) -> f64 {
        self.platform.cache_to_mem_bw_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwb_machine::platforms;

    fn model_max() -> MemoryHierarchyModel {
        MemoryHierarchyModel::new(platforms::xeon_max_9480())
    }

    #[test]
    fn large_working_sets_hit_memory_bandwidth() {
        let m = model_max();
        let c = m.bandwidth(8 << 30, MachineSubset::WholeMachine);
        assert_eq!(c.dominant_level, 0);
        // within 15% of the measured Triad figure (LLC still catches a sliver)
        assert!(
            (c.bandwidth_gbs - 1446.0).abs() / 1446.0 < 0.15,
            "{}",
            c.bandwidth_gbs
        );
    }

    #[test]
    fn small_working_sets_hit_cache_bandwidth() {
        let m = model_max();
        let c = m.bandwidth(1 << 20, MachineSubset::WholeMachine);
        assert!(c.dominant_level >= 1);
        assert!(
            c.bandwidth_gbs > 5.0 * 1446.0,
            "cache plateau {}",
            c.bandwidth_gbs
        );
    }

    #[test]
    fn bandwidth_curve_is_monotone_decreasing_in_ws() {
        let m = model_max();
        let sweep = m.sweep(MachineSubset::WholeMachine, 1 << 14, 8 << 30, 64);
        for w in sweep.windows(2) {
            assert!(
                w[1].bandwidth_gbs <= w[0].bandwidth_gbs * 1.0001,
                "bandwidth must not increase with working set: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn one_numa_gets_one_eighth_of_max_bandwidth() {
        let m = model_max();
        let whole = m.subset_memory_bw(MachineSubset::WholeMachine);
        let numa = m.subset_memory_bw(MachineSubset::OneNuma);
        assert!((whole / numa - 8.0).abs() < 1e-9);
    }

    #[test]
    fn one_socket_is_half() {
        let m = model_max();
        let whole = m.subset_memory_bw(MachineSubset::WholeMachine);
        let sock = m.subset_memory_bw(MachineSubset::OneSocket);
        assert!((whole / sock - 2.0).abs() < 1e-9);
    }

    #[test]
    fn subset_capacity_scales() {
        let m = model_max();
        // L2 is per-core: 14 cores in one NUMA domain × 2 MiB.
        assert_eq!(
            m.subset_cache_capacity(2, MachineSubset::OneNuma),
            14 * (2 << 20)
        );
        // L3 is per-NUMA on MAX: one slice.
        assert_eq!(m.subset_cache_capacity(3, MachineSubset::OneNuma), 14 << 20);
        assert_eq!(
            m.subset_cache_capacity(3, MachineSubset::WholeMachine),
            8 * (14 << 20)
        );
    }

    #[test]
    fn cache_transition_happens_near_capacity() {
        let m = model_max();
        let llc = m.subset_cache_capacity(3, MachineSubset::WholeMachine);
        let inside = m.bandwidth(llc / 2, MachineSubset::WholeMachine);
        let outside = m.bandwidth(llc * 16, MachineSubset::WholeMachine);
        assert!(inside.bandwidth_gbs > 2.0 * outside.bandwidth_gbs);
    }

    #[test]
    fn epyc_cache_plateau_extends_much_further() {
        // Paper Figure 1: EPYC's 3D V-Cache keeps bandwidth high out to
        // ~1.5 GB working sets, far beyond the Xeons.
        let amd = MemoryHierarchyModel::new(platforms::epyc_7v73x());
        let icx = MemoryHierarchyModel::new(platforms::xeon_8360y());
        let ws = 1 << 30; // 1 GiB
        let a = amd.bandwidth(ws, MachineSubset::WholeMachine);
        let i = icx.bandwidth(ws, MachineSubset::WholeMachine);
        assert!(
            a.bandwidth_gbs > 4.0 * i.bandwidth_gbs,
            "EPYC {} vs ICX {}",
            a.bandwidth_gbs,
            i.bandwidth_gbs
        );
        assert!(a.dominant_level == 3);
        assert_eq!(i.dominant_level, 0);
    }

    #[test]
    fn sweep_has_requested_points_and_is_sorted() {
        let m = model_max();
        let s = m.sweep(MachineSubset::OneSocket, 1 << 16, 1 << 28, 25);
        assert_eq!(s.len(), 25);
        for w in s.windows(2) {
            assert!(w[0].working_set_bytes <= w[1].working_set_bytes);
        }
    }

    #[test]
    #[should_panic]
    fn sweep_rejects_bad_range() {
        model_max().sweep(MachineSubset::OneNuma, 100, 50, 10);
    }

    #[test]
    fn subset_labels() {
        assert_eq!(MachineSubset::WholeMachine.label(), "2 sockets");
        assert_eq!(MachineSubset::ALL.len(), 3);
    }
}
