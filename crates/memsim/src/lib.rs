//! # bwb-memsim — memory hierarchy models
//!
//! Substitute for the real memory systems of the paper's platforms. Three
//! layers:
//!
//! * [`hierarchy`] — an analytic *working-set → bandwidth* model that
//!   reproduces Figure 1's BabelStream curves: at small array sizes the
//!   kernels run out of cache (high plateau), at large sizes out of
//!   HBM/DDR (low plateau), with the machine subset (one NUMA domain, one
//!   socket, both sockets) scaling both capacity and bandwidth.
//! * [`cachesim`] — an executable set-associative LRU cache simulator used
//!   to validate the analytic model's capacity transitions and to study
//!   the cache-blocking tiling of Figure 9 at small scale.
//! * [`stores`] — write-allocate vs streaming-store traffic accounting,
//!   the mechanism behind the paper's two Xeon MAX flag sets (1446 vs
//!   1643 GB/s).

pub mod cachesim;
pub mod hierarchy;
pub mod stores;

pub use cachesim::{AccessKind, CacheSim, CacheStats};
pub use hierarchy::{BandwidthCurve, MachineSubset, MemoryHierarchyModel};
pub use stores::{StoreMode, TrafficModel};
