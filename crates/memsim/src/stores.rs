//! Write-allocate vs streaming-store traffic accounting.
//!
//! STREAM-style bandwidth numbers count *useful* bytes (reads the kernel
//! needs plus writes it produces). The hardware may move more: a regular
//! write miss first reads the line (read-for-ownership), inflating traffic
//! by one line per written line. Non-temporal ("streaming") stores skip the
//! RFO. The paper's two Xeon MAX flag sets differ exactly in this (§2,
//! Figure 1: 1446 GB/s application flags vs 1643 GB/s with `-qopt-streaming-
//! stores=always` style tuning).

use serde::{Deserialize, Serialize};

/// Store policy in effect for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StoreMode {
    /// Regular cached stores: every written line costs an extra read (RFO).
    WriteAllocate,
    /// Non-temporal stores: written lines go straight to memory.
    Streaming,
}

/// Byte-traffic model for a kernel with known read/write volumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// Useful bytes read per iteration (or per element).
    pub read_bytes: f64,
    /// Useful bytes written per iteration (or per element).
    pub write_bytes: f64,
}

impl TrafficModel {
    pub fn new(read_bytes: f64, write_bytes: f64) -> Self {
        assert!(read_bytes >= 0.0 && write_bytes >= 0.0);
        TrafficModel {
            read_bytes,
            write_bytes,
        }
    }

    /// STREAM-convention useful bytes.
    pub fn useful_bytes(&self) -> f64 {
        self.read_bytes + self.write_bytes
    }

    /// Actual bytes the memory system moves under the store mode.
    pub fn moved_bytes(&self, mode: StoreMode) -> f64 {
        match mode {
            StoreMode::WriteAllocate => self.read_bytes + 2.0 * self.write_bytes,
            StoreMode::Streaming => self.useful_bytes(),
        }
    }

    /// The *reported* bandwidth (useful bytes / time) when the memory system
    /// sustains `raw_bw_gbs` of actual traffic.
    pub fn reported_bandwidth_gbs(&self, raw_bw_gbs: f64, mode: StoreMode) -> f64 {
        raw_bw_gbs * self.useful_bytes() / self.moved_bytes(mode)
    }

    /// Speedup of streaming stores over write-allocate for this kernel
    /// (pure traffic ratio: the upper bound on the observable gain).
    pub fn streaming_store_gain(&self) -> f64 {
        self.moved_bytes(StoreMode::WriteAllocate) / self.moved_bytes(StoreMode::Streaming)
    }

    // --- The BabelStream kernels (f64 elements), paper Figure 1 ---

    /// Copy: c[i] = a[i] — 8 read + 8 write bytes per element.
    pub fn stream_copy() -> Self {
        TrafficModel::new(8.0, 8.0)
    }

    /// Mul: b[i] = s·c[i].
    pub fn stream_mul() -> Self {
        TrafficModel::new(8.0, 8.0)
    }

    /// Add: c[i] = a[i] + b[i].
    pub fn stream_add() -> Self {
        TrafficModel::new(16.0, 8.0)
    }

    /// Triad: a[i] = b[i] + s·c[i] — the paper's headline kernel.
    pub fn stream_triad() -> Self {
        TrafficModel::new(16.0, 8.0)
    }

    /// Dot: sum += a[i]·b[i] — reads only.
    pub fn stream_dot() -> Self {
        TrafficModel::new(16.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_streaming_gain_is_four_thirds() {
        let t = TrafficModel::stream_triad();
        assert!((t.streaming_store_gain() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dot_gains_nothing_from_streaming_stores() {
        let t = TrafficModel::stream_dot();
        assert_eq!(t.streaming_store_gain(), 1.0);
    }

    #[test]
    fn copy_gain_is_three_halves() {
        // Copy writes half its useful bytes: (8+16)/(8+8) = 1.5.
        let t = TrafficModel::stream_copy();
        assert!((t.streaming_store_gain() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reported_bandwidth_below_raw_under_write_allocate() {
        let t = TrafficModel::stream_triad();
        let raw = 2000.0;
        let rep = t.reported_bandwidth_gbs(raw, StoreMode::WriteAllocate);
        assert!(rep < raw);
        assert!((rep - raw * 24.0 / 32.0).abs() < 1e-9);
        // Streaming mode reports the full raw bandwidth.
        assert_eq!(t.reported_bandwidth_gbs(raw, StoreMode::Streaming), raw);
    }

    #[test]
    fn paper_xeon_max_flag_gap_is_within_traffic_bound() {
        // 1643/1446 = 1.136 must be ≤ the theoretical 4/3 Triad bound.
        let observed = 1643.0 / 1446.0;
        let bound = TrafficModel::stream_triad().streaming_store_gain();
        assert!(observed <= bound);
        assert!(observed > 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_traffic_rejected() {
        TrafficModel::new(-1.0, 0.0);
    }
}
