//! CloverLeaf 2D — structured-mesh Eulerian hydrodynamics (paper §3, app 2).
//!
//! A compact re-implementation of the CloverLeaf algorithm: compressible
//! Euler equations on a staggered Cartesian grid (cell-centred density,
//! energy, pressure; node-centred velocities), solved with an explicit
//! Lagrangian step (ideal-gas EOS, artificial viscosity, PdV work, nodal
//! acceleration) followed by directional-split first-order donor-cell
//! advective remap — the same kernel structure (ideal_gas, viscosity,
//! calc_dt, accelerate, pdv, flux_calc, advec_cell x/y, advec_mom x/y,
//! update_halo, reset) and data-access patterns as the original, with
//! van-Leer limiting simplified to donor-cell (documented substitution:
//! first-order advection preserves the bandwidth-bound character — the
//! paper's concern — while keeping the remap exactly conservative).
//!
//! Closed reflective box; validation: exact mass conservation, bounded
//! total energy, preserved mirror symmetry.
//!
//! Double precision; paper size 7680², 50 iterations (here scaled down by
//! default, `Config::paper()` gives the full size).

use crate::{AppId, AppRun};
use bwb_ops::{
    fused2_rows, par_loop2, par_loop2_reduce, par_loop2_rows, recording_active, Dat2, DistBlock2,
    ExecMode, FusedLoop2, OptPlan, Profile, Range2, RowIn2, RowOut2,
};
use bwb_shmpi::{Comm, ReduceOp};
use std::time::Instant;

pub const GAMMA: f64 = 1.4;
/// Halo depth (CloverLeaf uses 2).
pub const HALO: usize = 2;

/// Advective remap scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advection {
    /// First-order upwind (exactly conservative, diffusive).
    DonorCell,
    /// Second-order van Leer-limited reconstruction — CloverLeaf's actual
    /// scheme: still exactly conservative, much sharper fronts.
    VanLeer,
}

#[derive(Debug, Clone)]
pub struct Config {
    pub nx: usize,
    pub ny: usize,
    pub iterations: usize,
    /// CFL safety factor.
    pub cfl: f64,
    pub mode: ExecMode,
    pub advection: Advection,
    /// Optimization plan from `dslcheck` certificates. `None` (or an empty
    /// plan) runs the baseline schedule; a plan enables exactly the
    /// transforms it certifies — fused `ideal_gas`+`viscosity` traversal
    /// and elision of always-redundant halo-exchange sites — all of which
    /// are bit-identical to the baseline by construction.
    pub plan: Option<OptPlan>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            nx: 48,
            ny: 48,
            iterations: 20,
            cfl: 0.5,
            mode: ExecMode::Serial,
            advection: Advection::DonorCell,
            plan: None,
        }
    }
}

impl Config {
    /// Paper testcase: 7680², 50 iterations, van Leer advection.
    pub fn paper() -> Self {
        Config {
            nx: 7680,
            ny: 7680,
            iterations: 50,
            cfl: 0.5,
            mode: ExecMode::Rayon,
            advection: Advection::VanLeer,
            plan: None,
        }
    }
}

/// Van Leer flux limiter φ(r) = (r + |r|) / (1 + |r|).
#[inline]
fn van_leer(r: f64) -> f64 {
    if r.is_finite() {
        (r + r.abs()) / (1.0 + r.abs())
    } else {
        2.0 // monotone upstream: Δ downstream is 0 ⇒ limited slope is 0 anyway
    }
}

/// The solver state (one rank's sub-block when distributed).
pub struct Clover2 {
    cfg: Config,
    /// Local cell counts.
    nx: usize,
    ny: usize,
    dx: f64,
    dy: f64,
    dist: Option<DistBlock2>,
    // Cell-centred:
    density0: Dat2<f64>,
    density1: Dat2<f64>,
    energy0: Dat2<f64>,
    energy1: Dat2<f64>,
    pressure: Dat2<f64>,
    viscosity: Dat2<f64>,
    soundspeed: Dat2<f64>,
    work_d: Dat2<f64>,
    work_e: Dat2<f64>,
    // Node-centred ((nx+1)×(ny+1)):
    xvel0: Dat2<f64>,
    xvel1: Dat2<f64>,
    yvel0: Dat2<f64>,
    yvel1: Dat2<f64>,
    work_u: Dat2<f64>,
    work_v: Dat2<f64>,
    // Face-centred volume fluxes:
    vol_flux_x: Dat2<f64>,
    vol_flux_y: Dat2<f64>,
}

impl Clover2 {
    /// Single-rank setup of the standard CloverLeaf-like test state:
    /// ambient (ρ=0.2, e=1.0) with an energetic dense square in the lower
    /// left quadrant (ρ=1.0, e=2.5).
    pub fn new(cfg: Config) -> Self {
        Self::build(cfg, None, [0, 0], None)
    }

    /// Distributed setup: each rank owns a sub-block of the global grid.
    pub fn new_distributed(comm: &Comm, cfg: Config) -> Self {
        let block = DistBlock2::new(comm, cfg.nx, cfg.ny);
        let start = block.start();
        Self::build(cfg, Some((block.nx(), block.ny())), start, Some(block))
    }

    fn build(
        cfg: Config,
        local: Option<(usize, usize)>,
        start: [usize; 2],
        dist: Option<DistBlock2>,
    ) -> Self {
        let (nx, ny) = local.unwrap_or((cfg.nx, cfg.ny));
        let dx = 10.0 / cfg.nx as f64;
        let dy = 10.0 / cfg.ny as f64;
        let cell = |n: &str| Dat2::<f64>::new(n, nx, ny, HALO);
        let node = |n: &str| Dat2::<f64>::new(n, nx + 1, ny + 1, HALO);
        let mut density0 = cell("density0");
        let mut energy0 = cell("energy0");

        // Global-coordinate initial state.
        let gnx = cfg.nx;
        let gny = cfg.ny;
        density0.init_with(|i, j| {
            let gi = start[0] as isize + i;
            let gj = start[1] as isize + j;
            if gi < gnx as isize / 2 && gj < gny as isize / 2 {
                1.0
            } else {
                0.2
            }
        });
        energy0.init_with(|i, j| {
            let gi = start[0] as isize + i;
            let gj = start[1] as isize + j;
            if gi < gnx as isize / 2 && gj < gny as isize / 2 {
                2.5
            } else {
                1.0
            }
        });

        Clover2 {
            nx,
            ny,
            dx,
            dy,
            dist,
            density1: cell("density1"),
            energy1: cell("energy1"),
            pressure: cell("pressure"),
            viscosity: cell("viscosity"),
            soundspeed: cell("soundspeed"),
            work_d: cell("work_d"),
            work_e: cell("work_e"),
            xvel0: node("xvel0"),
            xvel1: node("xvel1"),
            yvel0: node("yvel0"),
            yvel1: node("yvel1"),
            work_u: node("work_u"),
            work_v: node("work_v"),
            vol_flux_x: Dat2::new("vol_flux_x", nx + 1, ny, HALO),
            vol_flux_y: Dat2::new("vol_flux_y", nx, ny + 1, HALO),
            density0,
            energy0,
            cfg,
        }
    }

    fn cells(&self) -> Range2 {
        Range2::interior(self.nx, self.ny)
    }

    fn nodes(&self) -> Range2 {
        Range2::interior(self.nx + 1, self.ny + 1)
    }

    /// Reflective physical boundaries + inter-rank halo exchange for the
    /// cell fields needed by the stencil kernels. The small per-face mirror
    /// loops are CloverLeaf's "update_halo" boundary kernels — the many
    /// small kernels the paper blames for SYCL's launch-overhead penalty.
    ///
    /// Structured per field — mirror-x, exchange-x, mirror-y, exchange-y —
    /// so the two exchange dimensions of one field form a single recorded
    /// exchange at the labelled `site`. Fields are independent, so this
    /// ordering is bit-identical to the phase-x-then-phase-y sweep it
    /// replaces. When `cfg.plan` carries an [`bwb_ops::ElisionCert`] for
    /// `(site, field)`, both exchange passes are skipped (mirrors are
    /// recomputation of unchanged values and still run); a debug build
    /// asserts the elided field's interior boundary strips are unchanged
    /// since its last real exchange.
    fn update_halo_cells(
        &mut self,
        profile: &mut Profile,
        mut comm: Option<&mut Comm>,
        site: &str,
    ) {
        let nx = self.nx as isize;
        let ny = self.ny as isize;
        let h = HALO as isize;
        let (low_x, high_x, low_y, high_y) = match &self.dist {
            None => (true, true, true, true),
            Some(b) => (
                b.at_low_boundary(0),
                b.at_high_boundary(0),
                b.at_low_boundary(1),
                b.at_high_boundary(1),
            ),
        };
        let block = self.dist.clone();
        let plan = if recording_active() {
            None
        } else {
            self.cfg.plan.as_ref()
        };
        let mut points = 0usize;
        let t0 = Instant::now();
        let mut comm_seconds = 0.0;

        for f in [
            &mut self.density0,
            &mut self.energy0,
            &mut self.pressure,
            &mut self.viscosity,
            &mut self.density1,
            &mut self.energy1,
        ] {
            // Mirror X: physical-boundary ghosts over interior rows.
            if low_x {
                for j in 0..ny {
                    for hh in 1..=h {
                        f.set(-hh, j, f.get(hh - 1, j));
                        points += 1;
                    }
                }
            }
            if high_x {
                for j in 0..ny {
                    for hh in 1..=h {
                        f.set(nx - 1 + hh, j, f.get(nx - hh, j));
                        points += 1;
                    }
                }
            }
            let elide = plan.is_some_and(|p| p.elides(site, f.name()));
            if let (Some(b), Some(c)) = (&block, comm.as_deref_mut()) {
                if !elide {
                    let tc = Instant::now();
                    b.exchange_halo_dim_site(c, f, HALO, 0, site);
                    comm_seconds += tc.elapsed().as_secs_f64();
                }
            }
            // Mirror Y: over x-extended rows (reads the x ghosts above).
            if low_y {
                for i in -h..nx + h {
                    for hh in 1..=h {
                        f.set(i, -hh, f.get(i, hh - 1));
                        points += 1;
                    }
                }
            }
            if high_y {
                for i in -h..nx + h {
                    for hh in 1..=h {
                        f.set(i, ny - 1 + hh, f.get(i, ny - hh));
                        points += 1;
                    }
                }
            }
            if let (Some(b), Some(c)) = (&block, comm.as_deref_mut()) {
                if elide {
                    b.elide_halo(f, HALO, site);
                    let _ = c;
                } else {
                    let tc = Instant::now();
                    b.exchange_halo_dim_site(c, f, HALO, 1, site);
                    comm_seconds += tc.elapsed().as_secs_f64();
                }
            }
        }
        let total = t0.elapsed().as_secs_f64();
        // Record per field (6 boundary-kernel launches), mirroring how OPS
        // launches one small update_halo kernel per field — the granularity
        // the SYCL launch-overhead analysis (paper §5.1) depends on.
        let per = (points / 6).max(1);
        for _ in 0..6 {
            profile.record(
                "update_halo",
                per,
                per * 16,
                0.0,
                (total - comm_seconds) / 6.0,
            );
        }
    }

    /// Reflective node-velocity boundary: zero normal velocity on walls.
    fn apply_velocity_bcs(&mut self, profile: &mut Profile) {
        let t0 = Instant::now();
        let nnx = self.nx as isize; // last node index
        let nny = self.ny as isize;
        let (low_x, high_x, low_y, high_y) = match &self.dist {
            None => (true, true, true, true),
            Some(b) => (
                b.at_low_boundary(0),
                b.at_high_boundary(0),
                b.at_low_boundary(1),
                b.at_high_boundary(1),
            ),
        };
        let mut points = 0usize;
        for v in [&mut self.xvel0, &mut self.xvel1] {
            if low_x {
                for j in 0..=nny {
                    v.set(0, j, 0.0);
                    points += 1;
                }
            }
            if high_x {
                for j in 0..=nny {
                    v.set(nnx, j, 0.0);
                    points += 1;
                }
            }
        }
        for v in [&mut self.yvel0, &mut self.yvel1] {
            if low_y {
                for i in 0..=nnx {
                    v.set(i, 0, 0.0);
                    points += 1;
                }
            }
            if high_y {
                for i in 0..=nnx {
                    v.set(i, nny, 0.0);
                    points += 1;
                }
            }
        }
        profile.record(
            "update_halo_vel",
            points,
            points * 8,
            0.0,
            t0.elapsed().as_secs_f64(),
        );
    }

    /// Exchange node-velocity halos between ranks. Exchanges the plan
    /// certifies redundant at this `site` are elided (buffer names travel
    /// with the velocity double-buffer swap, so the certificate's dat name
    /// matches whatever buffer currently sits in each slot).
    fn exchange_velocities(&mut self, comm: Option<&mut Comm>, site: &str) {
        if let (Some(block), Some(comm)) = (self.dist.clone(), comm) {
            let plan = if recording_active() {
                None
            } else {
                self.cfg.plan.as_ref()
            };
            // Node fields are (nx+1)×(ny+1); the shared interface column is
            // duplicated on both ranks, so a depth-1 exchange keeps ghosts
            // consistent; interface nodes are computed identically on both
            // sides from the same (exchanged) cell data.
            for f in [
                &mut self.xvel0,
                &mut self.yvel0,
                &mut self.xvel1,
                &mut self.yvel1,
            ] {
                if plan.is_some_and(|p| p.elides(site, f.name())) {
                    block.elide_node_halo(f, 1, site);
                } else {
                    block.exchange_node_halo_site(comm, f, 1, site);
                }
            }
        }
    }

    /// EOS: p = (γ−1)ρe, ss = √(γp/ρ). Slice fast path: pointwise over
    /// contiguous rows, so the compiler autovectorizes the EOS arithmetic.
    fn ideal_gas(&mut self, profile: &mut Profile) {
        par_loop2_rows(
            profile,
            "ideal_gas",
            self.cfg.mode,
            self.cells(),
            &mut [&mut self.pressure, &mut self.soundspeed],
            &[&self.density0, &self.energy0],
            5.0,
            |_j, out, ins| ideal_gas_body(out, ins),
        );
    }

    /// Artificial (quadratic) viscosity on compressing cells.
    fn viscosity_kernel(&mut self, profile: &mut Profile) {
        let (dx, dy) = (self.dx, self.dy);
        par_loop2_rows(
            profile,
            "viscosity",
            self.cfg.mode,
            self.cells(),
            &mut [&mut self.viscosity],
            &[&self.density0, &self.xvel0, &self.yvel0],
            12.0,
            move |_j, out, ins| viscosity_body(dx, dy, out, ins),
        );
    }

    /// Plan-guided fused `ideal_gas`+`viscosity`: both kernel bodies over
    /// one pass of each row. Legal because nothing `viscosity` reads is
    /// written by `ideal_gas` (the certificate's radius-0 all-pairs check);
    /// bit-identical because the bodies are the very same functions the
    /// sequential path runs.
    fn ideal_gas_viscosity_fused(&mut self, profile: &mut Profile, plan: &OptPlan) {
        let (dx, dy) = (self.dx, self.dy);
        // Store: mut [pressure, soundspeed, viscosity], ro [density0,
        // energy0, xvel0, yvel0] → global field indices 3..=6.
        let loops = [
            FusedLoop2::new("ideal_gas", &[0, 1], &[3, 4], 5.0, |_j, out, ins| {
                ideal_gas_body(out, ins)
            }),
            FusedLoop2::new("viscosity", &[2], &[3, 5, 6], 12.0, move |_j, out, ins| {
                viscosity_body(dx, dy, out, ins)
            }),
        ];
        fused2_rows(
            profile,
            self.cfg.mode,
            self.cells(),
            &mut [
                &mut self.pressure,
                &mut self.soundspeed,
                &mut self.viscosity,
            ],
            &[&self.density0, &self.energy0, &self.xvel0, &self.yvel0],
            &loops,
            plan,
        )
        .expect("certified fusion rejected at runtime");
    }

    /// CFL time step (local min; allreduced when distributed).
    fn calc_dt(&mut self, profile: &mut Profile, comm: Option<&mut Comm>) -> f64 {
        let (dx, dy, cfl) = (self.dx, self.dy, self.cfg.cfl);
        let local = par_loop2_reduce(
            profile,
            "calc_dt",
            self.cfg.mode,
            self.cells(),
            &[&self.soundspeed, &self.xvel0, &self.yvel0],
            f64::INFINITY,
            8.0,
            move |_i, _j, ins| {
                let ss = ins.get(0, 0, 0);
                let u = ins.get(1, 0, 0).abs().max(ins.get(1, 1, 1).abs());
                let v = ins.get(2, 0, 0).abs().max(ins.get(2, 1, 1).abs());
                cfl * (dx / (ss + u + 1e-12)).min(dy / (ss + v + 1e-12))
            },
            f64::min,
        );
        match comm {
            Some(c) => c.allreduce_scalar(local, ReduceOp::Min),
            None => local,
        }
    }

    /// Nodal acceleration from pressure + viscosity gradients.
    fn accelerate(&mut self, profile: &mut Profile, dt: f64) {
        let (dx, dy) = (self.dx, self.dy);
        let vol = dx * dy;
        par_loop2_rows(
            profile,
            "accelerate",
            self.cfg.mode,
            self.nodes(),
            &mut [&mut self.xvel1, &mut self.yvel1],
            &[
                &self.density0,
                &self.pressure,
                &self.viscosity,
                &self.xvel0,
                &self.yvel0,
            ],
            25.0,
            move |_j, out, ins| {
                // Node (i,j) neighbours cells (i-1..i)×(j-1..j).
                let d_mm = ins.row_off(0, -1, -1);
                let d_0m = ins.row_off(0, 0, -1);
                let d_00 = ins.row_off(0, 0, 0);
                let d_m0 = ins.row_off(0, -1, 0);
                let p_mm = ins.row_off(1, -1, -1);
                let p_0m = ins.row_off(1, 0, -1);
                let p_00 = ins.row_off(1, 0, 0);
                let p_m0 = ins.row_off(1, -1, 0);
                let q_mm = ins.row_off(2, -1, -1);
                let q_0m = ins.row_off(2, 0, -1);
                let q_00 = ins.row_off(2, 0, 0);
                let q_m0 = ins.row_off(2, -1, 0);
                let u0 = ins.row(3);
                let v0 = ins.row(4);
                let (u1, v1) = out.rows2(0, 1);
                for i in 0..u1.len() {
                    let nodal_mass = 0.25 * vol * (d_mm[i] + d_0m[i] + d_00[i] + d_m0[i]);
                    let stepbymass = 0.5 * dt / nodal_mass;
                    let pq_00 = p_00[i] + q_00[i];
                    let pq_0m = p_0m[i] + q_0m[i];
                    let pq_m0 = p_m0[i] + q_m0[i];
                    let pq_mm = p_mm[i] + q_mm[i];
                    let dpx = (pq_00 + pq_0m) - (pq_m0 + pq_mm);
                    let dpy = (pq_00 + pq_m0) - (pq_0m + pq_mm);
                    u1[i] = u0[i] - stepbymass * dpx * dy;
                    v1[i] = v0[i] - stepbymass * dpy * dx;
                }
            },
        );
    }

    /// PdV work: internal-energy update from the velocity divergence.
    /// (Density is updated exclusively by the conservative remap.)
    fn pdv(&mut self, profile: &mut Profile, dt: f64) {
        let (dx, dy) = (self.dx, self.dy);
        par_loop2_rows(
            profile,
            "pdv",
            self.cfg.mode,
            self.cells(),
            &mut [&mut self.energy1, &mut self.density1],
            &[
                &self.density0,
                &self.energy0,
                &self.pressure,
                &self.viscosity,
                &self.xvel1,
                &self.yvel1,
            ],
            20.0,
            move |_j, out, ins| {
                let rho = ins.row(0);
                let e = ins.row(1);
                let p = ins.row(2);
                let q = ins.row(3);
                let u00 = ins.row_off(4, 0, 0);
                let u10 = ins.row_off(4, 1, 0);
                let u01 = ins.row_off(4, 0, 1);
                let u11 = ins.row_off(4, 1, 1);
                let v00 = ins.row_off(5, 0, 0);
                let v10 = ins.row_off(5, 1, 0);
                let v01 = ins.row_off(5, 0, 1);
                let v11 = ins.row_off(5, 1, 1);
                let (e1, d1) = out.rows2(0, 1);
                for i in 0..e1.len() {
                    let ugrad = 0.5 * ((u10[i] + u11[i]) - (u00[i] + u01[i]));
                    let vgrad = 0.5 * ((v01[i] + v11[i]) - (v00[i] + v10[i]));
                    let div = ugrad / dx + vgrad / dy;
                    let pq = p[i] + q[i];
                    e1[i] = (e[i] - dt * pq * div / rho[i]).max(1e-10);
                    d1[i] = rho[i];
                }
            },
        );
    }

    /// Face volume fluxes from the time-centred node velocities.
    fn flux_calc(&mut self, profile: &mut Profile, dt: f64) {
        let (dx, dy, nx, ny) = (self.dx, self.dy, self.nx, self.ny);
        let mode = self.cfg.mode;
        par_loop2_rows(
            profile,
            "flux_calc_x",
            mode,
            Range2::new(0, nx as isize + 1, 0, ny as isize),
            &mut [&mut self.vol_flux_x],
            &[&self.xvel0, &self.xvel1],
            5.0,
            move |_j, out, ins| {
                let u0 = ins.row_off(0, 0, 0);
                let u0j = ins.row_off(0, 0, 1);
                let u1 = ins.row_off(1, 0, 0);
                let u1j = ins.row_off(1, 0, 1);
                let fx = out.row(0);
                for i in 0..fx.len() {
                    let u = 0.25 * (u0[i] + u0j[i] + u1[i] + u1j[i]);
                    fx[i] = u * dt * dy;
                }
            },
        );
        par_loop2_rows(
            profile,
            "flux_calc_y",
            mode,
            Range2::new(0, nx as isize, 0, ny as isize + 1),
            &mut [&mut self.vol_flux_y],
            &[&self.yvel0, &self.yvel1],
            5.0,
            move |_j, out, ins| {
                let v0 = ins.row_off(0, 0, 0);
                let v0i = ins.row_off(0, 1, 0);
                let v1 = ins.row_off(1, 0, 0);
                let v1i = ins.row_off(1, 1, 0);
                let fy = out.row(0);
                for i in 0..fy.len() {
                    let v = 0.25 * (v0[i] + v0i[i] + v1[i] + v1i[i]);
                    fy[i] = v * dt * dx;
                }
            },
        );
    }

    /// Conservative remap, X sweep (donor-cell or van Leer per the
    /// config). Reads density1/energy1 + vol_flux_x, writes work arrays
    /// (swapped back by the caller).
    fn advec_cell_x(&mut self, profile: &mut Profile) {
        let vol = self.dx * self.dy;
        let scheme = self.cfg.advection;
        par_loop2(
            profile,
            "advec_cell_x",
            self.cfg.mode,
            self.cells(),
            &mut [&mut self.work_d, &mut self.work_e],
            &[&self.density1, &self.energy1, &self.vol_flux_x],
            if scheme == Advection::VanLeer {
                38.0
            } else {
                18.0
            },
            move |_i, _j, out, ins| {
                // Face value with optional van Leer-limited reconstruction
                // from the donor cell toward the face.
                let face_val = |f: usize, face: isize, fv: f64| -> f64 {
                    let (donor, toward) = if fv > 0.0 { (face - 1, 1) } else { (face, -1) };
                    let d = ins.get(f, donor, 0);
                    if scheme == Advection::DonorCell {
                        return d;
                    }
                    let down = ins.get(f, donor + toward, 0);
                    let up = ins.get(f, donor - toward, 0);
                    let dd = down - d;
                    if dd == 0.0 {
                        return d;
                    }
                    let r = (d - up) / dd;
                    let sigma = (fv / vol).abs().min(1.0);
                    d + 0.5 * van_leer(r) * (1.0 - sigma) * dd
                };
                // Face i (left of cell): flux from cell i-1 → i when > 0.
                let flux_mass = |face: isize| -> (f64, f64) {
                    let fv = ins.get(2, face, 0);
                    let m = fv * face_val(0, face, fv);
                    (m, m * face_val(1, face, fv))
                };
                let (m_in, e_in) = flux_mass(0);
                let (m_out, e_out) = flux_mass(1);
                let rho = ins.get(0, 0, 0);
                let e = ins.get(1, 0, 0);
                let mass = rho * vol + m_in - m_out;
                let energy_mass = rho * e * vol + e_in - e_out;
                out.set(0, mass / vol);
                out.set(1, energy_mass / mass.max(1e-300));
            },
        );
        std::mem::swap(&mut self.density1, &mut self.work_d);
        std::mem::swap(&mut self.energy1, &mut self.work_e);
    }

    /// Conservative remap, Y sweep.
    fn advec_cell_y(&mut self, profile: &mut Profile) {
        let vol = self.dx * self.dy;
        let scheme = self.cfg.advection;
        par_loop2(
            profile,
            "advec_cell_y",
            self.cfg.mode,
            self.cells(),
            &mut [&mut self.work_d, &mut self.work_e],
            &[&self.density1, &self.energy1, &self.vol_flux_y],
            if scheme == Advection::VanLeer {
                38.0
            } else {
                18.0
            },
            move |_i, _j, out, ins| {
                let face_val = |f: usize, face: isize, fv: f64| -> f64 {
                    let (donor, toward) = if fv > 0.0 { (face - 1, 1) } else { (face, -1) };
                    let d = ins.get(f, 0, donor);
                    if scheme == Advection::DonorCell {
                        return d;
                    }
                    let down = ins.get(f, 0, donor + toward);
                    let up = ins.get(f, 0, donor - toward);
                    let dd = down - d;
                    if dd == 0.0 {
                        return d;
                    }
                    let r = (d - up) / dd;
                    let sigma = (fv / vol).abs().min(1.0);
                    d + 0.5 * van_leer(r) * (1.0 - sigma) * dd
                };
                let flux_mass = |face: isize| -> (f64, f64) {
                    let fv = ins.get(2, 0, face);
                    let m = fv * face_val(0, face, fv);
                    (m, m * face_val(1, face, fv))
                };
                let (m_in, e_in) = flux_mass(0);
                let (m_out, e_out) = flux_mass(1);
                let rho = ins.get(0, 0, 0);
                let e = ins.get(1, 0, 0);
                let mass = rho * vol + m_in - m_out;
                let energy_mass = rho * e * vol + e_in - e_out;
                out.set(0, mass / vol);
                out.set(1, energy_mass / mass.max(1e-300));
            },
        );
        std::mem::swap(&mut self.density1, &mut self.work_d);
        std::mem::swap(&mut self.energy1, &mut self.work_e);
    }

    /// Upwind momentum advection (both sweeps fused per direction).
    fn advec_mom(&mut self, profile: &mut Profile, dt: f64) {
        let (dx, dy) = (self.dx, self.dy);
        par_loop2(
            profile,
            "advec_mom",
            self.cfg.mode,
            self.nodes(),
            &mut [&mut self.work_u, &mut self.work_v],
            &[&self.xvel1, &self.yvel1],
            20.0,
            move |_i, _j, out, ins| {
                let u = ins.get(0, 0, 0);
                let v = ins.get(1, 0, 0);
                let upwind = |f: usize, du: f64, dv: f64| -> f64 {
                    let ddx = if du > 0.0 {
                        ins.get(f, 0, 0) - ins.get(f, -1, 0)
                    } else {
                        ins.get(f, 1, 0) - ins.get(f, 0, 0)
                    } / dx;
                    let ddy = if dv > 0.0 {
                        ins.get(f, 0, 0) - ins.get(f, 0, -1)
                    } else {
                        ins.get(f, 0, 1) - ins.get(f, 0, 0)
                    } / dy;
                    du * ddx + dv * ddy
                };
                out.set(0, u - dt * upwind(0, u, v));
                out.set(1, v - dt * upwind(1, u, v));
            },
        );
    }

    /// Reset: advected quantities become the next step's initial state.
    /// Slice path: each row is a straight memcpy.
    fn reset_field(&mut self, profile: &mut Profile) {
        par_loop2_rows(
            profile,
            "reset_field",
            self.cfg.mode,
            self.cells(),
            &mut [&mut self.density0, &mut self.energy0],
            &[&self.density1, &self.energy1],
            0.0,
            |_j, out, ins| {
                let (d, e) = out.rows2(0, 1);
                d.copy_from_slice(ins.row(0));
                e.copy_from_slice(ins.row(1));
            },
        );
        std::mem::swap(&mut self.xvel0, &mut self.work_u);
        std::mem::swap(&mut self.yvel0, &mut self.work_v);
    }

    /// One full hydro cycle; returns the dt used.
    pub fn cycle(&mut self, profile: &mut Profile, mut comm: Option<&mut Comm>) -> f64 {
        // Plan-guided fused traversal when the plan certifies the group
        // (never while a recording is active: the analyzer must observe the
        // unoptimized loop stream its certificates describe).
        let fuse = !recording_active()
            && self
                .cfg
                .plan
                .as_ref()
                .is_some_and(|p| p.certifies_fusion(&["ideal_gas", "viscosity"]));
        if fuse {
            let plan = self.cfg.plan.clone().expect("fusion implies a plan");
            self.ideal_gas_viscosity_fused(profile, &plan);
        } else {
            self.ideal_gas(profile);
            self.viscosity_kernel(profile);
        }
        self.update_halo_cells(profile, comm.as_deref_mut(), "cells0");
        let dt = self.calc_dt(profile, comm.as_deref_mut());
        self.accelerate(profile, dt);
        self.apply_velocity_bcs(profile);
        self.exchange_velocities(comm.as_deref_mut(), "vel0");
        self.pdv(profile, dt);
        self.flux_calc(profile, dt);
        self.update_halo_cells(profile, comm.as_deref_mut(), "cells1");
        self.advec_cell_x(profile);
        self.update_halo_cells(profile, comm.as_deref_mut(), "cells2");
        self.advec_cell_y(profile);
        self.advec_mom(profile, dt);
        self.reset_field(profile);
        self.apply_velocity_bcs(profile);
        self.exchange_velocities(comm, "vel1");
        dt
    }

    /// Field summary: (total mass, total energy incl. kinetic).
    pub fn field_summary(&self, profile: &mut Profile) -> (f64, f64) {
        let vol = self.dx * self.dy;
        let (mass, ie) = par_loop2_reduce(
            profile,
            "field_summary",
            ExecMode::Serial,
            self.cells(),
            &[&self.density0, &self.energy0],
            (0.0f64, 0.0f64),
            4.0,
            move |_i, _j, ins| {
                let rho = ins.get(0, 0, 0);
                (rho * vol, rho * ins.get(1, 0, 0) * vol)
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        // Kinetic energy from nodes (quarter-cell masses omitted at walls —
        // summary only).
        let vol4 = vol;
        let ke = par_loop2_reduce(
            profile,
            "field_summary_ke",
            ExecMode::Serial,
            self.cells(),
            &[&self.density0, &self.xvel0, &self.yvel0],
            0.0f64,
            8.0,
            move |_i, _j, ins| {
                let rho = ins.get(0, 0, 0);
                let u = 0.25
                    * (ins.get(1, 0, 0) + ins.get(1, 1, 0) + ins.get(1, 0, 1) + ins.get(1, 1, 1));
                let v = 0.25
                    * (ins.get(2, 0, 0) + ins.get(2, 1, 0) + ins.get(2, 0, 1) + ins.get(2, 1, 1));
                0.5 * rho * (u * u + v * v) * vol4
            },
            |a, b| a + b,
        );
        (mass, ie + ke)
    }

    /// Single-rank run; validation = relative mass-conservation error.
    pub fn run(cfg: Config) -> AppRun {
        let mut profile = Profile::new();
        let points = cfg.nx * cfg.ny;
        let iterations = cfg.iterations;
        let mut sim = Clover2::new(cfg);
        let (m0, _e0) = sim.field_summary(&mut profile);
        for it in 0..iterations {
            let mut aspan = bwb_trace::span(bwb_trace::Cat::App, "hydro_cycle");
            aspan.set_args(it as f64, 0.0, 0.0);
            sim.cycle(&mut profile, None);
        }
        let (m1, _e1) = sim.field_summary(&mut profile);
        let validation = ((m1 - m0) / m0).abs();
        AppRun {
            app: AppId::CloverLeaf2D,
            profile,
            validation,
            iterations,
            points,
        }
    }

    /// Distributed run; returns this rank's profile and the gathered global
    /// density on rank 0.
    pub fn run_distributed(comm: &mut Comm, cfg: Config) -> (Profile, Option<Vec<f64>>) {
        let mut profile = Profile::new();
        let iterations = cfg.iterations;
        let mut sim = Clover2::new_distributed(comm, cfg);
        for it in 0..iterations {
            let mut aspan = bwb_trace::span(bwb_trace::Cat::App, "hydro_cycle");
            aspan.set_args(it as f64, 0.0, 0.0);
            sim.cycle(&mut profile, Some(comm));
        }
        let block = sim.dist.clone().expect("distributed");
        let gathered = block.gather_global(comm, &sim.density0);
        (profile, gathered)
    }

    /// Direct access for tests.
    pub fn density(&self) -> &Dat2<f64> {
        &self.density0
    }
}

/// The `ideal_gas` kernel body, shared verbatim between the sequential
/// driver and the plan-guided fused traversal (what makes "bit-identical"
/// a structural property rather than a numerical coincidence). Inputs
/// positionally: 0 = density0, 1 = energy0.
fn ideal_gas_body(out: &mut RowOut2<f64>, ins: &RowIn2<f64>) {
    let rho = ins.row(0);
    let e = ins.row(1);
    let (p, ss) = out.rows2(0, 1);
    for i in 0..p.len() {
        let pv = (GAMMA - 1.0) * rho[i] * e[i];
        p[i] = pv;
        ss[i] = (GAMMA * pv / rho[i]).sqrt();
    }
}

/// The `viscosity` kernel body (inputs: 0 = density0, 1 = xvel0,
/// 2 = yvel0), shared like [`ideal_gas_body`].
fn viscosity_body(dx: f64, dy: f64, out: &mut RowOut2<f64>, ins: &RowIn2<f64>) {
    // Cell (i,j) is bounded by nodes (i..i+1, j..j+1).
    let rho = ins.row(0);
    let u00 = ins.row_off(1, 0, 0);
    let u10 = ins.row_off(1, 1, 0);
    let u01 = ins.row_off(1, 0, 1);
    let u11 = ins.row_off(1, 1, 1);
    let v00 = ins.row_off(2, 0, 0);
    let v10 = ins.row_off(2, 1, 0);
    let v01 = ins.row_off(2, 0, 1);
    let v11 = ins.row_off(2, 1, 1);
    let q = out.row(0);
    for i in 0..q.len() {
        let ugrad = 0.5 * ((u10[i] + u11[i]) - (u00[i] + u01[i]));
        let vgrad = 0.5 * ((v01[i] + v11[i]) - (v00[i] + v10[i]));
        let div = ugrad / dx + vgrad / dy;
        q[i] = if div < 0.0 {
            let l = dx.min(dy);
            2.0 * rho[i] * (div * l) * (div * l)
        } else {
            0.0
        };
    }
}

/// Depth-1 ghost exchange for node-centred fields over a cell-decomposed
/// block. Node fields duplicate the interface line on both neighbouring
/// ranks; [`DistBlock2::exchange_node_halo`] ships the inward-shifted
/// strips so each rank's ghosts hold the neighbour's first interior line.
/// Declared access contracts of every DSL loop in this app, for
/// `bwb-dslcheck`. (`update_halo`/`update_halo_vel` are hand-rolled fills,
/// not `par_loop`s, so they carry no contract.)
/// Declared loop chain for `dslcheck::speccheck`: the exact ordered
/// loop/exchange/swap stream one [`Clover2::cycle`] materializes at runtime
/// (plus the two `field_summary` reductions the single-rank registry run
/// appends), written down symbolically over the parametric local grid
/// `(nx, ny)`. Instantiating this chain must reproduce, observation for
/// observation, what [`bwb_ops::access::with_recording_full`] records from
/// a live run — the static/dynamic cross-check asserts exactly that.
///
/// `dist` declares the 4-rank distributed variant: the three cell-field
/// halo-update sites ("cells0"/"cells1"/"cells2") and the two node-velocity
/// sites ("vel0"/"vel1") each contribute their recorded exchanges, and the
/// field-summary epilogue is absent (`run_distributed` gathers instead).
pub fn chain_spec(dist: bool) -> bwb_ops::ChainSpec {
    use bwb_ops::{ChainSpec, DatDecl, Expr, Step};
    let c = Expr::c;
    let p = Expr::p;
    let pp = Expr::p_plus;
    let h = HALO as isize;
    let cell = |name: &'static str| DatDecl {
        name,
        halo: h,
        extent: [p("nx"), p("ny"), c(1)],
        elem_bytes: 8,
    };
    let node = |name: &'static str| DatDecl {
        name,
        halo: h,
        extent: [pp("nx", 1), pp("ny", 1), c(1)],
        elem_bytes: 8,
    };
    // Slot indices (struct-field identity; runtime names rotate via Swap).
    const D0: usize = 0;
    const D1: usize = 1;
    const E0: usize = 2;
    const E1: usize = 3;
    const PR: usize = 4;
    const VS: usize = 5;
    const SS: usize = 6;
    const WD: usize = 7;
    const WE: usize = 8;
    const XV0: usize = 9;
    const XV1: usize = 10;
    const YV0: usize = 11;
    const YV1: usize = 12;
    const WU: usize = 13;
    const WV: usize = 14;
    const FX: usize = 15;
    const FY: usize = 16;
    let dats = vec![
        cell("density0"),
        cell("density1"),
        cell("energy0"),
        cell("energy1"),
        cell("pressure"),
        cell("viscosity"),
        cell("soundspeed"),
        cell("work_d"),
        cell("work_e"),
        node("xvel0"),
        node("xvel1"),
        node("yvel0"),
        node("yvel1"),
        node("work_u"),
        node("work_v"),
        DatDecl {
            name: "vol_flux_x",
            halo: h,
            extent: [pp("nx", 1), p("ny"), c(1)],
            elem_bytes: 8,
        },
        DatDecl {
            name: "vol_flux_y",
            halo: h,
            extent: [p("nx"), pp("ny", 1), c(1)],
            elem_bytes: 8,
        },
    ];
    let cells = || [c(0), p("nx"), c(0), p("ny"), c(0), c(1)];
    let nodes = || [c(0), pp("nx", 1), c(0), pp("ny", 1), c(0), c(1)];
    let lp = |spec: &'static str, range: [Expr; 6], outs: Vec<usize>, ins: Vec<usize>| Step::Loop {
        spec,
        dims: 2,
        range,
        outs,
        ins,
    };
    // `update_halo_cells` iterates its six fields in struct order, noting
    // one exchange per field on the dim-1 pass (mirror fills are hand
    // loops and record nothing).
    let halo_cells = |body: &mut Vec<Step>, site: &'static str| {
        if dist {
            for dat in [D0, E0, PR, VS, D1, E1] {
                body.push(Step::Exchange {
                    dat,
                    depth: HALO,
                    site,
                });
            }
        }
    };
    let halo_vel = |body: &mut Vec<Step>, site: &'static str| {
        if dist {
            for dat in [XV0, YV0, XV1, YV1] {
                body.push(Step::Exchange {
                    dat,
                    depth: 1,
                    site,
                });
            }
        }
    };
    let mut body = vec![
        lp("ideal_gas", cells(), vec![PR, SS], vec![D0, E0]),
        lp("viscosity", cells(), vec![VS], vec![D0, XV0, YV0]),
    ];
    halo_cells(&mut body, "cells0");
    body.push(lp("calc_dt", cells(), vec![], vec![SS, XV0, YV0]));
    body.push(lp(
        "accelerate",
        nodes(),
        vec![XV1, YV1],
        vec![D0, PR, VS, XV0, YV0],
    ));
    halo_vel(&mut body, "vel0");
    body.push(lp(
        "pdv",
        cells(),
        vec![E1, D1],
        vec![D0, E0, PR, VS, XV1, YV1],
    ));
    body.push(lp(
        "flux_calc_x",
        [c(0), pp("nx", 1), c(0), p("ny"), c(0), c(1)],
        vec![FX],
        vec![XV0, XV1],
    ));
    body.push(lp(
        "flux_calc_y",
        [c(0), p("nx"), c(0), pp("ny", 1), c(0), c(1)],
        vec![FY],
        vec![YV0, YV1],
    ));
    halo_cells(&mut body, "cells1");
    body.push(lp("advec_cell_x", cells(), vec![WD, WE], vec![D1, E1, FX]));
    body.push(Step::Swap { a: D1, b: WD });
    body.push(Step::Swap { a: E1, b: WE });
    halo_cells(&mut body, "cells2");
    body.push(lp("advec_cell_y", cells(), vec![WD, WE], vec![D1, E1, FY]));
    body.push(Step::Swap { a: D1, b: WD });
    body.push(Step::Swap { a: E1, b: WE });
    body.push(lp("advec_mom", nodes(), vec![WU, WV], vec![XV1, YV1]));
    body.push(lp("reset_field", cells(), vec![D0, E0], vec![D1, E1]));
    body.push(Step::Swap { a: XV0, b: WU });
    body.push(Step::Swap { a: YV0, b: WV });
    halo_vel(&mut body, "vel1");
    let epilogue = if dist {
        Vec::new()
    } else {
        vec![
            lp("field_summary", cells(), vec![], vec![D0, E0]),
            lp("field_summary_ke", cells(), vec![], vec![D0, XV0, YV0]),
        ]
    };
    ChainSpec {
        app: if dist {
            "clover2d_dist"
        } else {
            "cloverleaf2d"
        },
        params: vec!["nx", "ny"],
        dats,
        prologue: Vec::new(),
        body,
        epilogue,
    }
}

pub fn loop_specs() -> Vec<bwb_ops::LoopSpec> {
    use bwb_ops::{ArgSpec as A, LoopSpec as L, Stencil as S};
    // Cell quantity sampled at the four cells around a node.
    let nodal = || S::of2(&[(-1, -1), (0, -1), (0, 0), (-1, 0)]);
    // Node quantity sampled at the four corners of a cell.
    let quad = || S::of2(&[(0, 0), (1, 0), (0, 1), (1, 1)]);
    // Donor-cell/van Leer upwind window along one axis.
    let x5 = || S::of2(&[(-2, 0), (-1, 0), (0, 0), (1, 0), (2, 0)]);
    let y5 = || S::of2(&[(0, -2), (0, -1), (0, 0), (0, 1), (0, 2)]);
    vec![
        L::new(
            "ideal_gas",
            vec![A::write("pressure"), A::write("soundspeed")],
            vec![
                A::read("density0", S::point()),
                A::read("energy0", S::point()),
            ],
        ),
        L::new(
            "viscosity",
            vec![A::write("viscosity")],
            vec![
                A::read("density0", S::point()),
                A::read("xvel0", quad()),
                A::read("yvel0", quad()),
            ],
        ),
        L::new(
            "calc_dt",
            vec![],
            vec![
                A::read("soundspeed", S::point()),
                A::read("xvel0", S::of2(&[(0, 0), (1, 1)])),
                A::read("yvel0", S::of2(&[(0, 0), (1, 1)])),
            ],
        ),
        L::new(
            "accelerate",
            vec![A::write("xvel1"), A::write("yvel1")],
            vec![
                A::read("density0", nodal()),
                A::read("pressure", nodal()),
                A::read("viscosity", nodal()),
                A::read("xvel0", S::point()),
                A::read("yvel0", S::point()),
            ],
        ),
        L::new(
            "pdv",
            vec![A::write("energy1"), A::write("density1")],
            vec![
                A::read("density0", S::point()),
                A::read("energy0", S::point()),
                A::read("pressure", S::point()),
                A::read("viscosity", S::point()),
                A::read("xvel1", quad()),
                A::read("yvel1", quad()),
            ],
        ),
        L::new(
            "flux_calc_x",
            vec![A::write("vol_flux_x")],
            vec![
                A::read("xvel0", S::of2(&[(0, 0), (0, 1)])),
                A::read("xvel1", S::of2(&[(0, 0), (0, 1)])),
            ],
        ),
        L::new(
            "flux_calc_y",
            vec![A::write("vol_flux_y")],
            vec![
                A::read("yvel0", S::of2(&[(0, 0), (1, 0)])),
                A::read("yvel1", S::of2(&[(0, 0), (1, 0)])),
            ],
        ),
        L::new(
            "advec_cell_x",
            vec![A::write("work_d"), A::write("work_e")],
            vec![
                A::read("density1", x5()),
                A::read("energy1", x5()),
                A::read("vol_flux_x", S::of2(&[(0, 0), (1, 0)])),
            ],
        ),
        L::new(
            "advec_cell_y",
            vec![A::write("work_d"), A::write("work_e")],
            vec![
                A::read("density1", y5()),
                A::read("energy1", y5()),
                A::read("vol_flux_y", S::of2(&[(0, 0), (0, 1)])),
            ],
        ),
        L::new(
            "advec_mom",
            vec![A::write("work_u"), A::write("work_v")],
            vec![A::read("xvel1", S::plus2(1)), A::read("yvel1", S::plus2(1))],
        ),
        L::new(
            "reset_field",
            vec![A::write("density0"), A::write("energy0")],
            vec![
                A::read("density1", S::point()),
                A::read("energy1", S::point()),
            ],
        ),
        L::new(
            "field_summary",
            vec![],
            vec![
                A::read("density0", S::point()),
                A::read("energy0", S::point()),
            ],
        ),
        L::new(
            "field_summary_ke",
            vec![],
            vec![
                A::read("density0", S::point()),
                A::read("xvel0", quad()),
                A::read("yvel0", quad()),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwb_shmpi::Universe;

    #[test]
    fn mass_exactly_conserved() {
        let run = Clover2::run(Config {
            nx: 32,
            ny: 32,
            iterations: 30,
            ..Config::default()
        });
        assert!(run.validation < 1e-12, "mass drift {}", run.validation);
    }

    #[test]
    fn energy_bounded() {
        let cfg = Config {
            nx: 32,
            ny: 32,
            iterations: 40,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Clover2::new(cfg);
        let (_m0, e0) = sim.field_summary(&mut profile);
        for _ in 0..40 {
            sim.cycle(&mut profile, None);
        }
        let (_m1, e1) = sim.field_summary(&mut profile);
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 0.05, "total energy drift {drift}");
    }

    #[test]
    fn pressure_positive_and_finite() {
        let cfg = Config {
            nx: 24,
            ny: 24,
            iterations: 25,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Clover2::new(cfg);
        for _ in 0..25 {
            sim.cycle(&mut profile, None);
        }
        for j in 0..24 {
            for i in 0..24 {
                let rho = sim.density0.get(i, j);
                let e = sim.energy0.get(i, j);
                assert!(rho > 0.0 && rho.is_finite(), "density at ({i},{j}) = {rho}");
                assert!(e > 0.0 && e.is_finite(), "energy at ({i},{j}) = {e}");
            }
        }
    }

    #[test]
    fn diagonal_symmetry_preserved() {
        // The initial state is symmetric under (i,j) → (j,i); the dynamics
        // must preserve that symmetry exactly.
        let cfg = Config {
            nx: 24,
            ny: 24,
            iterations: 15,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Clover2::new(cfg);
        for _ in 0..15 {
            sim.cycle(&mut profile, None);
        }
        for j in 0..24isize {
            for i in 0..24isize {
                let a = sim.density0.get(i, j);
                let b = sim.density0.get(j, i);
                // The x-then-y advection splitting breaks exact transpose
                // symmetry near the shock; a transposed-index bug would show
                // O(0.1+) asymmetry, splitting error stays well below.
                assert!((a - b).abs() < 5e-2, "asymmetry at ({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn serial_equals_rayon() {
        let base = Config {
            nx: 20,
            ny: 20,
            iterations: 8,
            ..Config::default()
        };
        let a = Clover2::run(Config {
            mode: ExecMode::Serial,
            ..base.clone()
        });
        let b = Clover2::run(Config {
            mode: ExecMode::Rayon,
            ..base
        });
        assert_eq!(a.validation, b.validation);
    }

    #[test]
    fn profile_contains_cloverleaf_kernels() {
        let run = Clover2::run(Config {
            nx: 16,
            ny: 16,
            iterations: 3,
            ..Config::default()
        });
        for k in [
            "ideal_gas",
            "viscosity",
            "calc_dt",
            "accelerate",
            "pdv",
            "flux_calc_x",
            "advec_cell_x",
            "advec_cell_y",
            "advec_mom",
            "reset_field",
            "update_halo",
        ] {
            assert!(run.profile.get(k).is_some(), "missing kernel {k}");
        }
    }

    #[test]
    fn distributed_matches_single_rank() {
        let cfg = Config {
            nx: 24,
            ny: 24,
            iterations: 5,
            ..Config::default()
        };
        let single = {
            let mut profile = Profile::new();
            let mut sim = Clover2::new(cfg.clone());
            for _ in 0..cfg.iterations {
                sim.cycle(&mut profile, None);
            }
            let mut v = Vec::new();
            for j in 0..24isize {
                for i in 0..24isize {
                    v.push(sim.density0.get(i, j));
                }
            }
            v
        };
        let cfg2 = cfg.clone();
        let out = Universe::run(4, move |c| Clover2::run_distributed(c, cfg2.clone()).1);
        let dist = out.results[0].as_ref().unwrap();
        let max_diff = dist
            .iter()
            .zip(&single)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-11, "distributed differs by {max_diff}");
    }

    #[test]
    fn van_leer_conserves_mass_exactly() {
        let run = Clover2::run(Config {
            nx: 32,
            ny: 32,
            iterations: 25,
            advection: Advection::VanLeer,
            ..Config::default()
        });
        assert!(
            run.validation < 1e-12,
            "van Leer mass drift {}",
            run.validation
        );
    }

    #[test]
    fn van_leer_is_sharper_than_donor_cell() {
        // After the shock has propagated, the second-order remap must keep
        // a steeper density front: compare the max |∇ρ| across schemes.
        let max_grad = |advection: Advection| {
            let cfg = Config {
                nx: 48,
                ny: 48,
                iterations: 25,
                advection,
                ..Config::default()
            };
            let mut profile = Profile::new();
            let mut sim = Clover2::new(cfg);
            for _ in 0..25 {
                sim.cycle(&mut profile, None);
            }
            let mut g: f64 = 0.0;
            for j in 0..48isize {
                for i in 0..47isize {
                    g = g.max((sim.density0.get(i + 1, j) - sim.density0.get(i, j)).abs());
                }
            }
            g
        };
        let donor = max_grad(Advection::DonorCell);
        let vl = max_grad(Advection::VanLeer);
        assert!(
            vl > donor,
            "van Leer front {vl} should be sharper than donor {donor}"
        );
    }

    #[test]
    fn van_leer_stays_positive_and_finite() {
        let cfg = Config {
            nx: 24,
            ny: 24,
            iterations: 30,
            advection: Advection::VanLeer,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Clover2::new(cfg);
        for _ in 0..30 {
            sim.cycle(&mut profile, None);
        }
        for j in 0..24 {
            for i in 0..24 {
                let rho = sim.density0.get(i, j);
                assert!(rho > 0.0 && rho.is_finite(), "ρ({i},{j}) = {rho}");
            }
        }
    }

    #[test]
    fn van_leer_distributed_matches_single_rank() {
        let cfg = Config {
            nx: 24,
            ny: 24,
            iterations: 5,
            advection: Advection::VanLeer,
            ..Config::default()
        };
        let single = {
            let mut profile = Profile::new();
            let mut sim = Clover2::new(cfg.clone());
            for _ in 0..cfg.iterations {
                sim.cycle(&mut profile, None);
            }
            let mut v = Vec::new();
            for j in 0..24isize {
                for i in 0..24isize {
                    v.push(sim.density0.get(i, j));
                }
            }
            v
        };
        let cfg2 = cfg.clone();
        let out = Universe::run(4, move |c| Clover2::run_distributed(c, cfg2.clone()).1);
        let dist = out.results[0].as_ref().unwrap();
        let max_diff = dist
            .iter()
            .zip(&single)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff < 1e-11,
            "van Leer distributed differs by {max_diff}"
        );
    }

    #[test]
    fn dt_positive_and_stable() {
        let cfg = Config {
            nx: 16,
            ny: 16,
            iterations: 0,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Clover2::new(cfg);
        sim.ideal_gas(&mut profile);
        let dt = sim.calc_dt(&mut profile, None);
        assert!(dt > 0.0 && dt < 1.0, "dt = {dt}");
    }
}
