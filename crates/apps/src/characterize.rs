//! Application characterization: measured loop-profile statistics that the
//! performance model (`bwb-perfmodel`) scales to the paper's problem sizes
//! and platforms.
//!
//! Each [`AppCharacter`] is derived by *running* the application at a small
//! size through its DSL (so bytes/FLOPs come from the real kernels, not
//! hand-entered constants) and augmenting with static structure: stencil
//! reach (halo volume), kernel-launch counts (SYCL overhead), indirection
//! (latency sensitivity), and whether the MPI backend auto-vectorizes.

use crate::{
    acoustic, cloverleaf2d, cloverleaf3d, mgcfd, minibude, miniweather, opensbli, volna, AppId,
};
use bwb_ops::ExecMode;
use serde::{Deserialize, Serialize};

/// Scale-invariant description of one application's per-iteration work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppCharacter {
    pub app: AppId,
    /// Useful bytes moved per grid point (or mesh element) per iteration.
    pub bytes_per_point_iter: f64,
    /// FLOPs per point per iteration.
    pub flops_per_point_iter: f64,
    /// Bytes per point per iteration served from *cache* (stencil taps
    /// re-reading recently-touched lines): the quantity the paper's
    /// cache-bandwidth discussion (§2, §6, Figure 9) turns on. Estimated as
    /// taps × precision × stencil passes per iteration.
    pub cache_bytes_per_point_iter: f64,
    /// Parallel-loop launches per iteration (drives per-kernel overheads).
    pub kernels_per_iter: f64,
    /// Fraction of launches that are "small" (boundary kernels etc. —
    /// CloverLeaf's SYCL weakness in the paper's §5.1).
    pub small_kernel_fraction: f64,
    /// Stencil reach / halo depth (0 for unstructured & compute-bound).
    pub stencil_reach: usize,
    /// Spatial dimensionality of the decomposition (0 = not decomposed by
    /// a Cartesian grid).
    pub dims: usize,
    /// Number of fields exchanged per iteration (halo traffic multiplier).
    pub fields_exchanged_per_iter: f64,
    /// Global reductions per iteration (dt computations etc.).
    pub reductions_per_iter: f64,
    /// Degree of indirect access (0 = structured streaming, 1 = fully
    /// indirect gather/scatter) — the latency-sensitivity knob.
    pub indirection: f64,
    /// Whether the generated pure-MPI code auto-vectorizes ("MPI vec").
    pub mpi_vec_available: bool,
    pub precision_bytes: usize,
}

impl AppCharacter {
    /// Arithmetic intensity (FLOP/byte) of the whole app.
    pub fn intensity(&self) -> f64 {
        if self.bytes_per_point_iter == 0.0 {
            return f64::INFINITY;
        }
        self.flops_per_point_iter / self.bytes_per_point_iter
    }
}

fn derive(
    app: AppId,
    profile: &bwb_ops::Profile,
    points: usize,
    iters: usize,
) -> (f64, f64, f64, f64) {
    let pi = (points * iters.max(1)) as f64;
    let bytes = profile.total_bytes() as f64 / pi;
    let flops = profile.total_flops() / pi;
    let launches: u64 = profile.records().iter().map(|r| r.calls).sum();
    let kernels_per_iter = launches as f64 / iters.max(1) as f64;
    // Small kernels: fewer points per call than 10% of the main loops.
    let med_points: f64 = points as f64;
    let small: u64 = profile
        .records()
        .iter()
        .filter(|r| (r.points as f64 / r.calls as f64) < 0.1 * med_points)
        .map(|r| r.calls)
        .sum();
    let small_frac = small as f64 / launches.max(1) as f64;
    let _ = app;
    (bytes, flops, kernels_per_iter, small_frac)
}

/// Characterize one application by running it at a small calibration size.
pub fn characterize(app: AppId) -> AppCharacter {
    match app {
        AppId::CloverLeaf2D => {
            let run = cloverleaf2d::Clover2::run(cloverleaf2d::Config {
                nx: 96,
                ny: 96,
                iterations: 5,
                cfl: 0.5,
                mode: ExecMode::Serial,
                advection: cloverleaf2d::Advection::VanLeer,
                plan: None,
            });
            let (b, f, k, s) = derive(app, &run.profile, run.points, run.iterations);
            AppCharacter {
                app,
                bytes_per_point_iter: b,
                cache_bytes_per_point_iter: 700.0,
                flops_per_point_iter: f,
                kernels_per_iter: k,
                small_kernel_fraction: s,
                stencil_reach: 2,
                dims: 2,
                fields_exchanged_per_iter: 18.0, // 6 fields × 3 exchanges
                reductions_per_iter: 1.0,
                indirection: 0.0,
                mpi_vec_available: false,
                precision_bytes: 8,
            }
        }
        AppId::CloverLeaf3D => {
            let run = cloverleaf3d::Clover3::run(cloverleaf3d::Config {
                n: 16,
                iterations: 4,
                cfl: 0.45,
                mode: ExecMode::Serial,
            });
            let (b, f, k, s) = derive(app, &run.profile, run.points, run.iterations);
            AppCharacter {
                app,
                bytes_per_point_iter: b,
                cache_bytes_per_point_iter: 1500.0,
                flops_per_point_iter: f,
                kernels_per_iter: k,
                small_kernel_fraction: s,
                stencil_reach: 2,
                dims: 3,
                fields_exchanged_per_iter: 24.0,
                reductions_per_iter: 1.0,
                indirection: 0.0,
                mpi_vec_available: false,
                precision_bytes: 8,
            }
        }
        AppId::Acoustic => {
            let run = acoustic::Acoustic::run(acoustic::Config {
                n: 32,
                iterations: 5,
                courant: 0.3,
                mode: ExecMode::Serial,
                plan: None,
            });
            let (b, f, k, s) = derive(app, &run.profile, run.points, run.iterations);
            AppCharacter {
                app,
                bytes_per_point_iter: b,
                cache_bytes_per_point_iter: 150.0,
                flops_per_point_iter: f,
                kernels_per_iter: k,
                small_kernel_fraction: s,
                stencil_reach: 4, // 8th-order star: deep halos, big messages
                dims: 3,
                fields_exchanged_per_iter: 1.0,
                reductions_per_iter: 0.0,
                indirection: 0.0,
                mpi_vec_available: false,
                precision_bytes: 4,
            }
        }
        AppId::OpenSbliSa | AppId::OpenSbliSn => {
            let variant = if app == AppId::OpenSbliSa {
                opensbli::Variant::StoreAll
            } else {
                opensbli::Variant::StoreNone
            };
            let run = opensbli::OpenSbli::run(opensbli::Config {
                n: 16,
                iterations: 3,
                variant,
                nu: 0.02,
                mode: ExecMode::Serial,
                plan: None,
            });
            let (b, f, k, s) = derive(app, &run.profile, run.points, run.iterations);
            AppCharacter {
                app,
                bytes_per_point_iter: b,
                cache_bytes_per_point_iter: 1500.0,
                flops_per_point_iter: f,
                kernels_per_iter: k,
                small_kernel_fraction: s,
                stencil_reach: 2,
                dims: 3,
                fields_exchanged_per_iter: 15.0, // 5 fields × 3 RK stages
                reductions_per_iter: 0.0,
                indirection: 0.0,
                mpi_vec_available: false,
                precision_bytes: 8,
            }
        }
        AppId::MiniWeather => {
            let run = miniweather::MiniWeather::run(miniweather::Config {
                nx: 40,
                nz: 20,
                sim_time: 2.0,
                mode: ExecMode::Serial,
                ..miniweather::Config::default()
            });
            let (b, f, k, s) = derive(app, &run.profile, run.points, run.iterations);
            AppCharacter {
                app,
                bytes_per_point_iter: b,
                cache_bytes_per_point_iter: 800.0,
                flops_per_point_iter: f,
                kernels_per_iter: k,
                small_kernel_fraction: s,
                stencil_reach: 2,
                dims: 2,
                fields_exchanged_per_iter: 24.0, // 4 fields × 6 tendency fills
                reductions_per_iter: 0.0,
                indirection: 0.0,
                mpi_vec_available: false,
                precision_bytes: 8,
            }
        }
        AppId::MgCfd => {
            let run = mgcfd::MgCfd::run(mgcfd::Config {
                n: 33,
                levels: 3,
                cycles: 3,
                smooth_steps: 2,
                mode: bwb_op2::ExecModeU::Serial,
                seed: 7,
            });
            let (b, f, k, s) = derive(app, &run.profile, run.points, run.iterations);
            AppCharacter {
                app,
                bytes_per_point_iter: b,
                cache_bytes_per_point_iter: 1400.0,
                flops_per_point_iter: f,
                kernels_per_iter: k,
                small_kernel_fraction: s,
                stencil_reach: 1,
                dims: 0,
                fields_exchanged_per_iter: 8.0,
                reductions_per_iter: 1.0,
                indirection: 1.0, // heavily indirect (paper: "bound by
                // latencies and indirect memory accesses")
                mpi_vec_available: true,
                precision_bytes: 8,
            }
        }
        AppId::Volna => {
            let run = volna::Volna::run(volna::Config {
                n: 32,
                iterations: 10,
                cfl: 0.4,
                mode: bwb_op2::ExecModeU::Serial,
                seed: 11,
            });
            let (b, f, k, s) = derive(app, &run.profile, run.points, run.iterations);
            AppCharacter {
                app,
                bytes_per_point_iter: b,
                cache_bytes_per_point_iter: 160.0,
                flops_per_point_iter: f,
                kernels_per_iter: k,
                small_kernel_fraction: s,
                stencil_reach: 1,
                dims: 0,
                fields_exchanged_per_iter: 2.0,
                reductions_per_iter: 1.0,
                indirection: 0.6, // "less so than MG-CFD" (paper §3)
                mpi_vec_available: true,
                precision_bytes: 4,
            }
        }
        AppId::MiniBude => {
            let run = minibude::MiniBude::run(minibude::Config {
                n_poses: 256,
                n_ligand: 26,
                n_protein: 128,
                iterations: 2,
                parallel: false,
                seed: 5,
            });
            let (b, f, k, s) = derive(app, &run.profile, run.points, run.iterations);
            AppCharacter {
                app,
                bytes_per_point_iter: b,
                cache_bytes_per_point_iter: 3000.0,
                flops_per_point_iter: f,
                kernels_per_iter: k,
                small_kernel_fraction: s,
                stencil_reach: 0,
                dims: 0,
                fields_exchanged_per_iter: 0.0,
                reductions_per_iter: 1.0,
                indirection: 0.2,
                mpi_vec_available: false,
                precision_bytes: 4,
            }
        }
    }
}

/// Characterize all apps (expensive: runs each once at calibration size).
pub fn characterize_all() -> Vec<AppCharacter> {
    AppId::ALL.iter().map(|&a| characterize(a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clover2d_is_bandwidth_bound() {
        let c = characterize(AppId::CloverLeaf2D);
        assert!(
            c.intensity() < 3.0,
            "CloverLeaf intensity {}",
            c.intensity()
        );
        assert!(
            c.bytes_per_point_iter > 50.0,
            "bytes/pt/iter {}",
            c.bytes_per_point_iter
        );
        assert!(c.kernels_per_iter > 8.0);
    }

    #[test]
    fn minibude_is_compute_bound() {
        let c = characterize(AppId::MiniBude);
        assert!(c.intensity() > 5.0, "miniBUDE intensity {}", c.intensity());
    }

    #[test]
    fn sa_moves_more_bytes_than_sn() {
        let sa = characterize(AppId::OpenSbliSa);
        let sn = characterize(AppId::OpenSbliSn);
        assert!(sa.bytes_per_point_iter > 1.8 * sn.bytes_per_point_iter);
        assert!(sn.intensity() > 2.0 * sa.intensity());
    }

    #[test]
    fn acoustic_has_deep_stencil() {
        let c = characterize(AppId::Acoustic);
        assert_eq!(c.stencil_reach, 4);
        assert!(c.intensity() > characterize(AppId::CloverLeaf2D).intensity());
    }

    #[test]
    fn unstructured_apps_flagged_for_vectorized_mpi() {
        assert!(characterize(AppId::MgCfd).mpi_vec_available);
        assert!(characterize(AppId::Volna).mpi_vec_available);
        assert!(!characterize(AppId::CloverLeaf2D).mpi_vec_available);
    }

    #[test]
    fn clover_has_small_boundary_kernels() {
        let c = characterize(AppId::CloverLeaf2D);
        assert!(
            c.small_kernel_fraction > 0.05,
            "small-kernel fraction {}",
            c.small_kernel_fraction
        );
    }
}
