//! miniWeather — structured-mesh proxy for atmospheric dynamics
//! (paper §3, app 7; Norman, ORNL).
//!
//! A compact re-implementation of the miniWeather algorithm: 2-D (x–z)
//! compressible Euler equations for dry stratified flow in perturbation
//! form about a hydrostatic, constant-potential-temperature background.
//! Finite-volume fluxes use the standard 4-cell 4th-order interpolation
//! plus 3rd-difference hyperviscosity; time integration is the 3-stage
//! low-storage Runge-Kutta with dimensional splitting (x then z, order
//! alternating each step), exactly as in the reference code.
//!
//! Deviations from the reference (documented per the substitution rule):
//! advective fluxes through the rigid top/bottom walls are explicitly
//! zeroed (the reference relies on halo values making them small), which
//! makes mass conservation exact in both directions — the property the
//! validation tests assert. Double precision, paper size 4000×2000.

use crate::{AppId, AppRun};
use bwb_ops::{par_loop2_reduce, par_loop2_rows, Dat2, ExecMode, Profile, Range2};
use bwb_shmpi::Comm;

/// Tag space for the distributed x-ring halo exchange.
const MW_HALO_TAG: u32 = 0x6000_0000;

// --- Physical constants (miniWeather reference values) ---
pub const GRAV: f64 = 9.8;
pub const CP: f64 = 1004.0;
pub const CV: f64 = 717.0;
pub const RD: f64 = 287.0;
pub const P0: f64 = 1.0e5;
pub const GAMMA: f64 = CP / CV;
/// p = C0·(ρθ)^γ.
pub const C0: f64 = 27.562_941_092_972_594;
/// Background potential temperature.
pub const THETA0: f64 = 300.0;
/// Maximum signal speed used for the CFL time step.
pub const MAX_SPEED: f64 = 450.0;
/// Hyperviscosity beta.
pub const HV_BETA: f64 = 0.25;

/// Field indices in the 4-variable state.
pub const ID_DENS: usize = 0;
pub const ID_UMOM: usize = 1;
pub const ID_WMOM: usize = 2;
pub const ID_RHOT: usize = 3;

/// FLOPs per point of a tendency kernel (interp + fluxes + powf ≈ 80).
const FLOPS_TEND: f64 = 80.0;

#[derive(Debug, Clone)]
pub struct Config {
    pub nx: usize,
    pub nz: usize,
    /// Physical domain size (m).
    pub xlen: f64,
    pub zlen: f64,
    /// Simulated seconds.
    pub sim_time: f64,
    pub cfl: f64,
    pub mode: ExecMode,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            nx: 64,
            nz: 32,
            xlen: 2.0e4,
            zlen: 1.0e4,
            sim_time: 5.0,
            cfl: 1.0,
            mode: ExecMode::Serial,
        }
    }
}

impl Config {
    /// Paper testcase: 4000×2000 cells, simulation time 1.0.
    pub fn paper() -> Self {
        Config {
            nx: 4000,
            nz: 2000,
            sim_time: 1.0,
            mode: ExecMode::Rayon,
            ..Config::default()
        }
    }
}

/// Hydrostatic background profiles.
struct Background {
    /// ρ₀ at cell centres, indexed by k + 2 (halo of 2).
    dens_cell: Vec<f64>,
    /// ρ₀θ₀ at cell centres.
    dens_theta_cell: Vec<f64>,
    /// ρ₀ at interfaces (k = 0..=nz).
    dens_int: Vec<f64>,
    dens_theta_int: Vec<f64>,
    pressure_int: Vec<f64>,
}

fn hydrostatic(z: f64) -> (f64, f64) {
    // Constant-θ background: Exner pressure decreases linearly.
    let exner = 1.0 - GRAV * z / (CP * THETA0);
    let p = P0 * exner.powf(CP / RD);
    let rho = p / (RD * THETA0 * exner);
    (rho, rho * THETA0)
}

impl Background {
    fn new(nz: usize, dz: f64) -> Self {
        let mut dens_cell = Vec::with_capacity(nz + 4);
        let mut dens_theta_cell = Vec::with_capacity(nz + 4);
        for k in -2isize..nz as isize + 2 {
            let z = (k as f64 + 0.5) * dz;
            let (r, rt) = hydrostatic(z.max(0.0).min(nz as f64 * dz));
            dens_cell.push(r);
            dens_theta_cell.push(rt);
        }
        let mut dens_int = Vec::with_capacity(nz + 1);
        let mut dens_theta_int = Vec::with_capacity(nz + 1);
        let mut pressure_int = Vec::with_capacity(nz + 1);
        for k in 0..=nz {
            let z = k as f64 * dz;
            let (r, rt) = hydrostatic(z);
            dens_int.push(r);
            dens_theta_int.push(rt);
            pressure_int.push(C0 * rt.powf(GAMMA));
        }
        Background {
            dens_cell,
            dens_theta_cell,
            dens_int,
            dens_theta_int,
            pressure_int,
        }
    }
}

/// The solver state.
pub struct MiniWeather {
    cfg: Config,
    dx: f64,
    dz: f64,
    dt: f64,
    bg: Background,
    /// Perturbation state, 4 fields with halo 2 (this rank's x-slab when
    /// distributed).
    state: Vec<Dat2<f64>>,
    state_tmp: Vec<Dat2<f64>>,
    tend: Vec<Dat2<f64>>,
    direction_switch: bool,
    /// Local x extent (= cfg.nx single-rank).
    local_nx: usize,
    /// Global x index of the first owned column.
    x_start: usize,
    /// Ring neighbours (left, right) when decomposed over ranks.
    ring: Option<(usize, usize)>,
}

const NAMES: [&str; 4] = ["dens", "umom", "wmom", "rhot"];

impl MiniWeather {
    /// Initialize the rising-thermal-bubble test case (single rank).
    pub fn new(cfg: Config) -> Self {
        let nx = cfg.nx;
        Self::new_local(cfg, 0, nx, None)
    }

    /// Initialize one rank's x-slab of the global domain; `ring` gives the
    /// periodic (left, right) neighbour ranks.
    pub fn new_local(
        cfg: Config,
        x_start: usize,
        local_nx: usize,
        ring: Option<(usize, usize)>,
    ) -> Self {
        let dx = cfg.xlen / cfg.nx as f64;
        let dz = cfg.zlen / cfg.nz as f64;
        let dt = (dx.min(dz) / MAX_SPEED) * cfg.cfl;
        let bg = Background::new(cfg.nz, dz);
        let mk = |tagged: &str| -> Vec<Dat2<f64>> {
            NAMES
                .iter()
                .map(|n| Dat2::new(&format!("{n}{tagged}"), local_nx, cfg.nz, 2))
                .collect()
        };
        let mut state = mk("");
        let state_tmp = mk("_tmp");
        let tend = mk("_tend");

        // Warm bubble: Gaussian θ′ perturbation in the lower middle.
        let (xc, zc, rad, amp) = (
            cfg.xlen / 2.0,
            2000.0_f64.min(cfg.zlen * 0.25),
            2000.0_f64,
            3.0,
        );
        for k in 0..cfg.nz as isize {
            let z = (k as f64 + 0.5) * dz;
            let (rho0, _) = hydrostatic(z);
            for i in 0..local_nx as isize {
                let x = ((x_start as isize + i) as f64 + 0.5) * dx;
                let dist = (((x - xc) / rad).powi(2) + ((z - zc) / rad).powi(2)).sqrt();
                let tp = if dist <= 1.0 {
                    amp * (std::f64::consts::PI * dist / 2.0).cos().powi(2)
                } else {
                    0.0
                };
                state[ID_RHOT].set(i, k, rho0 * tp);
            }
        }
        MiniWeather {
            cfg,
            dx,
            dz,
            dt,
            bg,
            state,
            state_tmp,
            tend,
            direction_switch: true,
            local_nx,
            x_start,
            ring,
        }
    }

    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Global x index of this rank's first owned column.
    pub fn x_start(&self) -> usize {
        self.x_start
    }

    /// Periodic x halos + rigid z halos for the given 4-field state
    /// (single-rank path: x wraps locally).
    fn fill_halos(fields: &mut [Dat2<f64>], nx: isize, nz: isize) {
        for (id, f) in fields.iter_mut().enumerate() {
            // x: periodic.
            for k in -2..nz + 2 {
                for h in 1..=2isize {
                    f.set(-h, k, f.get(nx - h, k));
                    f.set(nx - 1 + h, k, f.get(h - 1, k));
                }
            }
            // z: zero-gradient for dens/umom/rhot, w = 0 at walls.
            for i in -2..nx + 2 {
                for h in 1..=2isize {
                    if id == ID_WMOM {
                        f.set(i, -h, 0.0);
                        f.set(i, nz - 1 + h, 0.0);
                    } else {
                        f.set(i, -h, f.get(i, 0));
                        f.set(i, nz - 1 + h, f.get(i, nz - 1));
                    }
                }
            }
        }
    }

    /// Distributed x halos: ring exchange of the 2-deep edge columns with
    /// the periodic (left, right) neighbours, then the local rigid-z fill.
    fn fill_halos_ring(
        fields: &mut [Dat2<f64>],
        nx: isize,
        nz: isize,
        comm: &mut Comm,
        left: usize,
        right: usize,
    ) {
        const FIELD_NAMES: [&str; 4] = ["dens", "umom", "wmom", "rhot"];
        for (id, f) in fields.iter_mut().enumerate() {
            comm.set_comm_ctx(FIELD_NAMES.get(id).copied().unwrap_or("state"));
            let tag = MW_HALO_TAG + id as u32;
            let pack = |f: &Dat2<f64>, lo: isize| -> Vec<f64> {
                let mut buf = Vec::with_capacity((2 * nz) as usize);
                for k in 0..nz {
                    for i in lo..lo + 2 {
                        buf.push(f.get(i, k));
                    }
                }
                buf
            };
            // Eager sends both ways, then receive (no deadlock).
            comm.send(left, tag, pack(f, 0));
            comm.send(right, tag + 16, pack(f, nx - 2));
            let from_right = comm.recv::<f64>(right, tag);
            let from_left = comm.recv::<f64>(left, tag + 16);
            let mut itr = from_right.into_iter();
            let mut itl = from_left.into_iter();
            for k in 0..nz {
                for i in nx..nx + 2 {
                    f.set(i, k, itr.next().expect("halo size"));
                }
                for i in -2..0isize {
                    f.set(i, k, itl.next().expect("halo size"));
                }
            }
            // z: same rigid-wall rule, over the x-extended rows.
            for i in -2..nx + 2 {
                for h in 1..=2isize {
                    if id == ID_WMOM {
                        f.set(i, -h, 0.0);
                        f.set(i, nz - 1 + h, 0.0);
                    } else {
                        f.set(i, -h, f.get(i, 0));
                        f.set(i, nz - 1 + h, f.get(i, nz - 1));
                    }
                }
            }
        }
        comm.clear_comm_ctx();
    }

    /// X-direction tendencies of `src` into `self.tend`.
    fn tendencies_x(&mut self, profile: &mut Profile, use_tmp: bool, comm: Option<&mut Comm>) {
        let (nx, nz) = (self.local_nx, self.cfg.nz);
        let src = if use_tmp {
            &mut self.state_tmp
        } else {
            &mut self.state
        };
        match (self.ring, comm) {
            (Some((l, r)), Some(c)) => {
                Self::fill_halos_ring(src, nx as isize, nz as isize, c, l, r)
            }
            _ => Self::fill_halos(src, nx as isize, nz as isize),
        }
        let src = if use_tmp {
            &self.state_tmp
        } else {
            &self.state
        };

        let hv_coef = -HV_BETA * self.dx / (16.0 * self.dt);
        let dx = self.dx;
        let bg_dens = &self.bg.dens_cell;
        let bg_dt = &self.bg.dens_theta_cell;

        let mut outs: Vec<&mut Dat2<f64>> = self.tend.iter_mut().collect();
        let ins: Vec<&Dat2<f64>> = src.iter().collect();
        par_loop2_rows(
            profile,
            "mw_tend_x",
            self.cfg.mode,
            Range2::interior(nx, nz),
            &mut outs,
            &ins,
            FLOPS_TEND,
            move |j, out, s| {
                // Rows of every field at the 5 x-offsets −2..=2 feeding the
                // interface stencils at i−1/2 (off = −1) and i+1/2 (off = 0).
                let rows: [[&[f64]; 5]; 4] = std::array::from_fn(|id| {
                    std::array::from_fn(|d| s.row_off(id, d as isize - 2, 0))
                });
                let kk = (j + 2) as usize;
                let flux = |i: usize, off: isize, id_out: usize| -> f64 {
                    let v = |id: usize, d: isize| rows[id][(off + d + 2) as usize][i];
                    let stencil = |id: usize| {
                        let (s0, s1, s2, s3) = (v(id, -1), v(id, 0), v(id, 1), v(id, 2));
                        let vals = -s0 / 12.0 + 7.0 * s1 / 12.0 + 7.0 * s2 / 12.0 - s3 / 12.0;
                        let d3 = -s0 + 3.0 * s1 - 3.0 * s2 + s3;
                        (vals, d3)
                    };
                    let (vd, d3d) = stencil(ID_DENS);
                    let (vu, d3u) = stencil(ID_UMOM);
                    let (vw, d3w) = stencil(ID_WMOM);
                    let (vt, d3t) = stencil(ID_RHOT);
                    let r = vd + bg_dens[kk];
                    let u = vu / r;
                    let w = vw / r;
                    let t = (vt + bg_dt[kk]) / r;
                    let p = C0 * (r * t).powf(GAMMA);
                    match id_out {
                        ID_DENS => r * u - hv_coef * d3d,
                        ID_UMOM => r * u * u + p - hv_coef * d3u,
                        ID_WMOM => r * u * w - hv_coef * d3w,
                        _ => r * u * t - hv_coef * d3t,
                    }
                };
                for id in 0..4 {
                    let o = out.row(id);
                    for (i, oi) in o.iter_mut().enumerate() {
                        *oi = -(flux(i, 0, id) - flux(i, -1, id)) / dx;
                    }
                }
            },
        );
    }

    /// Z-direction tendencies of `src` into `self.tend` (with gravity
    /// source and hydrostatic-pressure subtraction in the wmom flux).
    fn tendencies_z(&mut self, profile: &mut Profile, use_tmp: bool, comm: Option<&mut Comm>) {
        let (nx, nz) = (self.local_nx, self.cfg.nz);
        let src = if use_tmp {
            &mut self.state_tmp
        } else {
            &mut self.state
        };
        match (self.ring, comm) {
            (Some((l, r)), Some(c)) => {
                Self::fill_halos_ring(src, nx as isize, nz as isize, c, l, r)
            }
            _ => Self::fill_halos(src, nx as isize, nz as isize),
        }
        let src = if use_tmp {
            &self.state_tmp
        } else {
            &self.state
        };

        let hv_coef = -HV_BETA * self.dz / (16.0 * self.dt);
        let dz = self.dz;
        let nz_i = nz as isize;
        let bg_dens_int = &self.bg.dens_int;
        let bg_dt_int = &self.bg.dens_theta_int;
        let bg_p_int = &self.bg.pressure_int;

        let mut outs: Vec<&mut Dat2<f64>> = self.tend.iter_mut().collect();
        let ins: Vec<&Dat2<f64>> = src.iter().collect();
        par_loop2_rows(
            profile,
            "mw_tend_z",
            self.cfg.mode,
            Range2::interior(nx, nz),
            &mut outs,
            &ins,
            FLOPS_TEND,
            move |j, out, s| {
                // Rows of every field at the 5 z-offsets −2..=2 feeding the
                // interface stencils below (off=−1 ⇒ interface j) and above
                // (off=0 ⇒ interface j+1).
                let rows: [[&[f64]; 5]; 4] = std::array::from_fn(|id| {
                    std::array::from_fn(|d| s.row_off(id, 0, d as isize - 2))
                });
                let dens = s.row(ID_DENS);
                let flux = |i: usize, off: isize, id_out: usize| -> f64 {
                    let iface = (j + off + 1) as usize; // interface index 0..=nz
                    let at_wall = iface == 0 || iface as isize == nz_i;
                    let v = |id: usize, d: isize| rows[id][(off + d + 2) as usize][i];
                    let stencil = |id: usize| {
                        let (s0, s1, s2, s3) = (v(id, -1), v(id, 0), v(id, 1), v(id, 2));
                        let vals = -s0 / 12.0 + 7.0 * s1 / 12.0 + 7.0 * s2 / 12.0 - s3 / 12.0;
                        let d3 = -s0 + 3.0 * s1 - 3.0 * s2 + s3;
                        (vals, d3)
                    };
                    let (vd, d3d) = stencil(ID_DENS);
                    let (vu, d3u) = stencil(ID_UMOM);
                    let (vw, d3w) = stencil(ID_WMOM);
                    let (vt, d3t) = stencil(ID_RHOT);
                    let r = vd + bg_dens_int[iface];
                    let w = if at_wall { 0.0 } else { vw / r };
                    let u = vu / r;
                    let t = (vt + bg_dt_int[iface]) / r;
                    let p = C0 * (r * t).powf(GAMMA) - bg_p_int[iface];
                    match id_out {
                        // Rigid walls: no advective mass/momentum/heat flux.
                        ID_DENS => {
                            if at_wall {
                                0.0
                            } else {
                                r * w - hv_coef * d3d
                            }
                        }
                        ID_UMOM => {
                            if at_wall {
                                0.0
                            } else {
                                r * w * u - hv_coef * d3u
                            }
                        }
                        // Perturbation pressure acts on the walls.
                        ID_WMOM => r * w * w + p - if at_wall { 0.0 } else { hv_coef * d3w },
                        _ => {
                            if at_wall {
                                0.0
                            } else {
                                r * w * t - hv_coef * d3t
                            }
                        }
                    }
                };
                for id in 0..4 {
                    let o = out.row(id);
                    for i in 0..o.len() {
                        let mut t = -(flux(i, 0, id) - flux(i, -1, id)) / dz;
                        if id == ID_WMOM {
                            t -= dens[i] * GRAV; // buoyancy source
                        }
                        o[i] = t;
                    }
                }
            },
        );
    }

    /// `dst = init + dt_frac·tend` over the interior, for all 4 fields.
    fn apply_update(
        &mut self,
        profile: &mut Profile,
        dst_is_tmp: bool,
        init_is_tmp: bool,
        dt_frac: f64,
    ) {
        let (nx, nz) = (self.local_nx, self.cfg.nz);
        // Split borrows: destination vs init vs tend.
        let (dst, init): (&mut Vec<Dat2<f64>>, &Vec<Dat2<f64>>) = match (dst_is_tmp, init_is_tmp) {
            (true, false) => (&mut self.state_tmp, &self.state),
            (false, false) => {
                // dst == init == state: in-place x += dt·tend
                let tend = &self.tend;
                let mode = self.cfg.mode;
                for (id, f) in self.state.iter_mut().enumerate() {
                    par_loop2_rows(
                        profile,
                        "mw_update",
                        mode,
                        Range2::interior(nx, nz),
                        &mut [f],
                        &[&tend[id]],
                        2.0,
                        move |_j, out, ins| {
                            let t = ins.row(0);
                            let o = out.row(0);
                            for i in 0..o.len() {
                                o[i] += dt_frac * t[i];
                            }
                        },
                    );
                }
                return;
            }
            _ => unreachable!("unsupported update combination"),
        };
        let tend = &self.tend;
        let mode = self.cfg.mode;
        for id in 0..4 {
            par_loop2_rows(
                profile,
                "mw_update",
                mode,
                Range2::interior(nx, nz),
                &mut [&mut dst[id]],
                &[&init[id], &tend[id]],
                2.0,
                move |_j, out, ins| {
                    let a = ins.row(0);
                    let t = ins.row(1);
                    let o = out.row(0);
                    for i in 0..o.len() {
                        o[i] = a[i] + dt_frac * t[i];
                    }
                },
            );
        }
    }

    /// One directional semi-discrete RK3 sub-cycle.
    fn direction_step(&mut self, profile: &mut Profile, x_dir: bool, mut comm: Option<&mut Comm>) {
        let dt = self.dt;
        let tendf: fn(&mut Self, &mut Profile, bool, Option<&mut Comm>) = if x_dir {
            Self::tendencies_x
        } else {
            Self::tendencies_z
        };
        // stage 1: tmp = state + dt/3 · T(state)
        tendf(self, profile, false, comm.as_deref_mut());
        self.apply_update(profile, true, false, dt / 3.0);
        // stage 2: tmp = state + dt/2 · T(tmp)
        tendf(self, profile, true, comm.as_deref_mut());
        self.apply_update(profile, true, false, dt / 2.0);
        // stage 3: state = state + dt · T(tmp)
        tendf(self, profile, true, comm);
        self.apply_update(profile, false, false, dt);
    }

    /// One full time step (x/z split, alternating order).
    pub fn step(&mut self, profile: &mut Profile) {
        self.step_with(profile, None);
    }

    /// One full time step, exchanging halos through `comm` when the solver
    /// was built distributed.
    pub fn step_with(&mut self, profile: &mut Profile, mut comm: Option<&mut Comm>) {
        if self.direction_switch {
            self.direction_step(profile, true, comm.as_deref_mut());
            self.direction_step(profile, false, comm);
        } else {
            self.direction_step(profile, false, comm.as_deref_mut());
            self.direction_step(profile, true, comm);
        }
        self.direction_switch = !self.direction_switch;
    }

    /// Distributed run: decompose the x axis over `comm.size()` ranks in a
    /// periodic ring. Returns this rank's profile and (on rank 0) the
    /// gathered global perturbation density field (x-major rows of nz).
    pub fn run_distributed(
        comm: &mut Comm,
        cfg: Config,
        steps: usize,
    ) -> (Profile, Option<Vec<f64>>) {
        let size = comm.size();
        let rank = comm.rank();
        assert_eq!(
            cfg.nx % size,
            0,
            "nx must divide evenly for the ring decomposition"
        );
        let local_nx = cfg.nx / size;
        let left = (rank + size - 1) % size;
        let right = (rank + 1) % size;
        let nz = cfg.nz;
        let mut profile = Profile::new();
        let mut sim = MiniWeather::new_local(cfg, rank * local_nx, local_nx, Some((left, right)));
        for it in 0..steps {
            let mut aspan = bwb_trace::span(bwb_trace::Cat::App, "mw_step");
            aspan.set_args(it as f64, 0.0, 0.0);
            sim.step_with(&mut profile, Some(comm));
        }
        // Gather the density perturbation column-major per rank.
        let mut mine = Vec::with_capacity(local_nx * nz);
        for i in 0..local_nx as isize {
            for k in 0..nz as isize {
                mine.push(sim.state[ID_DENS].get(i, k));
            }
        }
        let gathered = comm.gather(&mine, 0).map(|parts| parts.concat());
        (profile, gathered)
    }

    /// Domain totals of the perturbation mass and heat (conserved; local
    /// slab totals when distributed — allreduce them across ranks).
    pub fn totals(&self, profile: &mut Profile) -> (f64, f64) {
        let (nx, nz) = (self.local_nx, self.cfg.nz);
        let sum = |f: &Dat2<f64>, profile: &mut Profile| {
            par_loop2_reduce(
                profile,
                "mw_totals",
                ExecMode::Serial,
                Range2::interior(nx, nz),
                &[f],
                0.0f64,
                1.0,
                |_i, _j, ins| ins.get(0, 0, 0),
                |a, b| a + b,
            )
        };
        (
            sum(&self.state[ID_DENS], profile),
            sum(&self.state[ID_RHOT], profile),
        )
    }

    /// Max |w| over the domain — the bubble's rise signature.
    pub fn max_abs_w(&self) -> f64 {
        let (nx, nz) = (self.local_nx as isize, self.cfg.nz as isize);
        let mut m = 0.0f64;
        for k in 0..nz {
            for i in 0..nx {
                m = m.max(self.state[ID_WMOM].get(i, k).abs());
            }
        }
        m
    }

    /// Run for the configured simulated time.
    pub fn run(cfg: Config) -> AppRun {
        let mut profile = Profile::new();
        let points = cfg.nx * cfg.nz;
        let mut sim = MiniWeather::new(cfg);
        let (m0, t0) = sim.totals(&mut profile);
        let steps = (sim.cfg.sim_time / sim.dt).ceil() as usize;
        for it in 0..steps {
            let mut aspan = bwb_trace::span(bwb_trace::Cat::App, "mw_step");
            aspan.set_args(it as f64, 0.0, 0.0);
            sim.step(&mut profile);
        }
        let (m1, t1) = sim.totals(&mut profile);
        // Validation: relative drift of conserved totals (θ′ total is
        // nonzero; ρ′ total starts at 0, so normalize by the background
        // cell mass scale).
        let scale = 1.0; // kg m⁻³ · cells — absolute drift is the metric
        let drift = ((m1 - m0).abs() / scale).max((t1 - t0).abs() / t0.abs().max(1.0));
        AppRun {
            app: AppId::MiniWeather,
            profile,
            validation: drift,
            iterations: steps,
            points,
        }
    }
}

/// Declared loop chain for `dslcheck::speccheck`: two full time steps of
/// the serial solver — the dimensional-split order alternates
/// x,z / z,x via `direction_switch`, so a two-step body is the natural
/// period — followed by the two `mw_totals` mass/energy reductions the
/// registry run appends. Slots 0‑3 are the state fields, 4‑7 the RK
/// temporaries, 8‑11 the tendencies. Each directional sub-cycle is
/// tend → 4 copy-updates, twice, then tend → 4 in-place updates (the two
/// `mw_update` arities). The distributed ring exchange is a hand-rolled
/// `comm.send` fill that records nothing, so only the serial chain is
/// declared.
pub fn chain_spec() -> bwb_ops::ChainSpec {
    use bwb_ops::{ChainSpec, DatDecl, Expr, Step};
    const SLOT_NAMES: [&str; 12] = [
        "dens",
        "umom",
        "wmom",
        "rhot",
        "dens_tmp",
        "umom_tmp",
        "wmom_tmp",
        "rhot_tmp",
        "dens_tend",
        "umom_tend",
        "wmom_tend",
        "rhot_tend",
    ];
    let c = Expr::c;
    let p = Expr::p;
    let dats = SLOT_NAMES
        .iter()
        .map(|name| DatDecl {
            name,
            halo: 2,
            extent: [p("nx"), p("nz"), Expr::c(1)],
            elem_bytes: 8,
        })
        .collect();
    let interior = || [c(0), p("nx"), c(0), p("nz"), c(0), c(1)];
    let lp = |spec: &'static str, outs: Vec<usize>, ins: Vec<usize>| Step::Loop {
        spec,
        dims: 2,
        range: interior(),
        outs,
        ins,
    };
    let mut body = Vec::new();
    let dirstep = |body: &mut Vec<Step>, x_dir: bool| {
        let tend_spec = if x_dir { "mw_tend_x" } else { "mw_tend_z" };
        let tend = |src: usize| lp(tend_spec, vec![8, 9, 10, 11], (src..src + 4).collect());
        // Stages 1 and 2: tmp = state + frac·T(src), the copy arity.
        for src in [0usize, 4] {
            body.push(tend(src));
            for id in 0..4 {
                body.push(lp("mw_update", vec![4 + id], vec![id, 8 + id]));
            }
        }
        // Stage 3: state += dt·T(tmp), the in-place arity.
        body.push(tend(4));
        for id in 0..4 {
            body.push(lp("mw_update", vec![id], vec![8 + id]));
        }
    };
    for x_dir in [true, false, false, true] {
        dirstep(&mut body, x_dir);
    }
    ChainSpec {
        app: "miniweather",
        params: vec!["nx", "nz"],
        dats,
        prologue: Vec::new(),
        body,
        epilogue: vec![
            lp("mw_totals", vec![], vec![0]),
            lp("mw_totals", vec![], vec![3]),
        ],
    }
}

/// Declared access contracts of every loop in this app, for `bwb-dslcheck`.
///
/// `mw_update` runs in two arities: copy-update (`dst = init + dt·tend`, two
/// inputs) and in-place (`state += dt·tend`, one input); each gets a spec and
/// observations match on `(name, #outs, #ins)`.
pub fn loop_specs() -> Vec<bwb_ops::LoopSpec> {
    use bwb_ops::{ArgSpec as A, LoopSpec as L, Stencil as S};
    let x5 = || S::of2(&[(-2, 0), (-1, 0), (0, 0), (1, 0), (2, 0)]);
    let z5 = || S::of2(&[(0, -2), (0, -1), (0, 0), (0, 1), (0, 2)]);
    let tends = || {
        vec![
            A::write("tend_dens"),
            A::write("tend_umom"),
            A::write("tend_wmom"),
            A::write("tend_rhot"),
        ]
    };
    let state = |s: fn() -> S| {
        vec![
            A::read("dens", s()),
            A::read("umom", s()),
            A::read("wmom", s()),
            A::read("rhot", s()),
        ]
    };
    vec![
        L::new("mw_tend_x", tends(), state(x5)),
        L::new("mw_tend_z", tends(), state(z5)),
        L::new(
            "mw_update",
            vec![A::write("dst")],
            vec![A::read("init", S::point()), A::read("tend", S::point())],
        ),
        L::new(
            "mw_update",
            vec![A::read_write("state")],
            vec![A::read("tend", S::point())],
        ),
        L::new("mw_totals", vec![], vec![A::read("state", S::point())]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydrostatic_profile_sane() {
        let (r0, rt0) = hydrostatic(0.0);
        let (r5, _) = hydrostatic(5000.0);
        assert!((r0 - 1.16).abs() < 0.05, "surface density {r0}");
        assert!(r5 < r0, "density decreases with height");
        assert!((rt0 / r0 - THETA0).abs() < 1e-9);
    }

    #[test]
    fn mass_and_heat_conserved() {
        let run = MiniWeather::run(Config {
            nx: 40,
            nz: 20,
            sim_time: 10.0,
            ..Config::default()
        });
        assert!(
            run.validation < 1e-8,
            "conservation drift {}",
            run.validation
        );
        assert!(run.iterations > 5);
    }

    #[test]
    fn bubble_starts_rising() {
        let cfg = Config {
            nx: 50,
            nz: 25,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = MiniWeather::new(cfg);
        assert_eq!(sim.max_abs_w(), 0.0);
        for _ in 0..20 {
            sim.step(&mut profile);
        }
        assert!(
            sim.max_abs_w() > 1e-4,
            "w momentum developed: {}",
            sim.max_abs_w()
        );
        // Upward in the bubble column: w > 0 at the bubble centre.
        let (nx, nz) = (50isize, 25isize);
        let wc = sim.state[ID_WMOM].get(nx / 2, nz / 5);
        assert!(wc > 0.0, "bubble core rises, wmom = {wc}");
    }

    #[test]
    fn solution_stays_finite() {
        let cfg = Config {
            nx: 32,
            nz: 16,
            sim_time: 20.0,
            ..Config::default()
        };
        let run = MiniWeather::run(cfg);
        assert!(run.validation.is_finite());
    }

    #[test]
    fn serial_equals_rayon() {
        let base = Config {
            nx: 24,
            nz: 12,
            sim_time: 3.0,
            ..Config::default()
        };
        let a = MiniWeather::run(Config {
            mode: ExecMode::Serial,
            ..base.clone()
        });
        let b = MiniWeather::run(Config {
            mode: ExecMode::Rayon,
            ..base
        });
        assert_eq!(a.validation, b.validation);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn profile_contains_all_kernels() {
        let run = MiniWeather::run(Config {
            nx: 16,
            nz: 8,
            sim_time: 1.0,
            ..Config::default()
        });
        for k in ["mw_tend_x", "mw_tend_z", "mw_update"] {
            assert!(run.profile.get(k).is_some(), "missing kernel {k}");
        }
        // Per full step: 3 x-tend + 3 z-tend; updates: 3 stages × 4 fields × 2 dirs.
        let tx = run.profile.get("mw_tend_x").unwrap();
        assert_eq!(tx.calls as usize, 3 * run.iterations);
        let up = run.profile.get("mw_update").unwrap();
        assert_eq!(up.calls as usize, 24 * run.iterations);
    }

    #[test]
    fn distributed_ring_matches_single_rank_bitwise() {
        use bwb_shmpi::Universe;
        let cfg = Config {
            nx: 48,
            nz: 12,
            sim_time: 0.0,
            ..Config::default()
        };
        let steps = 4;
        // Serial reference (column-major like the distributed gather).
        let single = {
            let mut profile = Profile::new();
            let mut sim = MiniWeather::new(cfg.clone());
            for _ in 0..steps {
                sim.step(&mut profile);
            }
            let mut v = Vec::new();
            for i in 0..48isize {
                for k in 0..12isize {
                    v.push(sim.state[ID_DENS].get(i, k));
                }
            }
            v
        };
        for ranks in [2usize, 3, 4] {
            let cfg2 = cfg.clone();
            let out = Universe::run(ranks, move |c| {
                MiniWeather::run_distributed(c, cfg2.clone(), steps).1
            });
            let dist = out.results[0].as_ref().unwrap();
            assert_eq!(dist.len(), single.len());
            for (a, b) in dist.iter().zip(&single) {
                assert_eq!(a.to_bits(), b.to_bits(), "{ranks} ranks");
            }
        }
    }

    #[test]
    fn distributed_ring_wraps_periodically() {
        use bwb_shmpi::Universe;
        // 2 ranks: rank 0's left neighbour is rank 1 — messages must flow
        // around the ring (sends counted on both ranks every tendency).
        let cfg = Config {
            nx: 16,
            nz: 8,
            sim_time: 0.0,
            ..Config::default()
        };
        let out = Universe::run(2, move |c| {
            let _ = MiniWeather::run_distributed(c, cfg.clone(), 2);
            c.stats()
        });
        for (rank, s) in out.results.iter().enumerate() {
            // 2 steps × 2 directions × 3 stages × 4 fields × 2 sides = 96
            // halo sends; non-root ranks add 1 gather message.
            let expect = if rank == 0 { 96 } else { 97 };
            assert_eq!(s.sends, expect, "rank {rank}");
        }
    }

    #[test]
    fn dt_respects_cfl() {
        let sim = MiniWeather::new(Config {
            nx: 100,
            nz: 50,
            ..Config::default()
        });
        let dx = 2.0e4 / 100.0;
        assert!((sim.dt() - dx / MAX_SPEED).abs() < 1e-12);
    }
}
