//! CloverLeaf 3D — the three-dimensional variant of the CloverLeaf
//! hydrodynamics proxy (paper §3, app 2; 408³ problem, 50 iterations).
//!
//! Same algorithm as [`crate::cloverleaf2d`] extended to 3-D: staggered
//! grid (cell-centred thermodynamics, node-centred velocities), explicit
//! Lagrangian step + directional-split donor-cell remap. The 3-D access
//! patterns are what matter to the paper ("given they are in 3D, their
//! access patterns are more complicated" — §6): nodal kernels gather 8
//! cells, the remap runs three sweeps.

use crate::{AppId, AppRun};
use bwb_ops::{par_loop3, par_loop3_planes, par_loop3_reduce, Dat3, ExecMode, Profile, Range3};
use std::time::Instant;

pub const GAMMA: f64 = 1.4;
pub const HALO: usize = 2;

#[derive(Debug, Clone)]
pub struct Config {
    pub n: usize,
    pub iterations: usize,
    pub cfl: f64,
    pub mode: ExecMode,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 16,
            iterations: 10,
            cfl: 0.45,
            mode: ExecMode::Serial,
        }
    }
}

impl Config {
    /// Paper testcase: 408³, 50 iterations.
    pub fn paper() -> Self {
        Config {
            n: 408,
            iterations: 50,
            cfl: 0.45,
            mode: ExecMode::Rayon,
        }
    }
}

pub struct Clover3 {
    cfg: Config,
    n: usize,
    dx: f64,
    density0: Dat3<f64>,
    density1: Dat3<f64>,
    energy0: Dat3<f64>,
    energy1: Dat3<f64>,
    pressure: Dat3<f64>,
    viscosity: Dat3<f64>,
    soundspeed: Dat3<f64>,
    work_d: Dat3<f64>,
    work_e: Dat3<f64>,
    xvel: Dat3<f64>,
    yvel: Dat3<f64>,
    zvel: Dat3<f64>,
    xvel1: Dat3<f64>,
    yvel1: Dat3<f64>,
    zvel1: Dat3<f64>,
    vol_flux_x: Dat3<f64>,
    vol_flux_y: Dat3<f64>,
    vol_flux_z: Dat3<f64>,
}

impl Clover3 {
    pub fn new(cfg: Config) -> Self {
        let n = cfg.n;
        let dx = 10.0 / n as f64;
        let cell = |nm: &str| Dat3::<f64>::new(nm, n, n, n, HALO);
        let node = |nm: &str| Dat3::<f64>::new(nm, n + 1, n + 1, n + 1, HALO);
        let mut density0 = cell("density0");
        let mut energy0 = cell("energy0");
        let half = n as isize / 2;
        density0.init_with(|i, j, k| {
            if i < half && j < half && k < half {
                1.0
            } else {
                0.2
            }
        });
        energy0.init_with(|i, j, k| {
            if i < half && j < half && k < half {
                2.5
            } else {
                1.0
            }
        });
        Clover3 {
            n,
            dx,
            density1: cell("density1"),
            energy1: cell("energy1"),
            pressure: cell("pressure"),
            viscosity: cell("viscosity"),
            soundspeed: cell("soundspeed"),
            work_d: cell("work_d"),
            work_e: cell("work_e"),
            xvel: node("xvel"),
            yvel: node("yvel"),
            zvel: node("zvel"),
            xvel1: node("xvel1"),
            yvel1: node("yvel1"),
            zvel1: node("zvel1"),
            vol_flux_x: Dat3::new("vol_flux_x", n + 1, n, n, HALO),
            vol_flux_y: Dat3::new("vol_flux_y", n, n + 1, n, HALO),
            vol_flux_z: Dat3::new("vol_flux_z", n, n, n + 1, HALO),
            density0,
            energy0,
            cfg,
        }
    }

    fn cells(&self) -> Range3 {
        Range3::interior(self.n, self.n, self.n)
    }

    fn nodes(&self) -> Range3 {
        Range3::interior(self.n + 1, self.n + 1, self.n + 1)
    }

    /// Reflective boundary mirrors for the cell fields (the boundary
    /// kernels of the 3-D code: 6 faces × fields).
    fn update_halo(&mut self, profile: &mut Profile) {
        let t0 = Instant::now();
        let n = self.n as isize;
        let h = HALO as isize;
        let mut points = 0usize;
        for f in [
            &mut self.density0,
            &mut self.energy0,
            &mut self.pressure,
            &mut self.viscosity,
            &mut self.density1,
            &mut self.energy1,
        ] {
            for k in 0..n {
                for j in 0..n {
                    for hh in 1..=h {
                        f.set(-hh, j, k, f.get(hh - 1, j, k));
                        f.set(n - 1 + hh, j, k, f.get(n - hh, j, k));
                        points += 2;
                    }
                }
            }
            for k in 0..n {
                for i in -h..n + h {
                    for hh in 1..=h {
                        f.set(i, -hh, k, f.get(i, hh - 1, k));
                        f.set(i, n - 1 + hh, k, f.get(i, n - hh, k));
                        points += 2;
                    }
                }
            }
            for j in -h..n + h {
                for i in -h..n + h {
                    for hh in 1..=h {
                        f.set(i, j, -hh, f.get(i, j, hh - 1));
                        f.set(i, j, n - 1 + hh, f.get(i, j, n - hh));
                        points += 2;
                    }
                }
            }
        }
        profile.record(
            "update_halo3",
            points,
            points * 16,
            0.0,
            t0.elapsed().as_secs_f64(),
        );
    }

    /// Zero normal velocities on the box walls.
    fn velocity_bcs(&mut self, profile: &mut Profile) {
        let t0 = Instant::now();
        let n = self.n as isize;
        let mut points = 0usize;
        for v in [&mut self.xvel, &mut self.xvel1] {
            for k in 0..=n {
                for j in 0..=n {
                    v.set(0, j, k, 0.0);
                    v.set(n, j, k, 0.0);
                    points += 2;
                }
            }
        }
        for v in [&mut self.yvel, &mut self.yvel1] {
            for k in 0..=n {
                for i in 0..=n {
                    v.set(i, 0, k, 0.0);
                    v.set(i, n, k, 0.0);
                    points += 2;
                }
            }
        }
        for v in [&mut self.zvel, &mut self.zvel1] {
            for j in 0..=n {
                for i in 0..=n {
                    v.set(i, j, 0, 0.0);
                    v.set(i, j, n, 0.0);
                    points += 2;
                }
            }
        }
        profile.record(
            "update_halo3_vel",
            points,
            points * 8,
            0.0,
            t0.elapsed().as_secs_f64(),
        );
    }

    fn ideal_gas(&mut self, profile: &mut Profile) {
        par_loop3_planes(
            profile,
            "ideal_gas3",
            self.cfg.mode,
            self.cells(),
            &mut [&mut self.pressure, &mut self.soundspeed],
            &[&self.density0, &self.energy0],
            5.0,
            |_j, _k, out, ins| {
                let rho = ins.row(0);
                let e = ins.row(1);
                let (p, ss) = out.rows2(0, 1);
                for i in 0..p.len() {
                    let pv = (GAMMA - 1.0) * rho[i] * e[i];
                    p[i] = pv;
                    ss[i] = (GAMMA * pv / rho[i]).sqrt();
                }
            },
        );
    }

    fn viscosity_kernel(&mut self, profile: &mut Profile) {
        let dx = self.dx;
        par_loop3_planes(
            profile,
            "viscosity3",
            self.cfg.mode,
            self.cells(),
            &mut [&mut self.viscosity],
            &[&self.density0, &self.xvel, &self.yvel, &self.zvel],
            25.0,
            move |_j, _k, out, ins| {
                // Face-node rows: x faces at i offsets {0,1} over the 4
                // (j,k) face nodes, likewise y and z faces.
                let face = [(0isize, 0isize), (1, 0), (0, 1), (1, 1)];
                let u = |hi: isize| face.map(|(a, b)| ins.row_off(1, hi, a, b));
                let v = |hi: isize| face.map(|(a, b)| ins.row_off(2, a, hi, b));
                let w = |hi: isize| face.map(|(a, b)| ins.row_off(3, a, b, hi));
                let (u0, u1) = (u(0), u(1));
                let (v0, v1) = (v(0), v(1));
                let (w0, w1) = (w(0), w(1));
                let rho = ins.row(0);
                let q = out.row(0);
                let favg =
                    |r: &[&[f64]; 4], i: usize| 0.25 * (r[0][i] + r[1][i] + r[2][i] + r[3][i]);
                for i in 0..q.len() {
                    let div = (favg(&u1, i) - favg(&u0, i) + favg(&v1, i) - favg(&v0, i)
                        + favg(&w1, i)
                        - favg(&w0, i))
                        / dx;
                    q[i] = if div < 0.0 {
                        2.0 * rho[i] * (div * dx) * (div * dx)
                    } else {
                        0.0
                    };
                }
            },
        );
    }

    fn calc_dt(&mut self, profile: &mut Profile) -> f64 {
        let (dx, cfl) = (self.dx, self.cfg.cfl);
        par_loop3_reduce(
            profile,
            "calc_dt3",
            self.cfg.mode,
            self.cells(),
            &[&self.soundspeed, &self.xvel, &self.yvel, &self.zvel],
            f64::INFINITY,
            10.0,
            move |_i, _j, _k, ins| {
                let ss = ins.get(0, 0, 0, 0);
                let vmax = ins
                    .get(1, 0, 0, 0)
                    .abs()
                    .max(ins.get(2, 0, 0, 0).abs())
                    .max(ins.get(3, 0, 0, 0).abs());
                cfl * dx / (ss + vmax + 1e-12)
            },
            f64::min,
        )
    }

    fn accelerate(&mut self, profile: &mut Profile, dt: f64) {
        let dx = self.dx;
        let vol = dx * dx * dx;
        par_loop3_planes(
            profile,
            "accelerate3",
            self.cfg.mode,
            self.nodes(),
            &mut [&mut self.xvel1, &mut self.yvel1, &mut self.zvel1],
            &[
                &self.density0,
                &self.pressure,
                &self.viscosity,
                &self.xvel,
                &self.yvel,
                &self.zvel,
            ],
            60.0,
            move |_j, _k, out, ins| {
                // Node (i,j,k) neighbours the 8 cells (i-1..i)×(j-1..j)×(k-1..k).
                // Offsets indexed so bit 0 = di==-1, bit 1 = dj==-1,
                // bit 2 = dk==-1.
                let offs = [
                    (0isize, 0isize, 0isize),
                    (-1, 0, 0),
                    (0, -1, 0),
                    (-1, -1, 0),
                    (0, 0, -1),
                    (-1, 0, -1),
                    (0, -1, -1),
                    (-1, -1, -1),
                ];
                let den = offs.map(|(a, b, c)| ins.row_off(0, a, b, c));
                let prs = offs.map(|(a, b, c)| ins.row_off(1, a, b, c));
                let vis = offs.map(|(a, b, c)| ins.row_off(2, a, b, c));
                let u0 = ins.row(3);
                let v0 = ins.row(4);
                let w0 = ins.row(5);
                let area = dx * dx;
                let (u1, v1, w1) = out.rows3(0, 1, 2);
                for i in 0..u1.len() {
                    // Same accumulation order as the scalar kernel: dk, dj,
                    // di each from -1 to 0.
                    let mut mass = 0.0;
                    for o in [7, 6, 5, 4, 3, 2, 1, 0] {
                        mass += den[o][i];
                    }
                    mass *= 0.125 * vol;
                    let sbm = 0.25 * dt / mass;
                    let pq = |o: usize| prs[o][i] + vis[o][i];
                    let dpx = (pq(0) + pq(2) + pq(4) + pq(6)) - (pq(1) + pq(3) + pq(5) + pq(7));
                    let dpy = (pq(0) + pq(1) + pq(4) + pq(5)) - (pq(2) + pq(3) + pq(6) + pq(7));
                    let dpz = (pq(0) + pq(1) + pq(2) + pq(3)) - (pq(4) + pq(5) + pq(6) + pq(7));
                    u1[i] = u0[i] - sbm * dpx * area;
                    v1[i] = v0[i] - sbm * dpy * area;
                    w1[i] = w0[i] - sbm * dpz * area;
                }
            },
        );
    }

    fn pdv(&mut self, profile: &mut Profile, dt: f64) {
        let dx = self.dx;
        par_loop3_planes(
            profile,
            "pdv3",
            self.cfg.mode,
            self.cells(),
            &mut [&mut self.energy1, &mut self.density1],
            &[
                &self.density0,
                &self.energy0,
                &self.pressure,
                &self.viscosity,
                &self.xvel1,
                &self.yvel1,
                &self.zvel1,
            ],
            45.0,
            move |_j, _k, out, ins| {
                let face = [(0isize, 0isize), (1, 0), (0, 1), (1, 1)];
                let u = |hi: isize| face.map(|(a, b)| ins.row_off(4, hi, a, b));
                let v = |hi: isize| face.map(|(a, b)| ins.row_off(5, a, hi, b));
                let w = |hi: isize| face.map(|(a, b)| ins.row_off(6, a, b, hi));
                let (u0, u1) = (u(0), u(1));
                let (v0, v1) = (v(0), v(1));
                let (w0, w1) = (w(0), w(1));
                let rho = ins.row(0);
                let e = ins.row(1);
                let p = ins.row(2);
                let q = ins.row(3);
                let (e1, d1) = out.rows2(0, 1);
                let favg =
                    |r: &[&[f64]; 4], i: usize| 0.25 * (r[0][i] + r[1][i] + r[2][i] + r[3][i]);
                for i in 0..e1.len() {
                    let div = (favg(&u1, i) - favg(&u0, i) + favg(&v1, i) - favg(&v0, i)
                        + favg(&w1, i)
                        - favg(&w0, i))
                        / dx;
                    let pq = p[i] + q[i];
                    e1[i] = (e[i] - dt * pq * div / rho[i]).max(1e-10);
                    d1[i] = rho[i];
                }
            },
        );
    }

    fn flux_calc(&mut self, profile: &mut Profile, dt: f64) {
        let dx = self.dx;
        let n = self.n as isize;
        let mode = self.cfg.mode;
        let area = dx * dx;
        par_loop3_planes(
            profile,
            "flux_calc3_x",
            mode,
            Range3::new(0, n + 1, 0, n, 0, n),
            &mut [&mut self.vol_flux_x],
            &[&self.xvel, &self.xvel1],
            9.0,
            move |_j, _k, out, ins| {
                let offs = [(0isize, 0isize), (1, 0), (0, 1), (1, 1)];
                let a = offs.map(|(p, q)| ins.row_off(0, 0, p, q));
                let b = offs.map(|(p, q)| ins.row_off(1, 0, p, q));
                let fx = out.row(0);
                for i in 0..fx.len() {
                    let u = 0.125
                        * (a[0][i]
                            + a[1][i]
                            + a[2][i]
                            + a[3][i]
                            + b[0][i]
                            + b[1][i]
                            + b[2][i]
                            + b[3][i]);
                    fx[i] = u * dt * area;
                }
            },
        );
        par_loop3_planes(
            profile,
            "flux_calc3_y",
            mode,
            Range3::new(0, n, 0, n + 1, 0, n),
            &mut [&mut self.vol_flux_y],
            &[&self.yvel, &self.yvel1],
            9.0,
            move |_j, _k, out, ins| {
                let offs = [(0isize, 0isize), (1, 0), (0, 1), (1, 1)];
                let a = offs.map(|(p, q)| ins.row_off(0, p, 0, q));
                let b = offs.map(|(p, q)| ins.row_off(1, p, 0, q));
                let fy = out.row(0);
                for i in 0..fy.len() {
                    let v = 0.125
                        * (a[0][i]
                            + a[1][i]
                            + a[2][i]
                            + a[3][i]
                            + b[0][i]
                            + b[1][i]
                            + b[2][i]
                            + b[3][i]);
                    fy[i] = v * dt * area;
                }
            },
        );
        par_loop3_planes(
            profile,
            "flux_calc3_z",
            mode,
            Range3::new(0, n, 0, n, 0, n + 1),
            &mut [&mut self.vol_flux_z],
            &[&self.zvel, &self.zvel1],
            9.0,
            move |_j, _k, out, ins| {
                let offs = [(0isize, 0isize), (1, 0), (0, 1), (1, 1)];
                let a = offs.map(|(p, q)| ins.row_off(0, p, q, 0));
                let b = offs.map(|(p, q)| ins.row_off(1, p, q, 0));
                let fz = out.row(0);
                for i in 0..fz.len() {
                    let w = 0.125
                        * (a[0][i]
                            + a[1][i]
                            + a[2][i]
                            + a[3][i]
                            + b[0][i]
                            + b[1][i]
                            + b[2][i]
                            + b[3][i]);
                    fz[i] = w * dt * area;
                }
            },
        );
    }

    /// Donor-cell conservative remap along direction `dir` (0/1/2).
    fn advec_cell(&mut self, profile: &mut Profile, dir: usize) {
        let vol = self.dx * self.dx * self.dx;
        let name = match dir {
            0 => "advec_cell3_x",
            1 => "advec_cell3_y",
            _ => "advec_cell3_z",
        };
        let flux_field = match dir {
            0 => &self.vol_flux_x,
            1 => &self.vol_flux_y,
            _ => &self.vol_flux_z,
        };
        par_loop3(
            profile,
            name,
            self.cfg.mode,
            self.cells(),
            &mut [&mut self.work_d, &mut self.work_e],
            &[&self.density1, &self.energy1, flux_field],
            22.0,
            move |_i, _j, _k, out, ins| {
                let off = |face: isize, d: isize| -> (isize, isize, isize) {
                    match dir {
                        0 => (face + d, 0, 0),
                        1 => (0, face + d, 0),
                        _ => (0, 0, face + d),
                    }
                };
                let flux = |face: isize| -> (f64, f64) {
                    let (fi, fj, fk) = off(face, 0);
                    let fv = ins.get(2, fi, fj, fk);
                    let d = if fv > 0.0 { -1 } else { 0 };
                    let (di, dj, dk) = off(face, d);
                    let m = fv * ins.get(0, di, dj, dk);
                    (m, m * ins.get(1, di, dj, dk))
                };
                let (m_in, e_in) = flux(0);
                let (m_out, e_out) = flux(1);
                let rho = ins.get(0, 0, 0, 0);
                let e = ins.get(1, 0, 0, 0);
                let mass = rho * vol + m_in - m_out;
                let energy_mass = rho * e * vol + e_in - e_out;
                out.set(0, mass / vol);
                out.set(1, energy_mass / mass.max(1e-300));
            },
        );
        std::mem::swap(&mut self.density1, &mut self.work_d);
        std::mem::swap(&mut self.energy1, &mut self.work_e);
    }

    /// Upwind momentum advection for all three velocity components.
    fn advec_mom(&mut self, profile: &mut Profile, dt: f64) {
        let dx = self.dx;
        par_loop3(
            profile,
            "advec_mom3",
            self.cfg.mode,
            self.nodes(),
            &mut [&mut self.xvel, &mut self.yvel, &mut self.zvel],
            &[&self.xvel1, &self.yvel1, &self.zvel1],
            45.0,
            move |_i, _j, _k, out, ins| {
                let u = ins.get(0, 0, 0, 0);
                let v = ins.get(1, 0, 0, 0);
                let w = ins.get(2, 0, 0, 0);
                let upwind = |f: usize| -> f64 {
                    let g = |di: isize, dj: isize, dk: isize| ins.get(f, di, dj, dk);
                    let c = g(0, 0, 0);
                    let ddx = if u > 0.0 {
                        c - g(-1, 0, 0)
                    } else {
                        g(1, 0, 0) - c
                    } / dx;
                    let ddy = if v > 0.0 {
                        c - g(0, -1, 0)
                    } else {
                        g(0, 1, 0) - c
                    } / dx;
                    let ddz = if w > 0.0 {
                        c - g(0, 0, -1)
                    } else {
                        g(0, 0, 1) - c
                    } / dx;
                    u * ddx + v * ddy + w * ddz
                };
                out.set(0, u - dt * upwind(0));
                out.set(1, v - dt * upwind(1));
                out.set(2, w - dt * upwind(2));
            },
        );
    }

    fn reset_field(&mut self, profile: &mut Profile) {
        par_loop3_planes(
            profile,
            "reset_field3",
            self.cfg.mode,
            self.cells(),
            &mut [&mut self.density0, &mut self.energy0],
            &[&self.density1, &self.energy1],
            0.0,
            |_j, _k, out, ins| {
                let (d, e) = out.rows2(0, 1);
                d.copy_from_slice(ins.row(0));
                e.copy_from_slice(ins.row(1));
            },
        );
    }

    pub fn cycle(&mut self, profile: &mut Profile) -> f64 {
        self.ideal_gas(profile);
        self.viscosity_kernel(profile);
        self.update_halo(profile);
        let dt = self.calc_dt(profile);
        self.accelerate(profile, dt);
        self.velocity_bcs(profile);
        self.pdv(profile, dt);
        self.flux_calc(profile, dt);
        self.update_halo(profile);
        self.advec_cell(profile, 0);
        self.update_halo(profile);
        self.advec_cell(profile, 1);
        self.update_halo(profile);
        self.advec_cell(profile, 2);
        self.advec_mom(profile, dt);
        self.velocity_bcs(profile);
        self.reset_field(profile);
        dt
    }

    /// (total mass, total internal energy).
    pub fn field_summary(&self, profile: &mut Profile) -> (f64, f64) {
        let vol = self.dx * self.dx * self.dx;
        par_loop3_reduce(
            profile,
            "field_summary3",
            ExecMode::Serial,
            self.cells(),
            &[&self.density0, &self.energy0],
            (0.0f64, 0.0f64),
            4.0,
            move |_i, _j, _k, ins| {
                let rho = ins.get(0, 0, 0, 0);
                (rho * vol, rho * ins.get(1, 0, 0, 0) * vol)
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
        )
    }

    pub fn run(cfg: Config) -> AppRun {
        let mut profile = Profile::new();
        let points = cfg.n.pow(3);
        let iterations = cfg.iterations;
        let mut sim = Clover3::new(cfg);
        let (m0, _) = sim.field_summary(&mut profile);
        for it in 0..iterations {
            let mut aspan = bwb_trace::span(bwb_trace::Cat::App, "hydro_cycle");
            aspan.set_args(it as f64, 0.0, 0.0);
            sim.cycle(&mut profile);
        }
        let (m1, _) = sim.field_summary(&mut profile);
        let validation = ((m1 - m0) / m0).abs();
        AppRun {
            app: AppId::CloverLeaf3D,
            profile,
            validation,
            iterations,
            points,
        }
    }
}

/// Declared access contracts of every DSL loop in this app, for
/// `bwb-dslcheck`. (`update_halo`/`velocity_bcs` are hand-rolled fills, not
/// `par_loop`s, so they carry no contract.) Data-dependent upwind windows
/// are declared at their full width; checked execution only flags reads
/// *outside* a declaration.
/// Declared loop chain for `dslcheck::speccheck`: the ordered loop/swap
/// stream of one [`Clover3::cycle`] plus the single `field_summary3`
/// reduction the registry run appends, symbolic over the cube edge `n`.
/// There are no recorded exchanges (the 3-D app is single-rank; its
/// `update_halo` mirrors are hand loops). Each `advec_cell` direction ends
/// with the density1/energy1 ↔ work double-buffer swap, so three swap
/// pairs per cycle give the chain a period-2 name rotation — exactly the
/// runtime behaviour under `mem::swap`.
pub fn chain_spec() -> bwb_ops::ChainSpec {
    use bwb_ops::{ChainSpec, DatDecl, Expr, Step};
    let c = Expr::c;
    let p = Expr::p;
    let pp = Expr::p_plus;
    let h = HALO as isize;
    let cell = |name: &'static str| DatDecl {
        name,
        halo: h,
        extent: [p("n"), p("n"), p("n")],
        elem_bytes: 8,
    };
    let node = |name: &'static str| DatDecl {
        name,
        halo: h,
        extent: [pp("n", 1), pp("n", 1), pp("n", 1)],
        elem_bytes: 8,
    };
    const D0: usize = 0;
    const D1: usize = 1;
    const E0: usize = 2;
    const E1: usize = 3;
    const PR: usize = 4;
    const VS: usize = 5;
    const SS: usize = 6;
    const WD: usize = 7;
    const WE: usize = 8;
    const XV: usize = 9;
    const YV: usize = 10;
    const ZV: usize = 11;
    const XV1: usize = 12;
    const YV1: usize = 13;
    const ZV1: usize = 14;
    const FX: usize = 15;
    const FY: usize = 16;
    const FZ: usize = 17;
    let dats = vec![
        cell("density0"),
        cell("density1"),
        cell("energy0"),
        cell("energy1"),
        cell("pressure"),
        cell("viscosity"),
        cell("soundspeed"),
        cell("work_d"),
        cell("work_e"),
        node("xvel"),
        node("yvel"),
        node("zvel"),
        node("xvel1"),
        node("yvel1"),
        node("zvel1"),
        DatDecl {
            name: "vol_flux_x",
            halo: h,
            extent: [pp("n", 1), p("n"), p("n")],
            elem_bytes: 8,
        },
        DatDecl {
            name: "vol_flux_y",
            halo: h,
            extent: [p("n"), pp("n", 1), p("n")],
            elem_bytes: 8,
        },
        DatDecl {
            name: "vol_flux_z",
            halo: h,
            extent: [p("n"), p("n"), pp("n", 1)],
            elem_bytes: 8,
        },
    ];
    let cells = || [c(0), p("n"), c(0), p("n"), c(0), p("n")];
    let nodes = || [c(0), pp("n", 1), c(0), pp("n", 1), c(0), pp("n", 1)];
    let lp = |spec: &'static str, range: [Expr; 6], outs: Vec<usize>, ins: Vec<usize>| Step::Loop {
        spec,
        dims: 3,
        range,
        outs,
        ins,
    };
    let mut body = vec![
        lp("ideal_gas3", cells(), vec![PR, SS], vec![D0, E0]),
        lp("viscosity3", cells(), vec![VS], vec![D0, XV, YV, ZV]),
        lp("calc_dt3", cells(), vec![], vec![SS, XV, YV, ZV]),
        lp(
            "accelerate3",
            nodes(),
            vec![XV1, YV1, ZV1],
            vec![D0, PR, VS, XV, YV, ZV],
        ),
        lp(
            "pdv3",
            cells(),
            vec![E1, D1],
            vec![D0, E0, PR, VS, XV1, YV1, ZV1],
        ),
        lp(
            "flux_calc3_x",
            [c(0), pp("n", 1), c(0), p("n"), c(0), p("n")],
            vec![FX],
            vec![XV, XV1],
        ),
        lp(
            "flux_calc3_y",
            [c(0), p("n"), c(0), pp("n", 1), c(0), p("n")],
            vec![FY],
            vec![YV, YV1],
        ),
        lp(
            "flux_calc3_z",
            [c(0), p("n"), c(0), p("n"), c(0), pp("n", 1)],
            vec![FZ],
            vec![ZV, ZV1],
        ),
    ];
    for (spec, flux) in [
        ("advec_cell3_x", FX),
        ("advec_cell3_y", FY),
        ("advec_cell3_z", FZ),
    ] {
        body.push(lp(spec, cells(), vec![WD, WE], vec![D1, E1, flux]));
        body.push(Step::Swap { a: D1, b: WD });
        body.push(Step::Swap { a: E1, b: WE });
    }
    body.push(lp(
        "advec_mom3",
        nodes(),
        vec![XV, YV, ZV],
        vec![XV1, YV1, ZV1],
    ));
    body.push(lp("reset_field3", cells(), vec![D0, E0], vec![D1, E1]));
    ChainSpec {
        app: "cloverleaf3d",
        params: vec!["n"],
        dats,
        prologue: Vec::new(),
        body,
        epilogue: vec![lp("field_summary3", cells(), vec![], vec![D0, E0])],
    }
}

pub fn loop_specs() -> Vec<bwb_ops::LoopSpec> {
    use bwb_ops::{ArgSpec as A, LoopSpec as L, Stencil as S};
    // Node quantity sampled at the 8 corners of a cell: {0,1}³.
    let corners = || {
        let mut v = Vec::new();
        for dk in 0..=1isize {
            for dj in 0..=1isize {
                for di in 0..=1isize {
                    v.push((di, dj, dk));
                }
            }
        }
        S::of3(&v)
    };
    // Cell quantity sampled at the 8 cells around a node: {-1,0}³.
    let nodal = || {
        let mut v = Vec::new();
        for dk in -1..=0isize {
            for dj in -1..=0isize {
                for di in -1..=0isize {
                    v.push((di, dj, dk));
                }
            }
        }
        S::of3(&v)
    };
    // 4 face nodes of the face normal to `dir` at layer 0: offsets with the
    // `dir` component fixed to 0 and the other two in {0,1}.
    let face4 = |dir: usize| {
        let mut v = Vec::new();
        for b in 0..=1isize {
            for a in 0..=1isize {
                let mut o = [0isize; 3];
                let others: [usize; 2] = match dir {
                    0 => [1, 2],
                    1 => [0, 2],
                    _ => [0, 1],
                };
                o[others[0]] = a;
                o[others[1]] = b;
                v.push((o[0], o[1], o[2]));
            }
        }
        S::of3(&v)
    };
    // Donor-cell window along `dir`: {-1, 0, 1}.
    let upwind3 = |dir: usize| {
        let mut v = Vec::new();
        for d in -1..=1isize {
            let mut o = [0isize; 3];
            o[dir] = d;
            v.push((o[0], o[1], o[2]));
        }
        S::of3(&v)
    };
    // Flux faces along `dir`: {0, 1}.
    let faces2 = |dir: usize| {
        let mut v = Vec::new();
        for d in 0..=1isize {
            let mut o = [0isize; 3];
            o[dir] = d;
            v.push((o[0], o[1], o[2]));
        }
        S::of3(&v)
    };
    let advec_cell = |dir: usize| {
        let name = match dir {
            0 => "advec_cell3_x",
            1 => "advec_cell3_y",
            _ => "advec_cell3_z",
        };
        let flux = match dir {
            0 => "vol_flux_x",
            1 => "vol_flux_y",
            _ => "vol_flux_z",
        };
        L::new(
            name,
            vec![A::write("work_d"), A::write("work_e")],
            vec![
                A::read("density1", upwind3(dir)),
                A::read("energy1", upwind3(dir)),
                A::read(flux, faces2(dir)),
            ],
        )
    };
    let flux_calc = |dir: usize| {
        let (name, flux, vel0, vel1) = match dir {
            0 => ("flux_calc3_x", "vol_flux_x", "xvel", "xvel1"),
            1 => ("flux_calc3_y", "vol_flux_y", "yvel", "yvel1"),
            _ => ("flux_calc3_z", "vol_flux_z", "zvel", "zvel1"),
        };
        L::new(
            name,
            vec![A::write(flux)],
            vec![A::read(vel0, face4(dir)), A::read(vel1, face4(dir))],
        )
    };
    vec![
        L::new(
            "ideal_gas3",
            vec![A::write("pressure"), A::write("soundspeed")],
            vec![
                A::read("density0", S::point()),
                A::read("energy0", S::point()),
            ],
        ),
        L::new(
            "viscosity3",
            vec![A::write("viscosity")],
            vec![
                A::read("density0", S::point()),
                A::read("xvel", corners()),
                A::read("yvel", corners()),
                A::read("zvel", corners()),
            ],
        ),
        L::new(
            "calc_dt3",
            vec![],
            vec![
                A::read("soundspeed", S::point()),
                A::read("xvel", S::point()),
                A::read("yvel", S::point()),
                A::read("zvel", S::point()),
            ],
        ),
        L::new(
            "accelerate3",
            vec![A::write("xvel1"), A::write("yvel1"), A::write("zvel1")],
            vec![
                A::read("density0", nodal()),
                A::read("pressure", nodal()),
                A::read("viscosity", nodal()),
                A::read("xvel", S::point()),
                A::read("yvel", S::point()),
                A::read("zvel", S::point()),
            ],
        ),
        L::new(
            "pdv3",
            vec![A::write("energy1"), A::write("density1")],
            vec![
                A::read("density0", S::point()),
                A::read("energy0", S::point()),
                A::read("pressure", S::point()),
                A::read("viscosity", S::point()),
                A::read("xvel1", corners()),
                A::read("yvel1", corners()),
                A::read("zvel1", corners()),
            ],
        ),
        flux_calc(0),
        flux_calc(1),
        flux_calc(2),
        advec_cell(0),
        advec_cell(1),
        advec_cell(2),
        L::new(
            "advec_mom3",
            vec![A::write("xvel"), A::write("yvel"), A::write("zvel")],
            vec![
                A::read("xvel1", S::plus3(1)),
                A::read("yvel1", S::plus3(1)),
                A::read("zvel1", S::plus3(1)),
            ],
        ),
        L::new(
            "reset_field3",
            vec![A::write("density0"), A::write("energy0")],
            vec![
                A::read("density1", S::point()),
                A::read("energy1", S::point()),
            ],
        ),
        L::new(
            "field_summary3",
            vec![],
            vec![
                A::read("density0", S::point()),
                A::read("energy0", S::point()),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_exactly_conserved() {
        let run = Clover3::run(Config {
            n: 12,
            iterations: 15,
            ..Config::default()
        });
        assert!(run.validation < 1e-12, "mass drift {}", run.validation);
    }

    #[test]
    fn fields_stay_positive_and_finite() {
        let cfg = Config {
            n: 10,
            iterations: 12,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Clover3::new(cfg);
        for _ in 0..12 {
            sim.cycle(&mut profile);
        }
        for k in 0..10 {
            for j in 0..10 {
                for i in 0..10 {
                    let rho = sim.density0.get(i, j, k);
                    assert!(rho > 0.0 && rho.is_finite(), "({i},{j},{k}) ρ={rho}");
                }
            }
        }
    }

    #[test]
    fn permutation_symmetry_preserved() {
        // The initial state is invariant under any permutation of the axes;
        // the dynamics must keep it so.
        let cfg = Config {
            n: 10,
            iterations: 6,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Clover3::new(cfg);
        for _ in 0..6 {
            sim.cycle(&mut profile);
        }
        for k in 0..10isize {
            for j in 0..10isize {
                for i in 0..10isize {
                    let a = sim.density0.get(i, j, k);
                    let b = sim.density0.get(j, k, i);
                    // Directional splitting (x→y→z sweeps) breaks exact
                    // permutation symmetry at O(dt²); the asymmetry must
                    // stay small relative to the O(1) density field.
                    assert!((a - b).abs() < 5e-2, "asymmetry ({i},{j},{k}): {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn serial_equals_rayon() {
        let base = Config {
            n: 8,
            iterations: 4,
            ..Config::default()
        };
        let a = Clover3::run(Config {
            mode: ExecMode::Serial,
            ..base.clone()
        });
        let b = Clover3::run(Config {
            mode: ExecMode::Rayon,
            ..base
        });
        assert_eq!(a.validation, b.validation);
    }

    #[test]
    fn three_sweeps_in_profile() {
        let run = Clover3::run(Config {
            n: 8,
            iterations: 2,
            ..Config::default()
        });
        for k in [
            "advec_cell3_x",
            "advec_cell3_y",
            "advec_cell3_z",
            "accelerate3",
            "pdv3",
        ] {
            assert!(run.profile.get(k).is_some(), "missing {k}");
        }
    }

    #[test]
    fn energy_bounded() {
        let cfg = Config {
            n: 10,
            iterations: 20,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Clover3::new(cfg);
        let (_, e0) = sim.field_summary(&mut profile);
        for _ in 0..20 {
            sim.cycle(&mut profile);
        }
        let (_, e1) = sim.field_summary(&mut profile);
        // Internal energy may convert to kinetic; it must stay positive and
        // not blow up.
        assert!(e1 > 0.0 && e1 < 2.0 * e0, "internal energy {e0} -> {e1}");
    }
}
