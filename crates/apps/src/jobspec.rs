//! # Job specs — a uniform front door onto every application
//!
//! The serving layer (`bwb-serve`) accepts benchmark requests as small
//! JSON documents naming an app, a grid size, an iteration count, and a
//! rank count. This module is the bridge from that wire-level shape onto
//! each application's own `Config`: one [`BenchSpec`] maps deterministically
//! onto a per-app configuration, runs it, and folds the resulting
//! [`AppRun`](crate::AppRun) into a flat, JSON-friendly [`BenchOutcome`].
//!
//! Two execution paths exist:
//!
//! * [`BenchSpec::run`] — in-process, `ranks == 1`, any app.
//! * [`BenchSpec::run_ranked`] — the body to run inside each rank of a
//!   `shmpi` universe for the distributed-capable apps (Acoustic,
//!   CloverLeaf 2D, miniWeather). The caller owns universe construction
//!   (the serve shard pool pins universes to carved core sets); per-rank
//!   [`RankOutcome`]s are merged with [`BenchSpec::merge_ranked`].
//!
//! [`BenchSpec::canonical`] renders the spec as a stable, order-fixed
//! string — the cache-key material for the content-addressed result cache.

use crate::{acoustic, cloverleaf2d, cloverleaf3d, mgcfd, minibude, miniweather, opensbli, volna};
use crate::{AppId, AppRun};
use bwb_op2::ExecModeU;
use bwb_ops::{ExecMode, OptPlan};
use bwb_shmpi::Comm;

/// A benchmark request in normalized form: which app, how big, how long,
/// over how many ranks, and whether the threaded backend is used.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BenchSpec {
    pub app: AppId,
    /// Primary grid-size knob (edge length / pose count; see `config_summary`).
    pub n: usize,
    /// Time steps / V-cycles / docking iterations.
    pub iterations: usize,
    /// 1 = in-process run; >1 = shmpi universe of this size.
    pub ranks: usize,
    /// Threaded backend (Rayon / colored) where the app has one.
    pub parallel: bool,
}

/// Flat outcome of a job run — everything the serving layer reports.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    pub app: AppId,
    /// App-specific physics validation quantity (rank 0's for ranked runs).
    pub validation: f64,
    /// Grid points / mesh elements of the primary set.
    pub points: usize,
    pub iterations: usize,
    pub ranks: usize,
    /// Loop wall time: total across loops (serial) or the slowest rank's
    /// total (ranked — the wall-clock-critical path).
    pub seconds: f64,
    /// Bytes moved by all parallel loops, summed across ranks.
    pub bytes: u64,
    /// Effective bandwidth, GB/s (Figure 8's metric).
    pub gbs: f64,
}

/// One rank's share of a distributed run, produced by
/// [`BenchSpec::run_ranked`] inside the universe closure.
#[derive(Debug, Clone)]
pub struct RankOutcome {
    pub seconds: f64,
    pub bytes: u64,
    /// Set on rank 0 only: validation quantity over the gathered field.
    pub validation: Option<f64>,
}

/// The apps with a distributed (`run_distributed`) driver.
pub const RANKED_APPS: [AppId; 3] = [AppId::Acoustic, AppId::CloverLeaf2D, AppId::MiniWeather];

/// The apps whose `Config` consumes a `dslcheck` optimization plan.
pub const PLAN_APPS: [AppId; 4] = [
    AppId::Acoustic,
    AppId::CloverLeaf2D,
    AppId::OpenSbliSa,
    AppId::OpenSbliSn,
];

impl AppId {
    /// Wire-level name (kebab/flat case, stable across releases).
    pub fn slug(self) -> &'static str {
        match self {
            AppId::MiniBude => "minibude",
            AppId::CloverLeaf2D => "cloverleaf2d",
            AppId::CloverLeaf3D => "cloverleaf3d",
            AppId::Acoustic => "acoustic",
            AppId::OpenSbliSa => "opensbli-sa",
            AppId::OpenSbliSn => "opensbli-sn",
            AppId::MgCfd => "mgcfd",
            AppId::Volna => "volna",
            AppId::MiniWeather => "miniweather",
        }
    }

    /// Inverse of [`AppId::slug`].
    pub fn from_slug(s: &str) -> Option<AppId> {
        AppId::ALL.into_iter().find(|a| a.slug() == s)
    }
}

impl BenchSpec {
    /// A CI-sized spec for `app` (each app's own `Config::default` scale).
    pub fn small(app: AppId) -> BenchSpec {
        let (n, iterations) = match app {
            AppId::MiniBude => (128, 2),
            AppId::CloverLeaf2D => (48, 20),
            AppId::CloverLeaf3D => (16, 10),
            AppId::Acoustic => (32, 10),
            AppId::OpenSbliSa | AppId::OpenSbliSn => (24, 5),
            AppId::MgCfd => (33, 5),
            AppId::Volna => (32, 50),
            AppId::MiniWeather => (64, 5),
        };
        BenchSpec {
            app,
            n,
            iterations,
            ranks: 1,
            parallel: false,
        }
    }

    /// Stable, order-fixed rendering — the cache-key material. Every field
    /// appears; two specs render equal iff they are equal.
    pub fn canonical(&self) -> String {
        format!(
            "app={} n={} iters={} ranks={} par={}",
            self.app.slug(),
            self.n,
            self.iterations,
            self.ranks,
            self.parallel
        )
    }

    /// One-line human description of the concrete config the spec maps to.
    pub fn config_summary(&self) -> String {
        match self.app {
            AppId::MiniBude => format!("{} poses x {} iters", self.n, self.iterations),
            AppId::CloverLeaf2D => format!("{0}x{0} x {1} iters", self.n, self.iterations),
            AppId::MiniWeather => format!("{}x{} cells", self.n, self.n / 2),
            AppId::MgCfd => format!("{0}x{0} fine grid, {1} V-cycles", self.n, self.iterations),
            AppId::Volna => format!("{0}x{0} cells x {1} iters", self.n, self.iterations),
            _ => format!("{0}^3 x {1} iters", self.n, self.iterations),
        }
    }

    /// Checks the spec is runnable; `Err` carries a client-facing message.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 || self.iterations == 0 {
            return Err("n and iterations must be positive".into());
        }
        if self.ranks == 0 {
            return Err("ranks must be positive".into());
        }
        if self.ranks > 1 {
            if !RANKED_APPS.contains(&self.app) {
                return Err(format!(
                    "app '{}' has no distributed driver (ranked apps: {})",
                    self.app.slug(),
                    RANKED_APPS.map(|a| a.slug()).join(", ")
                ));
            }
            if !self.n.is_multiple_of(self.ranks) {
                return Err(format!(
                    "n={} must divide evenly over ranks={}",
                    self.n, self.ranks
                ));
            }
        }
        Ok(())
    }

    /// In-process run (`ranks` must be 1 — ranked runs go through a
    /// universe and [`BenchSpec::run_ranked`]).
    pub fn run(&self) -> Result<BenchOutcome, String> {
        self.run_with_plan(None)
    }

    /// Like [`BenchSpec::run`] but threading a certified `dslcheck`
    /// optimization plan into the config of the plan-consuming apps
    /// ([`PLAN_APPS`]); `Err` for plan-oblivious apps when a plan is given.
    pub fn run_with_plan(&self, plan: Option<OptPlan>) -> Result<BenchOutcome, String> {
        self.validate()?;
        if self.ranks != 1 {
            return Err("BenchSpec::run is in-process; use run_ranked under a universe".into());
        }
        if plan.is_some() && !PLAN_APPS.contains(&self.app) {
            return Err(format!(
                "app '{}' does not consume optimization plans (plan apps: {})",
                self.app.slug(),
                PLAN_APPS.map(|a| a.slug()).join(", ")
            ));
        }
        let run = self.run_app(plan);
        Ok(BenchOutcome {
            app: run.app,
            validation: run.validation,
            points: run.points,
            iterations: run.iterations,
            ranks: 1,
            seconds: run.profile.total_seconds(),
            bytes: run.profile.total_bytes() as u64,
            gbs: run.effective_gbs(),
        })
    }

    fn mode(&self) -> ExecMode {
        if self.parallel {
            ExecMode::Rayon
        } else {
            ExecMode::Serial
        }
    }

    fn mode_u(&self) -> ExecModeU {
        if self.parallel {
            ExecModeU::Colored
        } else {
            ExecModeU::Serial
        }
    }

    fn run_app(&self, plan: Option<OptPlan>) -> AppRun {
        match self.app {
            AppId::MiniBude => minibude::MiniBude::run(minibude::Config {
                n_poses: self.n,
                iterations: self.iterations,
                parallel: self.parallel,
                ..minibude::Config::default()
            }),
            AppId::CloverLeaf2D => cloverleaf2d::Clover2::run(cloverleaf2d::Config {
                nx: self.n,
                ny: self.n,
                iterations: self.iterations,
                mode: self.mode(),
                plan,
                ..cloverleaf2d::Config::default()
            }),
            AppId::CloverLeaf3D => cloverleaf3d::Clover3::run(cloverleaf3d::Config {
                n: self.n,
                iterations: self.iterations,
                mode: self.mode(),
                ..cloverleaf3d::Config::default()
            }),
            AppId::Acoustic => acoustic::Acoustic::run(acoustic::Config {
                n: self.n,
                iterations: self.iterations,
                mode: self.mode(),
                plan,
                ..acoustic::Config::default()
            }),
            AppId::OpenSbliSa | AppId::OpenSbliSn => opensbli::OpenSbli::run(opensbli::Config {
                n: self.n,
                iterations: self.iterations,
                variant: if self.app == AppId::OpenSbliSa {
                    opensbli::Variant::StoreAll
                } else {
                    opensbli::Variant::StoreNone
                },
                mode: self.mode(),
                plan,
                ..opensbli::Config::default()
            }),
            AppId::MgCfd => mgcfd::MgCfd::run(mgcfd::Config {
                n: self.n,
                cycles: self.iterations,
                mode: self.mode_u(),
                ..mgcfd::Config::default()
            }),
            AppId::Volna => volna::Volna::run(volna::Config {
                n: self.n,
                iterations: self.iterations,
                mode: self.mode_u(),
                ..volna::Config::default()
            }),
            AppId::MiniWeather => miniweather::MiniWeather::run(miniweather::Config {
                nx: self.n,
                nz: (self.n / 2).max(8),
                mode: self.mode(),
                ..miniweather::Config::default()
            }),
        }
    }

    /// The per-rank body of a distributed run: call from inside a universe
    /// closure (`Universe::run*`). Only valid for [`RANKED_APPS`] specs
    /// that pass [`BenchSpec::validate`] with `ranks == comm.size()`.
    pub fn run_ranked(&self, comm: &mut Comm) -> RankOutcome {
        let (profile, gathered) = match self.app {
            AppId::Acoustic => acoustic::Acoustic::run_distributed(
                comm,
                acoustic::Config {
                    n: self.n,
                    iterations: self.iterations,
                    mode: self.mode(),
                    ..acoustic::Config::default()
                },
            ),
            AppId::CloverLeaf2D => cloverleaf2d::Clover2::run_distributed(
                comm,
                cloverleaf2d::Config {
                    nx: self.n,
                    ny: self.n,
                    iterations: self.iterations,
                    mode: self.mode(),
                    ..cloverleaf2d::Config::default()
                },
            ),
            AppId::MiniWeather => miniweather::MiniWeather::run_distributed(
                comm,
                miniweather::Config {
                    nx: self.n,
                    nz: (self.n / 2).max(8),
                    mode: self.mode(),
                    ..miniweather::Config::default()
                },
                self.iterations,
            ),
            other => panic!("app '{}' has no distributed driver", other.slug()),
        };
        RankOutcome {
            seconds: profile.total_seconds(),
            bytes: profile.total_bytes() as u64,
            // Mean of the gathered global field: a scale-free validation
            // quantity that is identical for any rank count by construction.
            validation: gathered.map(|f| {
                if f.is_empty() {
                    0.0
                } else {
                    f.iter().sum::<f64>() / f.len() as f64
                }
            }),
        }
    }

    /// Folds per-rank outcomes (in rank order) into one [`BenchOutcome`].
    pub fn merge_ranked(&self, ranks: &[RankOutcome]) -> BenchOutcome {
        assert!(!ranks.is_empty(), "merge_ranked needs at least one rank");
        let seconds = ranks.iter().map(|r| r.seconds).fold(0.0, f64::max);
        let bytes: u64 = ranks.iter().map(|r| r.bytes).sum();
        let validation = ranks
            .iter()
            .find_map(|r| r.validation)
            .expect("rank 0 carries the gathered validation field");
        let points = match self.app {
            AppId::CloverLeaf2D => self.n * self.n,
            AppId::MiniWeather => self.n * (self.n / 2).max(8),
            _ => self.n.pow(3),
        };
        BenchOutcome {
            app: self.app,
            validation,
            points,
            iterations: self.iterations,
            ranks: ranks.len(),
            seconds,
            bytes,
            gbs: if seconds > 0.0 {
                bytes as f64 / seconds / 1e9
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwb_shmpi::Universe;

    #[test]
    fn slugs_round_trip_and_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for app in AppId::ALL {
            assert!(seen.insert(app.slug()), "duplicate slug {}", app.slug());
            assert_eq!(AppId::from_slug(app.slug()), Some(app));
        }
        assert_eq!(AppId::from_slug("no-such-app"), None);
    }

    #[test]
    fn canonical_is_injective_over_field_changes() {
        let base = BenchSpec::small(AppId::Acoustic);
        let variants = [
            BenchSpec {
                app: AppId::CloverLeaf3D,
                ..base.clone()
            },
            BenchSpec {
                n: base.n + 1,
                ..base.clone()
            },
            BenchSpec {
                iterations: base.iterations + 1,
                ..base.clone()
            },
            BenchSpec {
                ranks: 2,
                ..base.clone()
            },
            BenchSpec {
                parallel: true,
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(v.canonical(), base.canonical(), "{v:?}");
        }
    }

    #[test]
    fn validate_rejects_unrunnable_specs() {
        let mut s = BenchSpec::small(AppId::Volna);
        s.ranks = 2;
        assert!(s.validate().unwrap_err().contains("no distributed driver"));
        let mut s = BenchSpec::small(AppId::Acoustic);
        s.n = 33;
        s.ranks = 2;
        assert!(s.validate().unwrap_err().contains("divide evenly"));
        s.n = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn every_app_runs_in_process_at_tiny_scale() {
        for app in AppId::ALL {
            let mut spec = BenchSpec::small(app);
            // Shrink below CI defaults so the full sweep stays fast.
            spec.n = match app {
                AppId::MiniBude => 16,
                AppId::CloverLeaf2D | AppId::MiniWeather => 16,
                AppId::MgCfd => 17,
                AppId::Volna => 12,
                _ => 12,
            };
            spec.iterations = 2;
            let out = spec.run().unwrap_or_else(|e| panic!("{app:?}: {e}"));
            assert_eq!(out.app, app);
            assert!(out.points > 0 && out.bytes > 0, "{app:?}: {out:?}");
            assert!(out.validation.is_finite(), "{app:?}");
        }
    }

    #[test]
    fn ranked_acoustic_matches_serial_validation() {
        let spec = BenchSpec {
            app: AppId::Acoustic,
            n: 16,
            iterations: 3,
            ranks: 2,
            parallel: false,
        };
        spec.validate().unwrap();
        let sp = spec.clone();
        let out = Universe::run(2, move |c| sp.run_ranked(c));
        let merged = spec.merge_ranked(&out.results);
        assert_eq!(merged.ranks, 2);
        assert_eq!(merged.points, 16usize.pow(3));
        // Same physics in process: the serial run's gathered-field mean is
        // its validation? Not directly comparable (apps define their own
        // quantity), but the distributed mean must be finite and nonzero.
        assert!(merged.validation.is_finite());
        assert!(merged.bytes > 0 && merged.seconds > 0.0);
    }

    #[test]
    fn ranked_miniweather_runs_under_a_universe() {
        let spec = BenchSpec {
            app: AppId::MiniWeather,
            n: 16,
            iterations: 2,
            ranks: 2,
            parallel: false,
        };
        spec.validate().unwrap();
        let sp = spec.clone();
        let out = Universe::run(2, move |c| sp.run_ranked(c));
        let merged = spec.merge_ranked(&out.results);
        assert_eq!(merged.ranks, 2);
        assert!(merged.validation.is_finite());
    }
}
