//! # bwb-apps — the benchmarked applications
//!
//! Real, runnable Rust implementations of the seven applications the paper
//! benchmarks (§3), written against the [`bwb_ops`] (structured) and
//! [`bwb_op2`] (unstructured) DSLs so that every parallel loop carries the
//! byte/FLOP accounting the figures need:
//!
//! | module | paper app | type | bound by |
//! |---|---|---|---|
//! | [`cloverleaf2d`] | CloverLeaf 2D | structured hydro | bandwidth |
//! | [`cloverleaf3d`] | CloverLeaf 3D | structured hydro | bandwidth |
//! | [`acoustic`] | Acoustic | 8th-order FD wave | bandwidth + cache |
//! | [`opensbli`] | OpenSBLI SA/SN | FD Navier–Stokes proxy | bandwidth / compute |
//! | [`mgcfd`] | MG-CFD | unstructured FV Euler + multigrid | latency/indirection |
//! | [`volna`] | Volna | unstructured FV shallow water | indirection |
//! | [`miniweather`] | miniWeather | structured atmosphere | bandwidth |
//! | [`minibude`] | miniBUDE | molecular docking | compute |
//!
//! Every module exposes a `Config` (with a CI-sized `Default` and a
//! `paper()` constructor at the paper's problem sizes), a `run` entry point
//! returning the app's [`AppRun`] (loop profile + physics validation
//! quantities), and tests asserting the physics: conservation, symmetry,
//! convergence, or reference values.

pub mod acoustic;
pub mod characterize;
pub mod cloverleaf2d;
pub mod cloverleaf3d;
pub mod jobspec;
pub mod mgcfd;
pub mod minibude;
pub mod miniweather;
pub mod opensbli;
pub mod volna;

use bwb_ops::Profile;
use serde::{Deserialize, Serialize};

/// Identifies one of the paper's applications (Figure 3–8 rows/columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AppId {
    MiniBude,
    CloverLeaf2D,
    CloverLeaf3D,
    Acoustic,
    OpenSbliSa,
    OpenSbliSn,
    MgCfd,
    Volna,
    MiniWeather,
}

impl AppId {
    pub const ALL: [AppId; 9] = [
        AppId::MiniBude,
        AppId::CloverLeaf2D,
        AppId::CloverLeaf3D,
        AppId::Acoustic,
        AppId::OpenSbliSa,
        AppId::OpenSbliSn,
        AppId::MgCfd,
        AppId::Volna,
        AppId::MiniWeather,
    ];

    /// The structured-mesh apps of Figure 3.
    pub const STRUCTURED: [AppId; 6] = [
        AppId::CloverLeaf2D,
        AppId::CloverLeaf3D,
        AppId::Acoustic,
        AppId::OpenSbliSa,
        AppId::OpenSbliSn,
        AppId::MiniWeather,
    ];

    /// The unstructured-mesh apps of Figure 4.
    pub const UNSTRUCTURED: [AppId; 2] = [AppId::MgCfd, AppId::Volna];

    pub fn label(self) -> &'static str {
        match self {
            AppId::MiniBude => "miniBUDE",
            AppId::CloverLeaf2D => "CloverLeaf 2D",
            AppId::CloverLeaf3D => "CloverLeaf 3D",
            AppId::Acoustic => "Acoustic",
            AppId::OpenSbliSa => "OpenSBLI SA",
            AppId::OpenSbliSn => "OpenSBLI SN",
            AppId::MgCfd => "MG-CFD",
            AppId::Volna => "Volna",
            AppId::MiniWeather => "miniWeather",
        }
    }

    pub fn is_structured(self) -> bool {
        AppId::STRUCTURED.contains(&self)
    }

    pub fn is_unstructured(self) -> bool {
        AppId::UNSTRUCTURED.contains(&self)
    }

    /// Bytes per floating-point value (paper §3 gives each app's precision).
    pub fn precision_bytes(self) -> usize {
        match self {
            AppId::MiniBude | AppId::Acoustic | AppId::Volna => 4,
            _ => 8,
        }
    }
}

/// Outcome of one application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    pub app: AppId,
    /// Per-loop byte/FLOP/time accounting from the DSL.
    pub profile: Profile,
    /// Main physics validation quantity (app-specific; see each module).
    pub validation: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Grid points / mesh elements of the primary set.
    pub points: usize,
}

impl AppRun {
    /// Effective bandwidth of the run, GB/s (Figure 8's metric on the
    /// machine the run executed on — the host here; the perfmodel rescales
    /// profiles to the paper's platforms).
    pub fn effective_gbs(&self) -> f64 {
        self.profile.effective_gbs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_sets_are_consistent() {
        for a in AppId::STRUCTURED {
            assert!(a.is_structured());
            assert!(!a.is_unstructured());
        }
        for a in AppId::UNSTRUCTURED {
            assert!(a.is_unstructured());
        }
        assert!(!AppId::MiniBude.is_structured());
        assert!(!AppId::MiniBude.is_unstructured());
    }

    #[test]
    fn precisions_match_paper_section3() {
        assert_eq!(AppId::MiniBude.precision_bytes(), 4);
        assert_eq!(AppId::CloverLeaf2D.precision_bytes(), 8);
        assert_eq!(AppId::Acoustic.precision_bytes(), 4);
        assert_eq!(AppId::OpenSbliSa.precision_bytes(), 8);
        assert_eq!(AppId::Volna.precision_bytes(), 4);
        assert_eq!(AppId::MiniWeather.precision_bytes(), 8);
    }

    #[test]
    fn labels_are_distinct() {
        let set: std::collections::HashSet<_> = AppId::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(set.len(), AppId::ALL.len());
    }
}
