//! OpenSBLI SA & SN — structured-mesh finite-difference Navier–Stokes
//! solver proxy (paper §3, app 4).
//!
//! OpenSBLI generates finite-difference solvers in two formulations the
//! paper contrasts:
//!
//! * **SA (Store All)** — every spatial derivative is computed once into a
//!   work array, then a combination kernel assembles the right-hand side:
//!   minimal recomputation, maximal data movement → bandwidth-bound;
//! * **SN (Store None)** — one fused kernel recomputes all derivatives on
//!   the fly: more FLOPs, far less data movement.
//!
//! We implement both formulations of the same governing system — a
//! five-field advection–diffusion system with per-field advection
//! velocities (the data-flow skeleton of the compressible Navier–Stokes
//! RHS) discretized with 4th-order central differences and SSP-RK3 time
//! stepping on a periodic box. The two variants execute arithmetically
//! identical updates, so the module's headline validation is **SA ≡ SN
//! bitwise**; accuracy is validated against the analytic decaying-advected
//! sine mode.
//!
//! Double precision; paper size 320³, 20 iterations.

use crate::{AppId, AppRun};
use bwb_ops::{
    fused3_planes, par_loop3_planes, recording_active, Dat3, ExecMode, FusedLoop3, OptPlan,
    Profile, Range3, RowIn3, RowOut3,
};

/// Number of solution fields (ρ, ρu, ρv, ρw, ρE analogue).
pub const NFIELDS: usize = 5;
/// Stencil radius of the 4th-order central differences.
pub const RADIUS: isize = 2;

/// 4th-order first derivative: (−s₂ + 8s₁ − 8s₋₁ + s₋₂)/12h.
#[inline]
fn d1(sm2: f64, sm1: f64, sp1: f64, sp2: f64, h: f64) -> f64 {
    (sm2 - 8.0 * sm1 + 8.0 * sp1 - sp2) / (12.0 * h)
}

/// 4th-order second derivative: (−s₂ + 16s₁ − 30s₀ + 16s₋₁ − s₋₂)/12h².
#[inline]
fn d2(sm2: f64, sm1: f64, s0: f64, sp1: f64, sp2: f64, h: f64) -> f64 {
    (-sm2 + 16.0 * sm1 - 30.0 * s0 + 16.0 * sp1 - sp2) / (12.0 * h * h)
}

/// Which formulation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    StoreAll,
    StoreNone,
}

#[derive(Debug, Clone)]
pub struct Config {
    pub n: usize,
    pub iterations: usize,
    pub variant: Variant,
    /// Diffusion coefficient.
    pub nu: f64,
    pub mode: ExecMode,
    /// Optimization plan from `dslcheck` dataflow analysis. `None` (or a
    /// plan certifying nothing) runs the baseline schedule; a plan enables
    /// exactly the transforms it certifies — here, fusing the Store-All
    /// derivative+combine group into one traversal.
    pub plan: Option<OptPlan>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 24,
            iterations: 5,
            variant: Variant::StoreAll,
            nu: 0.02,
            mode: ExecMode::Serial,
            plan: None,
        }
    }
}

impl Config {
    /// Paper testcase: 320³, 20 iterations.
    pub fn paper(variant: Variant) -> Self {
        Config {
            n: 320,
            iterations: 20,
            variant,
            nu: 0.02,
            mode: ExecMode::Rayon,
            plan: None,
        }
    }
}

/// Per-field advection velocity (x component; y/z are cyclic shifts).
const ADV: [f64; NFIELDS] = [1.0, 0.8, -0.6, 0.4, -0.2];

/// The 13 rows of the radius-2 star stencil of input field 0, captured once
/// per `(j,k)` row so the derivative loops are straight slice arithmetic.
struct StencilRows<'a> {
    c: &'a [f64],
    xm2: &'a [f64],
    xm1: &'a [f64],
    xp1: &'a [f64],
    xp2: &'a [f64],
    ym2: &'a [f64],
    ym1: &'a [f64],
    yp1: &'a [f64],
    yp2: &'a [f64],
    zm2: &'a [f64],
    zm1: &'a [f64],
    zp1: &'a [f64],
    zp2: &'a [f64],
}

impl<'a> StencilRows<'a> {
    #[inline]
    fn capture(s: &RowIn3<'a, f64>) -> Self {
        StencilRows {
            c: s.row(0),
            xm2: s.row_off(0, -2, 0, 0),
            xm1: s.row_off(0, -1, 0, 0),
            xp1: s.row_off(0, 1, 0, 0),
            xp2: s.row_off(0, 2, 0, 0),
            ym2: s.row_off(0, 0, -2, 0),
            ym1: s.row_off(0, 0, -1, 0),
            yp1: s.row_off(0, 0, 1, 0),
            yp2: s.row_off(0, 0, 2, 0),
            zm2: s.row_off(0, 0, 0, -2),
            zm1: s.row_off(0, 0, 0, -1),
            zp1: s.row_off(0, 0, 0, 1),
            zp2: s.row_off(0, 0, 0, 2),
        }
    }
}

/// Shared body of the Store-All derivative loop: input 0 is the source
/// field, outputs 0–5 its six derivative arrays. Shared verbatim between
/// the sequential driver and the fused executor, so bit-identity between
/// the two schedules is structural rather than re-proved per change.
fn sa_derivs_body(h: f64, out: &mut RowOut3<f64>, s: &RowIn3<f64>) {
    let st = StencilRows::capture(s);
    {
        let (o0, o1, o2) = out.rows3(0, 1, 2);
        for i in 0..o0.len() {
            o0[i] = d1(st.xm2[i], st.xm1[i], st.xp1[i], st.xp2[i], h);
            o1[i] = d1(st.ym2[i], st.ym1[i], st.yp1[i], st.yp2[i], h);
            o2[i] = d1(st.zm2[i], st.zm1[i], st.zp1[i], st.zp2[i], h);
        }
    }
    let (o3, o4, o5) = out.rows3(3, 4, 5);
    for i in 0..o3.len() {
        let c = st.c[i];
        o3[i] = d2(st.xm2[i], st.xm1[i], c, st.xp1[i], st.xp2[i], h);
        o4[i] = d2(st.ym2[i], st.ym1[i], c, st.yp1[i], st.yp2[i], h);
        o5[i] = d2(st.zm2[i], st.zm1[i], c, st.zp1[i], st.zp2[i], h);
    }
}

/// Shared body of the Store-All combination loop: inputs 0–5 are the six
/// derivative arrays of one field, output 0 that field's RHS.
fn sa_combine_body(ax: f64, ay: f64, az: f64, nu: f64, out: &mut RowOut3<f64>, w: &RowIn3<f64>) {
    let dx1 = w.row(0);
    let dy1 = w.row(1);
    let dz1 = w.row(2);
    let dx2 = w.row(3);
    let dy2 = w.row(4);
    let dz2 = w.row(5);
    let r = out.row(0);
    for i in 0..r.len() {
        let adv = ax * dx1[i] + ay * dy1[i] + az * dz1[i];
        let dif = dx2[i] + dy2[i] + dz2[i];
        r[i] = -adv + nu * dif;
    }
}

/// The recorded loop-name window of one Store-All RHS evaluation — five
/// derivative loops then five combine loops — that a plan must certify as
/// a fusion group for [`OpenSbli::rhs_store_all`] to take the fused path.
const FUSED_RHS_NAMES: [&str; 2 * NFIELDS] = [
    "sbli_sa_derivs",
    "sbli_sa_derivs",
    "sbli_sa_derivs",
    "sbli_sa_derivs",
    "sbli_sa_derivs",
    "sbli_sa_combine",
    "sbli_sa_combine",
    "sbli_sa_combine",
    "sbli_sa_combine",
    "sbli_sa_combine",
];

pub struct OpenSbli {
    cfg: Config,
    h: f64,
    dt: f64,
    q: Vec<Dat3<f64>>,
    q1: Vec<Dat3<f64>>,
    q2: Vec<Dat3<f64>>,
    rhs: Vec<Dat3<f64>>,
    /// SA work arrays: 3 first-derivatives + 3 second-derivatives per field.
    wk: Vec<Dat3<f64>>,
}

impl OpenSbli {
    pub fn new(cfg: Config) -> Self {
        let n = cfg.n;
        let h = 1.0 / n as f64;
        // Advective + diffusive CFL.
        let umax = 1.0;
        let dt = 0.3 * (h / umax).min(h * h / (6.0 * cfg.nu));
        let mk = |tag: &str, count: usize| -> Vec<Dat3<f64>> {
            (0..count)
                .map(|f| Dat3::new(&format!("{tag}{f}"), n, n, n, RADIUS as usize))
                .collect()
        };
        let mut q = mk("q", NFIELDS);
        let k = 2.0 * std::f64::consts::PI;
        for (f, qf) in q.iter_mut().enumerate() {
            let phase = f as f64 * 0.7;
            qf.init_with(|i, j, kz| {
                let x = (i as f64 + 0.5) * h;
                let y = (j as f64 + 0.5) * h;
                let z = (kz as f64 + 0.5) * h;
                (k * (x + y + z) + phase).sin()
            });
        }
        OpenSbli {
            h,
            dt,
            q,
            q1: mk("q1_", NFIELDS),
            q2: mk("q2_", NFIELDS),
            rhs: mk("rhs", NFIELDS),
            wk: mk("wk", 6 * NFIELDS),
            cfg,
        }
    }

    pub fn dt(&self) -> f64 {
        self.dt
    }

    fn periodic_halos(fields: &mut [Dat3<f64>], n: isize) {
        let r = RADIUS;
        for f in fields {
            // x
            for k in 0..n {
                for j in 0..n {
                    for hh in 1..=r {
                        f.set(-hh, j, k, f.get(n - hh, j, k));
                        f.set(n - 1 + hh, j, k, f.get(hh - 1, j, k));
                    }
                }
            }
            // y (x-extended)
            for k in 0..n {
                for i in -r..n + r {
                    for hh in 1..=r {
                        f.set(i, -hh, k, f.get(i, n - hh, k));
                        f.set(i, n - 1 + hh, k, f.get(i, hh - 1, k));
                    }
                }
            }
            // z (xy-extended)
            for j in -r..n + r {
                for i in -r..n + r {
                    for hh in 1..=r {
                        f.set(i, j, -hh, f.get(i, j, n - hh));
                        f.set(i, j, n - 1 + hh, f.get(i, j, hh - 1));
                    }
                }
            }
        }
    }

    /// Store-All RHS: stage 1 stores the 6 derivative arrays per field,
    /// stage 2 combines them.
    fn rhs_store_all(&mut self, profile: &mut Profile, src_sel: usize) {
        let n = self.cfg.n;
        let h = self.h;
        let nu = self.cfg.nu;
        let range = Range3::interior(n, n, n);
        {
            let src = match src_sel {
                0 => &mut self.q,
                1 => &mut self.q1,
                _ => &mut self.q2,
            };
            Self::periodic_halos(src, n as isize);
        }
        let src: &Vec<Dat3<f64>> = match src_sel {
            0 => &self.q,
            1 => &self.q1,
            _ => &self.q2,
        };
        let fuse = !recording_active()
            && self
                .cfg
                .plan
                .as_ref()
                .is_some_and(|p| p.certifies_fusion(&FUSED_RHS_NAMES));
        if fuse {
            // Plan-guided path: run all ten loops in one traversal. The
            // store is `[wk(30), rhs(5) | src(5)]`; each combine member
            // reads the wk slots its derivative member wrote, a radius-0
            // crossing the certificate proved safe to interleave per row.
            let plan = self.cfg.plan.as_ref().expect("fuse implies plan");
            let mut loops: Vec<FusedLoop3<f64>> = Vec::with_capacity(2 * NFIELDS);
            for f in 0..NFIELDS {
                let outs: Vec<usize> = (6 * f..6 * f + 6).collect();
                loops.push(FusedLoop3::new(
                    "sbli_sa_derivs",
                    &outs,
                    &[7 * NFIELDS + f],
                    60.0,
                    move |_j, _k, out, s| sa_derivs_body(h, out, s),
                ));
            }
            for f in 0..NFIELDS {
                let (ax, ay, az) = (ADV[f], ADV[(f + 1) % NFIELDS], ADV[(f + 2) % NFIELDS]);
                let ins: Vec<usize> = (6 * f..6 * f + 6).collect();
                loops.push(FusedLoop3::new(
                    "sbli_sa_combine",
                    &[6 * NFIELDS + f],
                    &ins,
                    10.0,
                    move |_j, _k, out, w| sa_combine_body(ax, ay, az, nu, out, w),
                ));
            }
            let mut store_mut: Vec<&mut Dat3<f64>> =
                self.wk.iter_mut().chain(self.rhs.iter_mut()).collect();
            let store_ro: Vec<&Dat3<f64>> = src.iter().collect();
            fused3_planes(
                profile,
                self.cfg.mode,
                range,
                &mut store_mut,
                &store_ro,
                &loops,
                plan,
            )
            .expect("certified fusion rejected at runtime");
            return;
        }
        // Stage 1: derivatives into work arrays (one loop per field,
        // writing all 6 derivative arrays of that field).
        for (f, srcf) in src.iter().enumerate() {
            let mut outs: Vec<&mut Dat3<f64>> = self.wk.iter_mut().skip(6 * f).take(6).collect();
            par_loop3_planes(
                profile,
                "sbli_sa_derivs",
                self.cfg.mode,
                range,
                &mut outs,
                &[srcf],
                60.0,
                move |_j, _k, out, s| sa_derivs_body(h, out, s),
            );
        }
        // Stage 2: combine into the RHS.
        for f in 0..NFIELDS {
            let (ax, ay, az) = (ADV[f], ADV[(f + 1) % NFIELDS], ADV[(f + 2) % NFIELDS]);
            let ins: Vec<&Dat3<f64>> = self.wk[6 * f..6 * f + 6].iter().collect();
            par_loop3_planes(
                profile,
                "sbli_sa_combine",
                self.cfg.mode,
                range,
                &mut [&mut self.rhs[f]],
                &ins,
                10.0,
                move |_j, _k, out, w| sa_combine_body(ax, ay, az, nu, out, w),
            );
        }
    }

    /// Store-None RHS: one fused kernel per field recomputing everything.
    fn rhs_store_none(&mut self, profile: &mut Profile, src_sel: usize) {
        let n = self.cfg.n;
        let h = self.h;
        let nu = self.cfg.nu;
        let range = Range3::interior(n, n, n);
        {
            let src = match src_sel {
                0 => &mut self.q,
                1 => &mut self.q1,
                _ => &mut self.q2,
            };
            Self::periodic_halos(src, n as isize);
        }
        let src: &Vec<Dat3<f64>> = match src_sel {
            0 => &self.q,
            1 => &self.q1,
            _ => &self.q2,
        };
        for f in 0..NFIELDS {
            let (ax, ay, az) = (ADV[f], ADV[(f + 1) % NFIELDS], ADV[(f + 2) % NFIELDS]);
            par_loop3_planes(
                profile,
                "sbli_sn_fused",
                self.cfg.mode,
                range,
                &mut [&mut self.rhs[f]],
                &[&src[f]],
                90.0,
                move |_j, _k, out, s| {
                    let st = StencilRows::capture(s);
                    let r = out.row(0);
                    // Exactly the SA arithmetic, in the same order:
                    for (i, ri) in r.iter_mut().enumerate() {
                        let dx1 = d1(st.xm2[i], st.xm1[i], st.xp1[i], st.xp2[i], h);
                        let dy1 = d1(st.ym2[i], st.ym1[i], st.yp1[i], st.yp2[i], h);
                        let dz1 = d1(st.zm2[i], st.zm1[i], st.zp1[i], st.zp2[i], h);
                        let c = st.c[i];
                        let dx2 = d2(st.xm2[i], st.xm1[i], c, st.xp1[i], st.xp2[i], h);
                        let dy2 = d2(st.ym2[i], st.ym1[i], c, st.yp1[i], st.yp2[i], h);
                        let dz2 = d2(st.zm2[i], st.zm1[i], c, st.zp1[i], st.zp2[i], h);
                        let adv = ax * dx1 + ay * dy1 + az * dz1;
                        let dif = dx2 + dy2 + dz2;
                        *ri = -adv + nu * dif;
                    }
                },
            );
        }
    }

    fn rhs(&mut self, profile: &mut Profile, src_sel: usize) {
        match self.cfg.variant {
            Variant::StoreAll => self.rhs_store_all(profile, src_sel),
            Variant::StoreNone => self.rhs_store_none(profile, src_sel),
        }
    }

    /// One SSP-RK3 step.
    pub fn step(&mut self, profile: &mut Profile) {
        let n = self.cfg.n;
        let dt = self.dt;
        let range = Range3::interior(n, n, n);
        let mode = self.cfg.mode;

        // Stage 1: q1 = q + dt·L(q)
        self.rhs(profile, 0);
        for f in 0..NFIELDS {
            par_loop3_planes(
                profile,
                "sbli_rk",
                mode,
                range,
                &mut [&mut self.q1[f]],
                &[&self.q[f], &self.rhs[f]],
                2.0,
                move |_j, _k, out, s| {
                    let q = s.row(0);
                    let l = s.row(1);
                    let r = out.row(0);
                    for i in 0..r.len() {
                        r[i] = q[i] + dt * l[i];
                    }
                },
            );
        }
        // Stage 2: q2 = 3/4 q + 1/4 (q1 + dt·L(q1))
        self.rhs(profile, 1);
        for f in 0..NFIELDS {
            par_loop3_planes(
                profile,
                "sbli_rk",
                mode,
                range,
                &mut [&mut self.q2[f]],
                &[&self.q[f], &self.q1[f], &self.rhs[f]],
                5.0,
                move |_j, _k, out, s| {
                    let q = s.row(0);
                    let q1 = s.row(1);
                    let l = s.row(2);
                    let r = out.row(0);
                    for i in 0..r.len() {
                        r[i] = 0.75 * q[i] + 0.25 * (q1[i] + dt * l[i]);
                    }
                },
            );
        }
        // Stage 3: q = 1/3 q + 2/3 (q2 + dt·L(q2))
        self.rhs(profile, 2);
        for f in 0..NFIELDS {
            let qf = &mut self.q[f];
            par_loop3_planes(
                profile,
                "sbli_rk",
                mode,
                range,
                &mut [qf],
                &[&self.q2[f], &self.rhs[f]],
                5.0,
                move |_j, _k, out, s| {
                    let q2 = s.row(0);
                    let l = s.row(1);
                    let r = out.row(0);
                    for i in 0..r.len() {
                        r[i] = r[i] / 3.0 + 2.0 / 3.0 * (q2[i] + dt * l[i]);
                    }
                },
            );
        }
    }

    /// L∞ error of field 0 against the analytic decaying advected mode.
    pub fn field0_error(&self, steps: usize) -> f64 {
        let n = self.cfg.n;
        let h = self.h;
        let k = 2.0 * std::f64::consts::PI;
        let t = steps as f64 * self.dt;
        // Mode sin(k(x+y+z)): advection shifts phase by k(ax+ay+az)t,
        // diffusion damps by exp(−3k²νt) (∇² of the plane wave in the
        // (1,1,1) direction has magnitude 3k²).
        let (ax, ay, az) = (ADV[0], ADV[1], ADV[2]);
        let shift = (ax + ay + az) * t;
        let damp = (-3.0 * k * k * self.cfg.nu * t).exp();
        let mut err = 0.0f64;
        for kz in 0..n as isize {
            for j in 0..n as isize {
                for i in 0..n as isize {
                    let x = (i as f64 + 0.5) * h;
                    let y = (j as f64 + 0.5) * h;
                    let z = (kz as f64 + 0.5) * h;
                    let exact = (k * (x + y + z - shift)).sin() * damp;
                    err = err.max((self.q[0].get(i, j, kz) - exact).abs());
                }
            }
        }
        err
    }

    /// Checksum over all fields (bitwise-comparable between variants).
    pub fn checksum(&self) -> f64 {
        let n = self.cfg.n as isize;
        let mut s = 0.0;
        for qf in &self.q {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        s += qf.get(i, j, k);
                    }
                }
            }
        }
        s
    }

    pub fn run(cfg: Config) -> AppRun {
        let app = match cfg.variant {
            Variant::StoreAll => AppId::OpenSbliSa,
            Variant::StoreNone => AppId::OpenSbliSn,
        };
        let mut profile = Profile::new();
        let points = cfg.n.pow(3);
        let iterations = cfg.iterations;
        let mut sim = OpenSbli::new(cfg);
        for it in 0..iterations {
            let mut aspan = bwb_trace::span(bwb_trace::Cat::App, "rk_step");
            aspan.set_args(it as f64, 0.0, 0.0);
            sim.step(&mut profile);
        }
        let validation = sim.field0_error(iterations);
        AppRun {
            app,
            profile,
            validation,
            iterations,
            points,
        }
    }
}

/// Declared loop chain for `dslcheck::speccheck`: one SSP-RK3 step over a
/// parametric `n³` interior. Slots 0‑4 are `q`, 5‑9 `q1`, 10‑14 `q2`,
/// 15‑19 `rhs`, 20‑49 the 30 derivative work arrays (Store‑All only —
/// Store‑None never touches them, and unused slots are harmless).
/// `periodic_halos` is a hand-rolled fill that records nothing, so the
/// chain carries no exchanges; the declared chain always takes the
/// unfused path, matching the `!recording_active()` guard in
/// [`OpenSbli::rhs_store_all`].
pub fn chain_spec(store_all: bool) -> bwb_ops::ChainSpec {
    use bwb_ops::{ChainSpec, DatDecl, Expr, Step};
    const NAMES: [&str; 50] = [
        "q0", "q1", "q2", "q3", "q4", "q1_0", "q1_1", "q1_2", "q1_3", "q1_4", "q2_0", "q2_1",
        "q2_2", "q2_3", "q2_4", "rhs0", "rhs1", "rhs2", "rhs3", "rhs4", "wk0", "wk1", "wk2", "wk3",
        "wk4", "wk5", "wk6", "wk7", "wk8", "wk9", "wk10", "wk11", "wk12", "wk13", "wk14", "wk15",
        "wk16", "wk17", "wk18", "wk19", "wk20", "wk21", "wk22", "wk23", "wk24", "wk25", "wk26",
        "wk27", "wk28", "wk29",
    ];
    let c = Expr::c;
    let p = Expr::p;
    let dats = NAMES
        .iter()
        .map(|name| DatDecl {
            name,
            halo: RADIUS,
            extent: [p("n"), p("n"), p("n")],
            elem_bytes: 8,
        })
        .collect();
    let interior = || [c(0), p("n"), c(0), p("n"), c(0), p("n")];
    let lp = |spec: &'static str, outs: Vec<usize>, ins: Vec<usize>| Step::Loop {
        spec,
        dims: 3,
        range: interior(),
        outs,
        ins,
    };
    let mut body = Vec::new();
    let rhs = |body: &mut Vec<Step>, base: usize| {
        if store_all {
            for f in 0..NFIELDS {
                body.push(lp(
                    "sbli_sa_derivs",
                    (20 + 6 * f..20 + 6 * f + 6).collect(),
                    vec![base + f],
                ));
            }
            for f in 0..NFIELDS {
                body.push(lp(
                    "sbli_sa_combine",
                    vec![15 + f],
                    (20 + 6 * f..20 + 6 * f + 6).collect(),
                ));
            }
        } else {
            for f in 0..NFIELDS {
                body.push(lp("sbli_sn_fused", vec![15 + f], vec![base + f]));
            }
        }
    };
    rhs(&mut body, 0);
    for f in 0..NFIELDS {
        body.push(lp("sbli_rk", vec![5 + f], vec![f, 15 + f]));
    }
    rhs(&mut body, 5);
    for f in 0..NFIELDS {
        body.push(lp("sbli_rk", vec![10 + f], vec![f, 5 + f, 15 + f]));
    }
    rhs(&mut body, 10);
    for f in 0..NFIELDS {
        body.push(lp("sbli_rk", vec![f], vec![10 + f, 15 + f]));
    }
    ChainSpec {
        app: if store_all {
            "opensbli_sa"
        } else {
            "opensbli_sn"
        },
        params: vec!["n"],
        dats,
        prologue: Vec::new(),
        body,
        epilogue: Vec::new(),
    }
}

/// Declared access contracts of every DSL loop in this app (both
/// variants), for `bwb-dslcheck`. (`periodic_halos` is a hand-rolled fill,
/// not a `par_loop`, so it carries no contract.)
///
/// `sbli_rk` runs at two arities. The `(1 out, 2 ins)` arity covers both
/// RK stage 1 (`q1 = q + dt·L`, a pure overwrite) and stage 3
/// (`q = q/3 + …`, which reads the output back through its row slice), so
/// its output is declared `ReadWrite` — the mode that admits both.
pub fn loop_specs() -> Vec<bwb_ops::LoopSpec> {
    use bwb_ops::{ArgSpec as A, LoopSpec as L, Stencil as S};
    // 4th-order central differences: the radius-2 star.
    let star2 = || S::plus3(RADIUS);
    vec![
        L::new(
            "sbli_sa_derivs",
            vec![
                A::write("wk_dx1"),
                A::write("wk_dy1"),
                A::write("wk_dz1"),
                A::write("wk_dx2"),
                A::write("wk_dy2"),
                A::write("wk_dz2"),
            ],
            vec![A::read("q", star2())],
        ),
        L::new(
            "sbli_sa_combine",
            vec![A::write("rhs")],
            vec![
                A::read("wk_dx1", S::point()),
                A::read("wk_dy1", S::point()),
                A::read("wk_dz1", S::point()),
                A::read("wk_dx2", S::point()),
                A::read("wk_dy2", S::point()),
                A::read("wk_dz2", S::point()),
            ],
        ),
        L::new(
            "sbli_sn_fused",
            vec![A::write("rhs")],
            vec![A::read("q", star2())],
        ),
        // RK stages 1 and 3 (see above: ReadWrite covers both).
        L::new(
            "sbli_rk",
            vec![A::read_write("q_next")],
            vec![A::read("q_src", S::point()), A::read("rhs", S::point())],
        ),
        // RK stage 2: q2 = 3/4 q + 1/4 (q1 + dt·L(q1)).
        L::new(
            "sbli_rk",
            vec![A::write("q2")],
            vec![
                A::read("q", S::point()),
                A::read("q1", S::point()),
                A::read("rhs", S::point()),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_all_equals_store_none_bitwise() {
        let base = Config {
            n: 16,
            iterations: 4,
            ..Config::default()
        };
        let mut sa = OpenSbli::new(Config {
            variant: Variant::StoreAll,
            ..base.clone()
        });
        let mut sn = OpenSbli::new(Config {
            variant: Variant::StoreNone,
            ..base
        });
        let mut p = Profile::new();
        for _ in 0..4 {
            sa.step(&mut p);
            sn.step(&mut p);
        }
        let (a, b) = (sa.checksum(), sn.checksum());
        assert_eq!(a.to_bits(), b.to_bits(), "SA {a} vs SN {b}");
    }

    #[test]
    fn solution_matches_analytic_mode() {
        let run = OpenSbli::run(Config {
            n: 24,
            iterations: 10,
            ..Config::default()
        });
        assert!(run.validation < 2e-3, "L∞ error {}", run.validation);
    }

    #[test]
    fn error_shrinks_with_resolution() {
        // Compare L∞ error at matched *physical* time on two grids.
        let err_at = |n: usize| {
            let cfg = Config {
                n,
                iterations: 0,
                ..Config::default()
            };
            let mut sim = OpenSbli::new(cfg);
            let t_target = 0.02;
            let steps = (t_target / sim.dt()).round() as usize;
            let mut p = Profile::new();
            for _ in 0..steps {
                sim.step(&mut p);
            }
            sim.field0_error(steps)
        };
        let e1 = err_at(12);
        let e2 = err_at(24);
        assert!(e2 < e1 / 4.0, "4th-order-ish convergence: {e1} vs {e2}");
    }

    #[test]
    fn sa_moves_more_bytes_sn_more_flops() {
        let base = Config {
            n: 16,
            iterations: 3,
            ..Config::default()
        };
        let sa = OpenSbli::run(Config {
            variant: Variant::StoreAll,
            ..base.clone()
        });
        let sn = OpenSbli::run(Config {
            variant: Variant::StoreNone,
            ..base
        });
        assert!(
            sa.profile.total_bytes() > 2 * sn.profile.total_bytes(),
            "SA bytes {} vs SN bytes {}",
            sa.profile.total_bytes(),
            sn.profile.total_bytes()
        );
        assert!(
            sn.profile.intensity() > 2.0 * sa.profile.intensity(),
            "SN intensity {} vs SA {}",
            sn.profile.intensity(),
            sa.profile.intensity()
        );
    }

    #[test]
    fn serial_equals_rayon() {
        let base = Config {
            n: 12,
            iterations: 3,
            ..Config::default()
        };
        let a = OpenSbli::run(Config {
            mode: ExecMode::Serial,
            ..base.clone()
        });
        let b = OpenSbli::run(Config {
            mode: ExecMode::Rayon,
            ..base
        });
        assert_eq!(a.validation, b.validation);
    }

    #[test]
    fn kernel_names_reflect_variant() {
        let sa = OpenSbli::run(Config {
            n: 8,
            iterations: 1,
            variant: Variant::StoreAll,
            ..Config::default()
        });
        assert!(sa.profile.get("sbli_sa_derivs").is_some());
        assert!(sa.profile.get("sbli_sn_fused").is_none());
        let sn = OpenSbli::run(Config {
            n: 8,
            iterations: 1,
            variant: Variant::StoreNone,
            ..Config::default()
        });
        assert!(sn.profile.get("sbli_sn_fused").is_some());
    }
}
