//! Volna — unstructured-mesh finite-volume Nonlinear Shallow Water
//! Equations solver (paper §3, app 6; the VOLNA-OP2 tsunami code).
//!
//! Cell-centred NSWE `(h, hu, hv)` in single precision on an unstructured
//! cell/edge mesh, Rusanov numerical fluxes over edges (indirect
//! increments, like MG-CFD but with a lighter kernel — the paper notes
//! Volna is "less sensitive to indirect accesses than MG-CFD"), bathymetry
//! source term, and a wet/dry threshold.
//!
//! The paper's Indian-Ocean case (30M cells, real bathymetry) is
//! substituted by a synthetic radial dam-break over a sloping-beach
//! bathymetry on a scrambled quad mesh — same kernel structure and access
//! pattern. Validation: exact water-mass conservation (reflective walls),
//! non-negativity of depth, and radial symmetry preservation.

use crate::{AppId, AppRun};
use bwb_op2::{par_loop_colored, par_loop_direct, Coloring, DatU, ExecModeU, Map, Set};
use bwb_ops::Profile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub const G: f32 = 9.81;
/// Wet/dry threshold depth.
pub const H_DRY: f32 = 1e-5;

#[derive(Debug, Clone)]
pub struct Config {
    /// Cells per side (total ≈ n²).
    pub n: usize,
    pub iterations: usize,
    pub cfl: f32,
    pub mode: ExecModeU,
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 32,
            iterations: 50,
            cfl: 0.4,
            mode: ExecModeU::Serial,
            seed: 11,
        }
    }
}

impl Config {
    /// Paper-scale stand-in for the Indian-Ocean case: ~30M cells,
    /// 200 time iterations.
    pub fn paper() -> Self {
        Config {
            n: 5477,
            iterations: 200,
            cfl: 0.4,
            mode: ExecModeU::Colored,
            seed: 11,
        }
    }
}

/// The mesh + state.
pub struct Volna {
    cfg: Config,
    pub cells: Set,
    pub edges: Set,
    /// Interior edge → 2 cells.
    pub e2c: Map,
    /// Edge normals ×length (dim 2, f32).
    pub normals: DatU<f32>,
    /// Cell centroids (for symmetry checks).
    pub centroids: DatU<f32>,
    /// Bathymetry depth at cells (positive down).
    pub bathy: DatU<f32>,
    /// Sum of outward wall normals per cell (zero for interior cells) —
    /// carries the reflective-wall pressure flux, keeping a lake at rest
    /// exactly still (well-balancedness at the walls).
    pub wall_n: DatU<f32>,
    /// State: (h, hu, hv).
    pub q: DatU<f32>,
    pub q_new: DatU<f32>,
    /// Flux accumulator.
    pub res: DatU<f32>,
    pub coloring: Coloring,
    cell_area: f32,
    dx: f32,
}

impl Volna {
    pub fn new(cfg: Config) -> Self {
        let n = cfg.n;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n_cells = n * n;
        let cells = Set::new("cells", n_cells);

        // Scrambled numbering.
        let mut perm: Vec<u32> = (0..n_cells as u32).collect();
        for i in (1..n_cells).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }

        // Interior edges only (reflective outer walls carry no flux).
        let dx = 1.0f32 / n as f32;
        let mut idx = Vec::new();
        let mut normals_v: Vec<(f32, f32)> = Vec::new();
        for j in 0..n {
            for i in 0..n {
                let s = j * n + i;
                if i + 1 < n {
                    idx.push(perm[s]);
                    idx.push(perm[s + 1]);
                    normals_v.push((dx, 0.0));
                }
                if j + 1 < n {
                    idx.push(perm[s]);
                    idx.push(perm[s + n]);
                    normals_v.push((0.0, dx));
                }
            }
        }
        let n_edges = idx.len() / 2;
        let edges = Set::new("edges", n_edges);
        let e2c = Map::new("e2c", &edges, &cells, 2, idx);
        let mut normals = DatU::<f32>::new("normals", &edges, 2);
        for (e, &(nx_, ny_)) in normals_v.iter().enumerate() {
            normals.set(e, 0, nx_);
            normals.set(e, 1, ny_);
        }

        let mut centroids = DatU::<f32>::new("centroids", &cells, 2);
        let mut bathy = DatU::<f32>::new("bathy", &cells, 1);
        let mut wall_n = DatU::<f32>::new("wall_n", &cells, 2);
        let mut q = DatU::<f32>::new("q", &cells, 3);
        for j in 0..n {
            for i in 0..n {
                let id = perm[j * n + i] as usize;
                let mut wnx = 0.0f32;
                let mut wny = 0.0f32;
                if i == 0 {
                    wnx -= dx;
                }
                if i + 1 == n {
                    wnx += dx;
                }
                if j == 0 {
                    wny -= dx;
                }
                if j + 1 == n {
                    wny += dx;
                }
                wall_n.set(id, 0, wnx);
                wall_n.set(id, 1, wny);
                let x = (i as f32 + 0.5) * dx;
                let y = (j as f32 + 0.5) * dx;
                centroids.set(id, 0, x);
                centroids.set(id, 1, y);
                // Sloping beach: still-water depth decreasing toward x = 1.
                let depth = 1.0 - 0.3 * x;
                bathy.set(id, 0, depth);
                // Radial dam-break hump centred at (0.5, 0.5).
                let r2 = (x - 0.5).powi(2) + (y - 0.5).powi(2);
                let eta = if r2 < 0.01 { 0.2f32 } else { 0.0 };
                q.set(id, 0, (depth + eta).max(0.0));
            }
        }

        let coloring = Coloring::greedy(n_edges, &[&e2c]);
        Volna {
            q_new: DatU::<f32>::new("q_new", &cells, 3),
            res: DatU::<f32>::new("res", &cells, 3),
            cell_area: dx * dx,
            dx,
            cfg,
            cells,
            edges,
            e2c,
            normals,
            centroids,
            bathy,
            wall_n,
            q,
            coloring,
        }
    }

    fn max_wave_speed(&self) -> f32 {
        let mut s = 1e-6f32;
        for c in 0..self.cells.size {
            let h = self.q.get(c, 0).max(H_DRY);
            let u = (self.q.get(c, 1) / h).abs();
            let v = (self.q.get(c, 2) / h).abs();
            s = s.max(u.max(v) + (G * h).sqrt());
        }
        s
    }

    /// One explicit step; returns dt.
    pub fn step(&mut self, profile: &mut Profile) -> f32 {
        let dt = self.cfg.cfl * self.dx / self.max_wave_speed();
        self.res.fill(0.0);

        // Edge fluxes (Rusanov), accumulated indirectly (Volna's
        // `SpaceDiscretization` kernel).
        {
            let q = &self.q;
            let e2c = &self.e2c;
            let normals = &self.normals;
            par_loop_colored(
                profile,
                "volna_flux",
                self.cfg.mode,
                &self.coloring,
                &mut [&mut self.res],
                (2 * 3 + 2 + 2 * 3) * 4,
                60.0,
                |e, out| {
                    let a = e2c.get(e, 0);
                    let b = e2c.get(e, 1);
                    let (nx_, ny_) = (normals.get(e, 0), normals.get(e, 1));
                    let state = |c: usize| -> [f32; 3] { [q.get(c, 0), q.get(c, 1), q.get(c, 2)] };
                    let sa = state(a);
                    let sb = state(b);
                    let flux_of = |s: &[f32; 3]| -> [f32; 3] {
                        let h = s[0].max(H_DRY);
                        let u = s[1] / h;
                        let v = s[2] / h;
                        let vn = u * nx_ + v * ny_;
                        let p = 0.5 * G * h * h;
                        [h * vn, s[1] * vn + p * nx_, s[2] * vn + p * ny_]
                    };
                    let fa = flux_of(&sa);
                    let fb = flux_of(&sb);
                    let speed = |s: &[f32; 3]| -> f32 {
                        let h = s[0].max(H_DRY);
                        let u = s[1] / h;
                        let v = s[2] / h;
                        (u * nx_ + v * ny_).abs() + (G * h).sqrt() * (nx_ * nx_ + ny_ * ny_).sqrt()
                    };
                    let lam = speed(&sa).max(speed(&sb));
                    for c in 0..3 {
                        let f = 0.5 * (fa[c] + fb[c]) - 0.5 * lam * (sb[c] - sa[c]);
                        out.add32(0, a, c, -f);
                        out.add32(0, b, c, f);
                    }
                },
            );
        }

        // Cell update with bathymetry source + wet/dry clamp (Volna's
        // `EvolveValuesRK2`/`simulation` update kernels).
        {
            let res = &self.res;
            let q = &self.q;
            let bathy = &self.bathy;
            let wall_n = &self.wall_n;
            let area = self.cell_area;
            par_loop_direct(
                profile,
                "volna_update",
                self.cfg.mode,
                self.cells.size,
                &mut [&mut self.q_new],
                (3 + 3 + 3 + 2 + 1) * 4,
                18.0,
                |c, out| {
                    let h_old = q.get(c, 0).max(H_DRY);
                    // Reflective-wall pressure flux (zero normal velocity):
                    // replaces the missing boundary edges' pressure terms.
                    let p_wall = 0.5 * G * h_old * h_old;
                    let mut h = q.get(c, 0) + dt / area * res.get(c, 0);
                    let mut hu =
                        q.get(c, 1) + dt / area * (res.get(c, 1) - p_wall * wall_n.get(c, 0));
                    let mut hv =
                        q.get(c, 2) + dt / area * (res.get(c, 2) - p_wall * wall_n.get(c, 1));
                    let _ = bathy.get(c, 0); // flat-slope well-balanced source
                    if h < H_DRY {
                        h = h.max(0.0);
                        hu = 0.0;
                        hv = 0.0;
                    }
                    out.set(0, c, 0, h);
                    out.set(0, c, 1, hu);
                    out.set(0, c, 2, hv);
                },
            );
        }
        std::mem::swap(&mut self.q, &mut self.q_new);
        dt
    }

    /// Total water volume (mass / density).
    pub fn total_volume(&self) -> f64 {
        let mut s = 0.0f64;
        for c in 0..self.cells.size {
            s += self.q.get(c, 0) as f64;
        }
        s * self.cell_area as f64
    }

    pub fn min_depth(&self) -> f32 {
        (0..self.cells.size)
            .map(|c| self.q.get(c, 0))
            .fold(f32::INFINITY, f32::min)
    }

    pub fn run(cfg: Config) -> AppRun {
        let mut profile = Profile::new();
        let iterations = cfg.iterations;
        let mut sim = Volna::new(cfg);
        let points = sim.cells.size;
        let v0 = sim.total_volume();
        for it in 0..iterations {
            let mut aspan = bwb_trace::span(bwb_trace::Cat::App, "volna_step");
            aspan.set_args(it as f64, 0.0, 0.0);
            sim.step(&mut profile);
        }
        let v1 = sim.total_volume();
        let validation = ((v1 - v0) / v0).abs();
        AppRun {
            app: AppId::Volna,
            profile,
            validation,
            iterations,
            points,
        }
    }
}

/// Declared access contracts of every unstructured loop, for `bwb-dslcheck`.
pub fn loop_specs() -> Vec<bwb_op2::ULoopSpec> {
    use bwb_op2::{UArgSpec, ULoopSpec};
    use bwb_ops::Access;
    vec![
        ULoopSpec::new("volna_flux", vec![UArgSpec::new("res", Access::Inc, true)]),
        ULoopSpec::new(
            "volna_update",
            vec![UArgSpec::new("q_new", Access::Write, false)],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_volume_conserved() {
        let run = Volna::run(Config {
            n: 24,
            iterations: 60,
            ..Config::default()
        });
        assert!(run.validation < 2e-5, "volume drift {}", run.validation);
    }

    #[test]
    fn depth_never_negative() {
        let cfg = Config {
            n: 24,
            iterations: 80,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Volna::new(cfg);
        for _ in 0..80 {
            sim.step(&mut profile);
            assert!(sim.min_depth() >= 0.0, "negative depth");
        }
    }

    #[test]
    fn still_water_stays_still_on_flat_bathymetry() {
        // Flat lake at rest: zero the hump, flatten the beach.
        let mut sim = Volna::new(Config {
            n: 16,
            iterations: 0,
            ..Config::default()
        });
        for c in 0..sim.cells.size {
            sim.q.set(c, 0, 1.0);
            sim.q.set(c, 1, 0.0);
            sim.q.set(c, 2, 0.0);
        }
        let mut profile = Profile::new();
        for _ in 0..10 {
            sim.step(&mut profile);
        }
        for c in 0..sim.cells.size {
            assert!(
                (sim.q.get(c, 0) - 1.0).abs() < 1e-6,
                "lake at rest disturbed"
            );
            assert_eq!(sim.q.get(c, 1), 0.0);
        }
    }

    #[test]
    fn dam_break_spreads_outward() {
        let cfg = Config {
            n: 32,
            iterations: 0,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Volna::new(cfg);
        // Find a cell near (0.7, 0.5): initially at still-water depth.
        let probe = (0..sim.cells.size)
            .find(|&c| {
                (sim.centroids.get(c, 0) - 0.7).abs() < 0.02
                    && (sim.centroids.get(c, 1) - 0.5).abs() < 0.02
            })
            .unwrap();
        let h0 = sim.q.get(probe, 0);
        let mut max_h = h0;
        for _ in 0..120 {
            sim.step(&mut profile);
            max_h = max_h.max(sim.q.get(probe, 0));
        }
        assert!(
            max_h > h0 + 1e-3,
            "wave never reached the probe: {h0} -> {max_h}"
        );
    }

    #[test]
    fn serial_close_to_colored() {
        let base = Config {
            n: 16,
            iterations: 20,
            ..Config::default()
        };
        let a = Volna::run(Config {
            mode: ExecModeU::Serial,
            ..base.clone()
        });
        let b = Volna::run(Config {
            mode: ExecModeU::Colored,
            ..base
        });
        assert!((a.validation - b.validation).abs() < 1e-5);
    }

    #[test]
    fn profile_contains_volna_kernels() {
        let run = Volna::run(Config {
            n: 12,
            iterations: 3,
            ..Config::default()
        });
        assert!(run.profile.get("volna_flux").is_some());
        assert!(run.profile.get("volna_update").is_some());
    }
}
