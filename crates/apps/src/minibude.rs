//! miniBUDE — proxy molecular-docking code (paper §3, app 1; Poenaru et
//! al., representative of BUDE).
//!
//! The kernel: for each candidate *pose* (a rigid-body rotation +
//! translation of the ligand), transform every ligand atom and accumulate
//! an interaction energy against every protein atom — an O(poses × ligand
//! × protein) single-precision computation with tiny memory traffic:
//! compute- and latency-bound, the paper's only non-bandwidth-bound app.
//!
//! The energy model follows miniBUDE's shape: a steric repulsion/attraction
//! term gated by atom-type "hardness" plus a distance-capped electrostatic
//! term. The `bm1`-like deck is generated synthetically (the real deck is
//! BUDE-proprietary data): deterministic pseudo-random atom positions,
//! charges, and types with the same cardinalities. Validation: analytic
//! two-atom energies, rigid-motion invariance, and determinism.

use crate::{AppId, AppRun};
use bwb_ops::Profile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::time::Instant;

/// Forcefield parameters per atom type.
#[derive(Debug, Clone, Copy)]
pub struct FfParams {
    pub radius: f32,
    pub hardness: f32,
    pub is_donor: bool,
}

/// One atom: position, charge, type index.
#[derive(Debug, Clone, Copy)]
pub struct Atom {
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub charge: f32,
    pub ty: u32,
}

/// One pose: Euler rotation + translation.
#[derive(Debug, Clone, Copy)]
pub struct Pose {
    pub rx: f32,
    pub ry: f32,
    pub rz: f32,
    pub tx: f32,
    pub ty: f32,
    pub tz: f32,
}

impl Pose {
    pub const IDENTITY: Pose = Pose {
        rx: 0.0,
        ry: 0.0,
        rz: 0.0,
        tx: 0.0,
        ty: 0.0,
        tz: 0.0,
    };

    /// Apply the rigid transform to a point.
    pub fn transform(&self, x: f32, y: f32, z: f32) -> (f32, f32, f32) {
        let (sx, cx) = self.rx.sin_cos();
        let (sy, cy) = self.ry.sin_cos();
        let (sz, cz) = self.rz.sin_cos();
        // Rz · Ry · Rx
        let (x1, y1, z1) = (x, cx * y - sx * z, sx * y + cx * z);
        let (x2, y2, z2) = (cy * x1 + sy * z1, y1, -sy * x1 + cy * z1);
        let (x3, y3, z3) = (cz * x2 - sz * y2, sz * x2 + cz * y2, z2);
        (x3 + self.tx, y3 + self.ty, z3 + self.tz)
    }
}

/// Electrostatic distance cap (Å) and scale, miniBUDE-flavoured constants.
const ELEC_CUTOFF: f32 = 10.0;
const ELEC_SCALE: f32 = 45.0;

#[derive(Debug, Clone)]
pub struct Config {
    pub n_poses: usize,
    pub n_ligand: usize,
    pub n_protein: usize,
    pub iterations: usize,
    pub parallel: bool,
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n_poses: 128,
            n_ligand: 26,
            n_protein: 200,
            iterations: 2,
            parallel: false,
            seed: 5,
        }
    }
}

impl Config {
    /// The paper's bm1-like testcase: 65536 poses, 26 ligand / 938 protein
    /// atoms, 30 iterations.
    pub fn paper() -> Self {
        Config {
            n_poses: 65536,
            n_ligand: 26,
            n_protein: 938,
            iterations: 30,
            parallel: true,
            seed: 5,
        }
    }
}

/// The docking deck.
pub struct MiniBude {
    cfg: Config,
    pub ligand: Vec<Atom>,
    pub protein: Vec<Atom>,
    pub poses: Vec<Pose>,
    pub ff: Vec<FfParams>,
}

/// Pairwise energy between a transformed ligand atom and a protein atom.
#[inline]
pub fn pair_energy(lig: &Atom, lx: f32, ly: f32, lz: f32, prot: &Atom, ff: &[FfParams]) -> f32 {
    let dx = lx - prot.x;
    let dy = ly - prot.y;
    let dz = lz - prot.z;
    let r = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-3);
    let pl = ff[lig.ty as usize];
    let pp = ff[prot.ty as usize];
    let radij = pl.radius + pp.radius;
    // Steric: quadratic repulsion inside contact, soft attraction just
    // outside, gated by combined hardness (miniBUDE's dslv-style shape).
    let hardness = 0.5 * (pl.hardness + pp.hardness);
    let steric = if r < radij {
        hardness * (1.0 - r / radij) * (1.0 - r / radij) * 10.0
    } else if r < radij * 1.5 {
        -hardness * (1.0 - (r - radij) / (0.5 * radij)) * 0.5
    } else {
        0.0
    };
    // Capped electrostatics.
    let elec = if r < ELEC_CUTOFF {
        ELEC_SCALE * lig.charge * prot.charge * (1.0 / r - 1.0 / ELEC_CUTOFF)
    } else {
        0.0
    };
    // Donor/acceptor bonus when complementary types are in contact.
    let hbond = if pl.is_donor != pp.is_donor && r < radij * 1.2 {
        -1.0
    } else {
        0.0
    };
    steric + elec + hbond
}

impl MiniBude {
    pub fn new(cfg: Config) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n_types = 8;
        let ff: Vec<FfParams> = (0..n_types)
            .map(|t| FfParams {
                radius: 1.2 + 0.15 * t as f32,
                hardness: 20.0 + 5.0 * t as f32,
                is_donor: t % 2 == 0,
            })
            .collect();
        let atom = |span: f32, rng: &mut StdRng| Atom {
            x: rng.gen_range(-span..span),
            y: rng.gen_range(-span..span),
            z: rng.gen_range(-span..span),
            charge: rng.gen_range(-0.5..0.5),
            ty: rng.gen_range(0..n_types as u32),
        };
        let ligand: Vec<Atom> = (0..cfg.n_ligand).map(|_| atom(4.0, &mut rng)).collect();
        let protein: Vec<Atom> = (0..cfg.n_protein).map(|_| atom(15.0, &mut rng)).collect();
        let poses: Vec<Pose> = (0..cfg.n_poses)
            .map(|_| Pose {
                rx: rng.gen_range(0.0..std::f32::consts::TAU),
                ry: rng.gen_range(0.0..std::f32::consts::TAU),
                rz: rng.gen_range(0.0..std::f32::consts::TAU),
                tx: rng.gen_range(-5.0..5.0),
                ty: rng.gen_range(-5.0..5.0),
                tz: rng.gen_range(-5.0..5.0),
            })
            .collect();
        MiniBude {
            cfg,
            ligand,
            protein,
            poses,
            ff,
        }
    }

    /// Energy of one pose.
    pub fn pose_energy(&self, pose: &Pose) -> f32 {
        let mut e = 0.0f32;
        for lig in &self.ligand {
            let (lx, ly, lz) = pose.transform(lig.x, lig.y, lig.z);
            for prot in &self.protein {
                e += pair_energy(lig, lx, ly, lz, prot, &self.ff);
            }
        }
        e
    }

    /// Evaluate all poses (the `fasten_main` kernel).
    pub fn energies(&self, profile: &mut Profile) -> Vec<f32> {
        let t0 = Instant::now();
        let out: Vec<f32> = if self.cfg.parallel {
            self.poses.par_iter().map(|p| self.pose_energy(p)).collect()
        } else {
            self.poses.iter().map(|p| self.pose_energy(p)).collect()
        };
        let pairs = self.poses.len() * self.ligand.len() * self.protein.len();
        // ~30 FLOPs per atom pair (transform amortized over protein atoms).
        profile.record(
            "fasten_main",
            self.poses.len(),
            // Streams the ligand + protein + poses once per pose-block:
            // tiny traffic — this is the compute-bound profile signature.
            self.poses.len() * (self.ligand.len() + 16) * 20,
            pairs as f64 * 30.0,
            t0.elapsed().as_secs_f64(),
        );
        out
    }

    /// Distributed pose-energy evaluation: each rank scores a contiguous
    /// slice of the pose set (embarrassingly parallel — the ligand/protein
    /// decks are replicated), then non-root ranks send their slice to rank
    /// 0, which assembles the rank-ordered energy vector. Root returns
    /// `Some(energies)` (identical to the serial [`Self::energies`]),
    /// everyone else `None`.
    ///
    /// The gather is explicit point-to-point (ctx `"pose_energies"`) so
    /// commcheck sees a many-to-one phase with per-rank byte counts; slice
    /// sizes differ by at most one pose, so the imbalance analyzer must
    /// report this phase balanced.
    pub fn energies_distributed(&self, comm: &mut bwb_shmpi::Comm) -> Option<Vec<f32>> {
        const POSE_GATHER_TAG: u32 = 0x7000_0000;
        let (rank, size) = (comm.rank(), comm.size());
        let n = self.poses.len();
        let lo = n * rank / size;
        let hi = n * (rank + 1) / size;
        let mine: Vec<f32> = self.poses[lo..hi]
            .iter()
            .map(|p| self.pose_energy(p))
            .collect();
        comm.set_comm_ctx("pose_energies");
        let out = if rank == 0 {
            let mut all = mine;
            for r in 1..size {
                all.extend(comm.recv::<f32>(r, POSE_GATHER_TAG));
            }
            assert_eq!(all.len(), n, "gathered pose count");
            Some(all)
        } else {
            comm.send(0, POSE_GATHER_TAG, mine);
            None
        };
        comm.clear_comm_ctx();
        out
    }

    pub fn run(cfg: Config) -> AppRun {
        let mut profile = Profile::new();
        let iterations = cfg.iterations;
        let sim = MiniBude::new(cfg);
        let mut best = f32::INFINITY;
        for it in 0..iterations {
            let mut aspan = bwb_trace::span(bwb_trace::Cat::App, "energies_pass");
            aspan.set_args(it as f64, 0.0, 0.0);
            let e = sim.energies(&mut profile);
            best = e.iter().copied().fold(best, f32::min);
        }
        AppRun {
            app: AppId::MiniBude,
            profile,
            validation: best as f64,
            iterations,
            points: sim.poses.len(),
        }
    }
}

/// miniBUDE has no DSL loops to contract: `energies()` is a hand-rolled
/// compute kernel over pose blocks (an irregular gather the structured
/// `par_loop` model does not describe), profiled directly. The empty
/// contract registers the app with `bwb-dslcheck` explicitly — "nothing to
/// analyze" is a checked claim, not an omission: any future `par_loop`
/// added here would surface as an `undeclared_loop` violation.
pub fn loop_specs() -> Vec<bwb_ops::LoopSpec> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_atom_deck() -> MiniBude {
        let mut m = MiniBude::new(Config {
            n_poses: 1,
            n_ligand: 1,
            n_protein: 1,
            ..Config::default()
        });
        m.ligand = vec![Atom {
            x: 0.0,
            y: 0.0,
            z: 0.0,
            charge: 0.3,
            ty: 0,
        }];
        m.protein = vec![Atom {
            x: 5.0,
            y: 0.0,
            z: 0.0,
            charge: -0.2,
            ty: 0,
        }];
        m.poses = vec![Pose::IDENTITY];
        m
    }

    #[test]
    fn distributed_energies_match_serial() {
        // 4-rank pose-slice gather must reproduce the serial energy vector
        // bit-for-bit (same per-pose arithmetic, only the traversal is
        // partitioned; 13 poses ⇒ uneven slices exercise the split math).
        let cfg = Config {
            n_poses: 13,
            n_ligand: 8,
            n_protein: 24,
            parallel: false,
            ..Config::default()
        };
        let serial = {
            let mut p = Profile::new();
            MiniBude::new(cfg.clone()).energies(&mut p)
        };
        let cfg_run = cfg.clone();
        let out = bwb_shmpi::Universe::run(4, move |c| {
            MiniBude::new(cfg_run.clone()).energies_distributed(c)
        });
        let gathered = out.results[0].clone().expect("root returns energies");
        assert_eq!(gathered, serial);
        for r in 1..4 {
            assert!(out.results[r].is_none(), "non-root rank returned data");
        }
    }

    #[test]
    fn two_atom_electrostatics_match_formula() {
        let m = two_atom_deck();
        let e = m.pose_energy(&Pose::IDENTITY);
        // r = 5 Å > 1.5×2.4 Å ⇒ steric 0, no hbond (same type parity):
        let expect = ELEC_SCALE * 0.3 * -0.2 * (1.0 / 5.0 - 1.0 / ELEC_CUTOFF);
        assert!((e - expect).abs() < 1e-6, "e = {e}, expect {expect}");
    }

    #[test]
    fn steric_repulsion_dominates_at_contact() {
        let mut m = two_atom_deck();
        m.protein[0].x = 0.5; // well inside contact radius
        let e = m.pose_energy(&Pose::IDENTITY);
        assert!(e > 10.0, "contact energy should be strongly repulsive: {e}");
    }

    #[test]
    fn energy_decays_with_distance() {
        let mut m = two_atom_deck();
        let mut last = f32::INFINITY;
        for d in [3.0f32, 5.0, 8.0, 20.0] {
            m.protein[0].x = d;
            let e = m.pose_energy(&Pose::IDENTITY).abs();
            assert!(e <= last, "|E| should not grow with distance");
            last = e;
        }
        // Beyond the cutoff: exactly zero.
        m.protein[0].x = 25.0;
        assert_eq!(m.pose_energy(&Pose::IDENTITY), 0.0);
    }

    #[test]
    fn joint_rigid_motion_invariance() {
        // Rotating BOTH ligand pose and protein by the same rigid motion
        // preserves the energy (distances unchanged).
        let m = MiniBude::new(Config {
            n_poses: 4,
            n_ligand: 8,
            n_protein: 20,
            ..Config::default()
        });
        let e0 = m.pose_energy(&Pose::IDENTITY);
        let rot = Pose {
            rz: 1.1,
            ..Pose::IDENTITY
        };
        let mut m2 = MiniBude::new(Config {
            n_poses: 4,
            n_ligand: 8,
            n_protein: 20,
            ..Config::default()
        });
        m2.protein = m
            .protein
            .iter()
            .map(|a| {
                let (x, y, z) = rot.transform(a.x, a.y, a.z);
                Atom { x, y, z, ..*a }
            })
            .collect();
        let e1 = m2.pose_energy(&rot);
        assert!((e0 - e1).abs() / e0.abs().max(1.0) < 1e-4, "{e0} vs {e1}");
    }

    #[test]
    fn serial_equals_parallel() {
        let mut p = Profile::new();
        let a = MiniBude::new(Config {
            parallel: false,
            ..Config::default()
        })
        .energies(&mut p);
        let b = MiniBude::new(Config {
            parallel: true,
            ..Config::default()
        })
        .energies(&mut p);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = MiniBude::run(Config::default());
        let r2 = MiniBude::run(Config::default());
        assert_eq!(r1.validation, r2.validation);
        assert!(r1.validation.is_finite());
    }

    #[test]
    fn profile_shows_compute_bound_intensity() {
        let run = MiniBude::run(Config::default());
        // Arithmetic intensity far above any bandwidth-bound app (> 5
        // flop/byte vs ~0.1-1 for the stencil codes).
        assert!(
            run.profile.intensity() > 5.0,
            "intensity {}",
            run.profile.intensity()
        );
    }
}
