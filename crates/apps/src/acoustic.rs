//! Acoustic — structured-mesh high-order (8th) finite-difference acoustic
//! wave propagation solver (paper §3, app 3).
//!
//! Single precision, 25-point star stencil (radius-4 in each axis), leapfrog
//! time integration:
//!
//! ```text
//! u^{n+1} = 2 u^n − u^{n−1} + (c Δt)² ∇₈² u^n
//! ```
//!
//! The radius-4 stencil makes this the most cache- and halo-intensive of the
//! structured apps: each MPI halo exchange ships 4-deep ghost shells in all
//! six directions ("large communications volume over MPI").
//!
//! Validation: a Dirichlet-boundary standing wave
//! `u = sin(πx)sin(πy)sin(πz)·cos(ωt)` is reproduced to high-order accuracy;
//! the module's tests check the numerical solution against the analytic one
//! and that the discrete energy stays bounded.

use crate::{AppId, AppRun};
use bwb_ops::{
    par_loop3_planes, par_loop3_planes_nt, par_loop3_reduce, Dat3, DistBlock3, ExecMode, OptPlan,
    Profile, Range3, RowIn3, RowOut3,
};
use bwb_shmpi::Comm;

/// 8th-order second-derivative coefficients (offsets 0, ±1, ±2, ±3, ±4).
pub const C0: f32 = -205.0 / 72.0;
pub const C: [f32; 4] = [8.0 / 5.0, -1.0 / 5.0, 8.0 / 315.0, -1.0 / 560.0];

/// Stencil radius.
pub const RADIUS: usize = 4;

/// FLOPs per point of the update kernel: 3 axes × (4 taps × 2 ops + add) +
/// leapfrog combine ≈ 33.
pub const FLOPS_PER_POINT: f64 = 33.0;

#[derive(Debug, Clone)]
pub struct Config {
    /// Cubic grid edge (interior points per axis).
    pub n: usize,
    /// Time iterations.
    pub iterations: usize,
    /// Courant number (stability requires ≲ 0.4 for the 8th-order star).
    pub courant: f32,
    pub mode: ExecMode,
    /// Optimization plan from `dslcheck` certificates. When it certifies
    /// `("acoustic_update", <output dat>)` the update runs through the
    /// streaming-store driver (non-temporal staged rows); otherwise — and
    /// always under recording — the plain driver runs. Bit-identical
    /// either way.
    pub plan: Option<OptPlan>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 32,
            iterations: 10,
            courant: 0.3,
            mode: ExecMode::Serial,
            plan: None,
        }
    }
}

impl Config {
    /// The paper's testcase: 320³, 10 time iterations.
    pub fn paper() -> Self {
        Config {
            n: 320,
            iterations: 10,
            courant: 0.3,
            mode: ExecMode::Rayon,
            plan: None,
        }
    }
}

/// Solver state: three time levels of the wavefield.
pub struct Acoustic {
    cfg: Config,
    u_prev: Dat3<f32>,
    u_curr: Dat3<f32>,
    u_next: Dat3<f32>,
    /// (c·Δt/Δx)² — the squared Courant number.
    lam2: f32,
    /// Angular frequency of the validation standing wave (×Δt per step).
    omega_dt: f64,
    step: usize,
}

impl Acoustic {
    /// Initialize the standing-wave problem on an `n³` grid.
    pub fn new(cfg: Config) -> Self {
        let n = cfg.n;
        let mut u_prev = Dat3::<f32>::new("u_prev", n, n, n, RADIUS);
        let mut u_curr = Dat3::<f32>::new("u_curr", n, n, n, RADIUS);
        let u_next = Dat3::<f32>::new("u_next", n, n, n, RADIUS);

        // Mode (1,1,1) standing wave with homogeneous Dirichlet walls: the
        // grid points sit at x_i = (i+1)·h with h = 1/(n+1) so u = 0 on the
        // walls, which coincide with the (zero-filled) halo region.
        let h = 1.0f64 / (n as f64 + 1.0);
        let k = std::f64::consts::PI;
        let wave = |i: isize, j: isize, kz: isize| -> f64 {
            let x = (i as f64 + 1.0) * h;
            let y = (j as f64 + 1.0) * h;
            let z = (kz as f64 + 1.0) * h;
            (k * x).sin() * (k * y).sin() * (k * z).sin()
        };
        // Exact dispersion: ω = c·|k| with c = 1, |k| = π√3.
        let omega = k * 3.0f64.sqrt();
        let dt = cfg.courant as f64 * h; // c = 1
        let omega_dt = omega * dt;

        u_curr.init_with(|i, j, kz| wave(i, j, kz) as f32);
        // One step *back* in time: u(t=-Δt) = u(x)·cos(ωΔt).
        let back = omega_dt.cos();
        u_prev.init_with(|i, j, kz| (wave(i, j, kz) * back) as f32);

        let lam2 = cfg.courant * cfg.courant;
        Acoustic {
            cfg,
            u_prev,
            u_curr,
            u_next,
            lam2,
            omega_dt,
            step: 0,
        }
    }

    /// One leapfrog step over the given interior range.
    fn step_range(&mut self, profile: &mut Profile, range: Range3) {
        leapfrog_update(
            profile,
            self.cfg.mode,
            range,
            &mut self.u_next,
            &self.u_curr,
            &self.u_prev,
            self.lam2,
            self.cfg.plan.as_ref(),
        );
        // Rotate time levels: prev ← curr ← next (next becomes scratch).
        std::mem::swap(&mut self.u_prev, &mut self.u_curr);
        std::mem::swap(&mut self.u_curr, &mut self.u_next);
        self.step += 1;
    }

    /// Advance one step on the full interior (single-rank).
    pub fn step_once(&mut self, profile: &mut Profile) {
        let n = self.cfg.n;
        self.step_range(profile, Range3::interior(n, n, n));
    }

    /// Current wavefield value at the grid centre.
    pub fn center_value(&self) -> f32 {
        let c = self.cfg.n as isize / 2;
        self.u_curr.get(c, c, c)
    }

    /// Analytic centre value after the steps taken so far.
    pub fn center_analytic(&self) -> f64 {
        let n = self.cfg.n;
        let h = 1.0f64 / (n as f64 + 1.0);
        let k = std::f64::consts::PI;
        let c = n as f64 / 2.0;
        let x = (c + 1.0) * h;
        (k * x).sin().powi(3) * (self.omega_dt * self.step as f64).cos()
    }

    /// Discrete energy proxy: Σ u².
    pub fn energy(&self, profile: &mut Profile) -> f64 {
        let n = self.cfg.n;
        par_loop3_reduce(
            profile,
            "acoustic_energy",
            self.cfg.mode,
            Range3::interior(n, n, n),
            &[&self.u_curr],
            0.0f64,
            2.0,
            |_i, _j, _k, ins| {
                let v = ins.get(0, 0, 0, 0) as f64;
                v * v
            },
            |a, b| a + b,
        )
    }

    /// Run the configured number of iterations; validation value = max
    /// absolute error of the centre point against the analytic solution
    /// observed over the run.
    pub fn run(cfg: Config) -> AppRun {
        let mut profile = Profile::new();
        let points = cfg.n * cfg.n * cfg.n;
        let iterations = cfg.iterations;
        let mut sim = Acoustic::new(cfg);
        let mut max_err = 0.0f64;
        for it in 0..iterations {
            let mut aspan = bwb_trace::span(bwb_trace::Cat::App, "acoustic_step");
            aspan.set_args(it as f64, 0.0, 0.0);
            sim.step_once(&mut profile);
            let err = (sim.center_value() as f64 - sim.center_analytic()).abs();
            max_err = max_err.max(err);
        }
        AppRun {
            app: AppId::Acoustic,
            profile,
            validation: max_err,
            iterations,
            points,
        }
    }

    /// Distributed run over the ranks of `comm`: each rank owns a sub-block
    /// and exchanges radius-4 halos before every step. Returns this rank's
    /// profile and the gathered global field on rank 0 (for validation).
    pub fn run_distributed(comm: &mut Comm, cfg: Config) -> (Profile, Option<Vec<f64>>) {
        let n = cfg.n;
        let block = DistBlock3::new(comm, n, n, n);
        let (lnx, lny, lnz) = (block.nx(), block.ny(), block.nz());
        let s = block.start();

        let mut profile = Profile::new();
        let mut u_prev = block.alloc_f32("u_prev", RADIUS);
        let mut u_curr = block.alloc_f32("u_curr", RADIUS);
        let mut u_next = block.alloc_f32("u_next", RADIUS);

        let h = 1.0f64 / (n as f64 + 1.0);
        let k = std::f64::consts::PI;
        let wave = |gi: f64, gj: f64, gk: f64| -> f64 {
            ((k * (gi + 1.0) * h).sin())
                * ((k * (gj + 1.0) * h).sin())
                * ((k * (gk + 1.0) * h).sin())
        };
        let omega_dt = k * 3.0f64.sqrt() * (cfg.courant as f64 * h);
        let back = omega_dt.cos();
        u_curr.init_with(|i, j, kz| {
            wave(
                (s[0] as isize + i) as f64,
                (s[1] as isize + j) as f64,
                (s[2] as isize + kz) as f64,
            ) as f32
        });
        u_prev.init_with(|i, j, kz| {
            (wave(
                (s[0] as isize + i) as f64,
                (s[1] as isize + j) as f64,
                (s[2] as isize + kz) as f64,
            ) * back) as f32
        });

        let lam2 = cfg.courant * cfg.courant;
        for it in 0..cfg.iterations {
            let mut aspan = bwb_trace::span(bwb_trace::Cat::App, "acoustic_step");
            aspan.set_args(it as f64, 0.0, 0.0);
            block.exchange_halo(comm, &mut u_curr, RADIUS);
            leapfrog_update(
                &mut profile,
                cfg.mode,
                Range3::interior(lnx, lny, lnz),
                &mut u_next,
                &u_curr,
                &u_prev,
                lam2,
                cfg.plan.as_ref(),
            );
            std::mem::swap(&mut u_prev, &mut u_curr);
            std::mem::swap(&mut u_curr, &mut u_next);
        }

        // Gather as f64 for exact comparison.
        let mut as64 = block.alloc_f64("u64", 0);
        as64.init_with(|i, j, kz| u_curr.get(i, j, kz) as f64);
        let gathered = block.gather_global(comm, &as64);
        (profile, gathered)
    }
}

/// The leapfrog kernel body, shared verbatim between the plain and the
/// streaming-store drivers (bit-identity by construction).
fn leapfrog_body(lam2: f32, out: &mut RowOut3<f32>, ins: &RowIn3<f32>) {
    let r1 = |r: usize| (r + 1) as isize;
    let xm: [_; RADIUS] = std::array::from_fn(|r| ins.row_off(0, -r1(r), 0, 0));
    let xp: [_; RADIUS] = std::array::from_fn(|r| ins.row_off(0, r1(r), 0, 0));
    let ym: [_; RADIUS] = std::array::from_fn(|r| ins.row_off(0, 0, -r1(r), 0));
    let yp: [_; RADIUS] = std::array::from_fn(|r| ins.row_off(0, 0, r1(r), 0));
    let zm: [_; RADIUS] = std::array::from_fn(|r| ins.row_off(0, 0, 0, -r1(r)));
    let zp: [_; RADIUS] = std::array::from_fn(|r| ins.row_off(0, 0, 0, r1(r)));
    let uc = ins.row(0);
    let up = ins.row(1);
    let un = out.row(0);
    for i in 0..un.len() {
        let c0 = uc[i];
        let mut lap = 3.0 * C0 * c0;
        for (r, &cr) in C.iter().enumerate() {
            lap += cr * (xm[r][i] + xp[r][i] + ym[r][i] + yp[r][i] + zm[r][i] + zp[r][i]);
        }
        un[i] = 2.0 * c0 - up[i] + lam2 * lap;
    }
}

/// The leapfrog update `u⁺ = 2u − u⁻ + λ²∇₈²u` on the slice fast path:
/// one contiguous `i`-row per `(j,k)`, with the 24 star-stencil neighbour
/// rows pre-resolved so the inner loop is branch-free straight-line
/// arithmetic over slices (autovectorizable f32).
///
/// With a plan certifying the output for streaming stores the row is
/// staged and copied out through non-temporal stores
/// ([`par_loop3_planes_nt`], which itself falls back to the plain driver
/// when nothing is certified or a recording is active).
#[allow(clippy::too_many_arguments)]
fn leapfrog_update(
    profile: &mut Profile,
    mode: ExecMode,
    range: Range3,
    u_next: &mut Dat3<f32>,
    u_curr: &Dat3<f32>,
    u_prev: &Dat3<f32>,
    lam2: f32,
    plan: Option<&OptPlan>,
) {
    match plan {
        Some(p) => par_loop3_planes_nt(
            profile,
            "acoustic_update",
            mode,
            range,
            &mut [u_next],
            &[u_curr, u_prev],
            FLOPS_PER_POINT,
            p,
            move |_j, _k, out, ins| leapfrog_body(lam2, out, ins),
        ),
        None => par_loop3_planes(
            profile,
            "acoustic_update",
            mode,
            range,
            &mut [u_next],
            &[u_curr, u_prev],
            FLOPS_PER_POINT,
            move |_j, _k, out, ins| leapfrog_body(lam2, out, ins),
        ),
    }
}

/// Declared loop chain for `dslcheck::speccheck`: one leapfrog step over a
/// parametric `(nx,ny,nz)` interior, rotating the three-slot time window
/// with the same pair of swaps the driver performs. The distributed
/// variant prepends the per-step `u_curr` exchange at depth [`RADIUS`]
/// (`exchange_halo` records one site-less observation) and drops the
/// energy reduction, which only the local registry run appends.
pub fn chain_spec(dist: bool) -> bwb_ops::ChainSpec {
    use bwb_ops::{ChainSpec, DatDecl, Expr, Step};
    let c = Expr::c;
    let p = Expr::p;
    let dat = |name: &'static str| DatDecl {
        name,
        halo: RADIUS as isize,
        extent: [p("nx"), p("ny"), p("nz")],
        elem_bytes: 4,
    };
    let interior = || [c(0), p("nx"), c(0), p("ny"), c(0), p("nz")];
    let mut body = Vec::new();
    if dist {
        body.push(Step::Exchange {
            dat: 1,
            depth: RADIUS,
            site: "",
        });
    }
    body.push(Step::Loop {
        spec: "acoustic_update",
        dims: 3,
        range: interior(),
        outs: vec![2],
        ins: vec![1, 0],
    });
    body.push(Step::Swap { a: 0, b: 1 });
    body.push(Step::Swap { a: 1, b: 2 });
    let epilogue = if dist {
        Vec::new()
    } else {
        vec![Step::Loop {
            spec: "acoustic_energy",
            dims: 3,
            range: interior(),
            outs: vec![],
            ins: vec![1],
        }]
    };
    ChainSpec {
        app: if dist { "acoustic_dist" } else { "acoustic" },
        params: vec!["nx", "ny", "nz"],
        dats: vec![dat("u_prev"), dat("u_curr"), dat("u_next")],
        prologue: Vec::new(),
        body,
        epilogue,
    }
}

/// Declared access contracts of every loop in this app, for `bwb-dslcheck`.
pub fn loop_specs() -> Vec<bwb_ops::LoopSpec> {
    use bwb_ops::{ArgSpec as A, LoopSpec as L, Stencil as S};
    vec![
        L::new(
            "acoustic_update",
            vec![A::write("u_next")],
            vec![
                A::read("u_curr", S::plus3(RADIUS as isize)),
                A::read("u_prev", S::point()),
            ],
        ),
        L::new(
            "acoustic_energy",
            vec![],
            vec![A::read("u_curr", S::point())],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwb_shmpi::Universe;

    #[test]
    fn standing_wave_matches_analytic_solution() {
        let run = Acoustic::run(Config {
            n: 48,
            iterations: 20,
            ..Config::default()
        });
        // 8th-order stencil, 2nd-order leapfrog: the centre error stays tiny
        // over 20 steps at CFL 0.3 on a 48³ grid.
        assert!(run.validation < 5e-4, "centre error {}", run.validation);
    }

    #[test]
    fn energy_stays_bounded() {
        let cfg = Config {
            n: 24,
            iterations: 0,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Acoustic::new(cfg);
        let e0 = sim.energy(&mut profile);
        for _ in 0..50 {
            sim.step_once(&mut profile);
        }
        let e1 = sim.energy(&mut profile);
        // The standing wave's Σu² oscillates in [0, e0]; boundedness within
        // a small tolerance demonstrates stability at CFL 0.3.
        assert!(e1 <= e0 * 1.05, "energy grew: {e0} -> {e1}");
        assert!(e1 >= 0.0);
    }

    #[test]
    fn serial_equals_rayon_bitwise() {
        let a = Acoustic::run(Config {
            n: 20,
            iterations: 5,
            mode: ExecMode::Serial,
            ..Config::default()
        });
        let b = Acoustic::run(Config {
            n: 20,
            iterations: 5,
            mode: ExecMode::Rayon,
            ..Config::default()
        });
        assert_eq!(a.validation, b.validation);
    }

    #[test]
    fn unstable_courant_blows_up() {
        // CFL limit for the 3-D 8th-order star is ~0.52; 0.9 must diverge.
        let cfg = Config {
            n: 16,
            iterations: 0,
            courant: 0.9,
            ..Config::default()
        };
        let mut profile = Profile::new();
        let mut sim = Acoustic::new(cfg);
        let e0 = sim.energy(&mut profile);
        for _ in 0..60 {
            sim.step_once(&mut profile);
        }
        let e1 = sim.energy(&mut profile);
        assert!(
            e1 > 10.0 * e0 || !e1.is_finite(),
            "expected instability: {e0} -> {e1}"
        );
    }

    #[test]
    fn profile_accounts_bytes_and_flops() {
        let run = Acoustic::run(Config {
            n: 16,
            iterations: 4,
            ..Config::default()
        });
        let rec = run.profile.get("acoustic_update").unwrap();
        assert_eq!(rec.calls, 4);
        assert_eq!(rec.points, 4 * 16 * 16 * 16);
        // 1 write + 2 reads × 4 bytes per point.
        assert_eq!(rec.bytes, rec.points * 12);
        assert_eq!(rec.flops, rec.points as f64 * FLOPS_PER_POINT);
    }

    #[test]
    fn distributed_matches_single_rank() {
        let cfg = Config {
            n: 24,
            iterations: 6,
            ..Config::default()
        };
        let single = {
            let cfg = cfg.clone();
            let mut profile = Profile::new();
            let mut sim = Acoustic::new(cfg.clone());
            for _ in 0..cfg.iterations {
                sim.step_once(&mut profile);
            }
            let mut out = Vec::new();
            for k in 0..cfg.n as isize {
                for j in 0..cfg.n as isize {
                    for i in 0..cfg.n as isize {
                        out.push(sim.u_curr.get(i, j, k) as f64);
                    }
                }
            }
            out
        };
        let cfg2 = cfg.clone();
        let out = Universe::run(8, move |c| Acoustic::run_distributed(c, cfg2.clone()).1);
        let dist = out.results[0].as_ref().unwrap();
        assert_eq!(dist.len(), single.len());
        let max_diff = dist
            .iter()
            .zip(&single)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff < 1e-6,
            "distributed differs from serial by {max_diff}"
        );
    }

    #[test]
    fn distributed_profile_counts_halo_traffic() {
        let cfg = Config {
            n: 16,
            iterations: 2,
            ..Config::default()
        };
        let out = Universe::run(4, move |c| {
            let _ = Acoustic::run_distributed(c, cfg.clone());
            c.stats()
        });
        // Every rank exchanged halos: sends > 0, deep halos → big messages.
        for s in &out.results {
            assert!(s.sends > 0);
            assert!(s.bytes_sent > 1000);
        }
    }
}
