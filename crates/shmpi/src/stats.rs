//! Per-rank communication statistics — the instrument behind Figure 7.
//!
//! The paper quantifies the communication bottleneck by "measuring the time
//! spent in MPI_Wait for different applications". [`RankStats`] accumulates
//! exactly that (`wait_seconds`: wall time blocked in `recv`/`wait`/
//! `barrier`/collectives), plus message counts and byte volumes, plus a
//! *modelled* latency account (`modeled_latency_s`) that prices each message
//! with the machine-model latency of the rank pair's topological distance —
//! letting figure generators re-cost an observed communication pattern on a
//! platform we do not have.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of log2 buckets in the message-size histograms. Bucket `i`
/// counts messages with `2^i <= bytes < 2^(i+1)` (bucket 0 also takes
/// empty messages); the last bucket absorbs everything `>= 2^31` bytes.
pub const SIZE_HIST_BUCKETS: usize = 32;

fn size_bucket(bytes: usize) -> usize {
    if bytes == 0 {
        0
    } else {
        (bytes.ilog2() as usize).min(SIZE_HIST_BUCKETS - 1)
    }
}

/// Traffic exchanged with one peer, with message-size histograms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerStats {
    pub sends: u64,
    pub recvs: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Seconds blocked in receives that matched this peer.
    pub wait_seconds: f64,
    /// Log2 size histogram of sent messages (see [`SIZE_HIST_BUCKETS`]).
    pub send_size_hist: [u64; SIZE_HIST_BUCKETS],
    /// Log2 size histogram of received messages.
    pub recv_size_hist: [u64; SIZE_HIST_BUCKETS],
}

impl Default for PeerStats {
    fn default() -> Self {
        PeerStats {
            sends: 0,
            recvs: 0,
            bytes_sent: 0,
            bytes_received: 0,
            wait_seconds: 0.0,
            send_size_hist: [0; SIZE_HIST_BUCKETS],
            recv_size_hist: [0; SIZE_HIST_BUCKETS],
        }
    }
}

/// Per-peer and per-tag communication breakdown for one rank.
///
/// This refines the scalar [`RankStats`] account: `wait_seconds` there stays
/// the single source of truth for total blocked time, while `CommDetail`
/// attributes the receive-side share of it to the matched peer and tag.
/// Barrier wait is deliberately *not* attributed here (it has no peer).
/// `BTreeMap` keeps iteration — and hence any rendered report — deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommDetail {
    pub per_peer: BTreeMap<usize, PeerStats>,
    /// Seconds blocked in receives, keyed by message tag.
    pub per_tag_wait: BTreeMap<u32, f64>,
}

impl CommDetail {
    pub fn note_send(&mut self, peer: usize, bytes: usize) {
        let p = self.per_peer.entry(peer).or_default();
        p.sends += 1;
        p.bytes_sent += bytes as u64;
        p.send_size_hist[size_bucket(bytes)] += 1;
    }

    pub fn note_recv(&mut self, peer: usize, tag: u32, bytes: usize, wait_s: f64) {
        let p = self.per_peer.entry(peer).or_default();
        p.recvs += 1;
        p.bytes_received += bytes as u64;
        p.recv_size_hist[size_bucket(bytes)] += 1;
        p.wait_seconds += wait_s;
        *self.per_tag_wait.entry(tag).or_insert(0.0) += wait_s;
    }

    /// Sum of peer-attributed wait time (receive-side only; excludes
    /// barriers, so this is `<= RankStats::wait_seconds`).
    pub fn attributed_wait_seconds(&self) -> f64 {
        self.per_peer.values().map(|p| p.wait_seconds).sum()
    }

    pub fn merge(&mut self, other: &CommDetail) {
        for (&peer, o) in &other.per_peer {
            let p = self.per_peer.entry(peer).or_default();
            p.sends += o.sends;
            p.recvs += o.recvs;
            p.bytes_sent += o.bytes_sent;
            p.bytes_received += o.bytes_received;
            p.wait_seconds += o.wait_seconds;
            for i in 0..SIZE_HIST_BUCKETS {
                p.send_size_hist[i] += o.send_size_hist[i];
                p.recv_size_hist[i] += o.recv_size_hist[i];
            }
        }
        for (&tag, &w) in &other.per_tag_wait {
            *self.per_tag_wait.entry(tag).or_insert(0.0) += w;
        }
    }
}

/// Statistics for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RankStats {
    pub sends: u64,
    pub recvs: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Wall-clock seconds blocked in recv/wait/barrier/collectives.
    pub wait_seconds: f64,
    /// Modelled message latency cost (seconds) from the machine profile.
    pub modeled_latency_s: f64,
    pub barriers: u64,
    pub collectives: u64,
    /// Envelopes still queued in this rank's mailbox when the world tore
    /// down — sends nobody received. Nonzero values indicate a matching
    /// bug (debug builds also assert on them at teardown).
    pub unreceived_at_teardown: u64,
}

impl RankStats {
    pub fn merge(&mut self, other: &RankStats) {
        self.sends += other.sends;
        self.recvs += other.recvs;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.wait_seconds += other.wait_seconds;
        self.modeled_latency_s += other.modeled_latency_s;
        self.barriers += other.barriers;
        self.collectives += other.collectives;
        self.unreceived_at_teardown += other.unreceived_at_teardown;
    }
}

/// Aggregate over all ranks of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorldStats {
    pub per_rank: Vec<RankStats>,
    /// Per-peer/per-tag breakdown, indexed like `per_rank`. Empty when the
    /// producer predates detail collection (e.g. hand-built test fixtures).
    pub details: Vec<CommDetail>,
}

impl WorldStats {
    pub fn total(&self) -> RankStats {
        let mut t = RankStats::default();
        for r in &self.per_rank {
            t.merge(r);
        }
        t
    }

    /// Mean blocked time across ranks, seconds.
    pub fn mean_wait_seconds(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 0.0;
        }
        self.total().wait_seconds / self.per_rank.len() as f64
    }

    /// Maximum blocked time across ranks — the critical-path view.
    pub fn max_wait_seconds(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.wait_seconds)
            .fold(0.0, f64::max)
    }

    /// Fraction of total runtime spent waiting, given the run's wall time —
    /// Figure 7's y-axis.
    pub fn mpi_fraction(&self, wall_seconds: f64) -> f64 {
        if wall_seconds <= 0.0 {
            return 0.0;
        }
        (self.mean_wait_seconds() / wall_seconds).min(1.0)
    }

    pub fn total_messages(&self) -> u64 {
        self.total().sends
    }

    pub fn total_bytes(&self) -> u64 {
        self.total().bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = RankStats {
            sends: 1,
            bytes_sent: 10,
            wait_seconds: 0.5,
            ..Default::default()
        };
        let b = RankStats {
            sends: 2,
            bytes_sent: 30,
            wait_seconds: 1.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.sends, 3);
        assert_eq!(a.bytes_sent, 40);
        assert!((a.wait_seconds - 1.5).abs() < 1e-12);
    }

    #[test]
    fn world_aggregates() {
        let w = WorldStats {
            per_rank: vec![
                RankStats {
                    sends: 2,
                    wait_seconds: 1.0,
                    ..Default::default()
                },
                RankStats {
                    sends: 4,
                    wait_seconds: 3.0,
                    ..Default::default()
                },
            ],
            details: Vec::new(),
        };
        assert_eq!(w.total_messages(), 6);
        assert!((w.mean_wait_seconds() - 2.0).abs() < 1e-12);
        assert!((w.max_wait_seconds() - 3.0).abs() < 1e-12);
        assert!((w.mpi_fraction(4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mpi_fraction_clamped_and_safe() {
        let w = WorldStats {
            per_rank: vec![RankStats {
                wait_seconds: 10.0,
                ..Default::default()
            }],
            details: Vec::new(),
        };
        assert_eq!(w.mpi_fraction(0.0), 0.0);
        assert_eq!(w.mpi_fraction(1.0), 1.0);
    }

    #[test]
    fn size_buckets_are_log2() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 0);
        assert_eq!(size_bucket(2), 1);
        assert_eq!(size_bucket(1023), 9);
        assert_eq!(size_bucket(1024), 10);
        assert_eq!(size_bucket(usize::MAX), SIZE_HIST_BUCKETS - 1);
    }

    #[test]
    fn detail_attributes_waits_and_sizes() {
        let mut d = CommDetail::default();
        d.note_send(1, 800);
        d.note_send(1, 800);
        d.note_recv(2, 7, 4096, 0.25);
        d.note_recv(2, 9, 0, 0.75);
        let p1 = &d.per_peer[&1];
        assert_eq!(p1.sends, 2);
        assert_eq!(p1.bytes_sent, 1600);
        assert_eq!(p1.send_size_hist[9], 2); // 800 B -> bucket 9
        let p2 = &d.per_peer[&2];
        assert_eq!(p2.recvs, 2);
        assert_eq!(p2.recv_size_hist[12], 1); // 4096 B
        assert_eq!(p2.recv_size_hist[0], 1); // empty message
        assert!((p2.wait_seconds - 1.0).abs() < 1e-12);
        assert!((d.per_tag_wait[&7] - 0.25).abs() < 1e-12);
        assert!((d.attributed_wait_seconds() - 1.0).abs() < 1e-12);
        // Iteration order over peers/tags is sorted — deterministic reports.
        assert_eq!(d.per_peer.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn detail_merge_adds_histograms() {
        let mut a = CommDetail::default();
        a.note_send(3, 64);
        let mut b = CommDetail::default();
        b.note_send(3, 64);
        b.note_recv(0, 1, 128, 0.5);
        a.merge(&b);
        assert_eq!(a.per_peer[&3].sends, 2);
        assert_eq!(a.per_peer[&3].send_size_hist[6], 2);
        assert!((a.per_tag_wait[&1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_world_is_zero() {
        let w = WorldStats::default();
        assert_eq!(w.mean_wait_seconds(), 0.0);
        assert_eq!(w.total_messages(), 0);
    }
}
