//! Per-rank communication statistics — the instrument behind Figure 7.
//!
//! The paper quantifies the communication bottleneck by "measuring the time
//! spent in MPI_Wait for different applications". [`RankStats`] accumulates
//! exactly that (`wait_seconds`: wall time blocked in `recv`/`wait`/
//! `barrier`/collectives), plus message counts and byte volumes, plus a
//! *modelled* latency account (`modeled_latency_s`) that prices each message
//! with the machine-model latency of the rank pair's topological distance —
//! letting figure generators re-cost an observed communication pattern on a
//! platform we do not have.

use serde::{Deserialize, Serialize};

/// Statistics for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RankStats {
    pub sends: u64,
    pub recvs: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Wall-clock seconds blocked in recv/wait/barrier/collectives.
    pub wait_seconds: f64,
    /// Modelled message latency cost (seconds) from the machine profile.
    pub modeled_latency_s: f64,
    pub barriers: u64,
    pub collectives: u64,
}

impl RankStats {
    pub fn merge(&mut self, other: &RankStats) {
        self.sends += other.sends;
        self.recvs += other.recvs;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.wait_seconds += other.wait_seconds;
        self.modeled_latency_s += other.modeled_latency_s;
        self.barriers += other.barriers;
        self.collectives += other.collectives;
    }
}

/// Aggregate over all ranks of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorldStats {
    pub per_rank: Vec<RankStats>,
}

impl WorldStats {
    pub fn total(&self) -> RankStats {
        let mut t = RankStats::default();
        for r in &self.per_rank {
            t.merge(r);
        }
        t
    }

    /// Mean blocked time across ranks, seconds.
    pub fn mean_wait_seconds(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 0.0;
        }
        self.total().wait_seconds / self.per_rank.len() as f64
    }

    /// Maximum blocked time across ranks — the critical-path view.
    pub fn max_wait_seconds(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.wait_seconds)
            .fold(0.0, f64::max)
    }

    /// Fraction of total runtime spent waiting, given the run's wall time —
    /// Figure 7's y-axis.
    pub fn mpi_fraction(&self, wall_seconds: f64) -> f64 {
        if wall_seconds <= 0.0 {
            return 0.0;
        }
        (self.mean_wait_seconds() / wall_seconds).min(1.0)
    }

    pub fn total_messages(&self) -> u64 {
        self.total().sends
    }

    pub fn total_bytes(&self) -> u64 {
        self.total().bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = RankStats {
            sends: 1,
            bytes_sent: 10,
            wait_seconds: 0.5,
            ..Default::default()
        };
        let b = RankStats {
            sends: 2,
            bytes_sent: 30,
            wait_seconds: 1.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.sends, 3);
        assert_eq!(a.bytes_sent, 40);
        assert!((a.wait_seconds - 1.5).abs() < 1e-12);
    }

    #[test]
    fn world_aggregates() {
        let w = WorldStats {
            per_rank: vec![
                RankStats {
                    sends: 2,
                    wait_seconds: 1.0,
                    ..Default::default()
                },
                RankStats {
                    sends: 4,
                    wait_seconds: 3.0,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(w.total_messages(), 6);
        assert!((w.mean_wait_seconds() - 2.0).abs() < 1e-12);
        assert!((w.max_wait_seconds() - 3.0).abs() < 1e-12);
        assert!((w.mpi_fraction(4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mpi_fraction_clamped_and_safe() {
        let w = WorldStats {
            per_rank: vec![RankStats {
                wait_seconds: 10.0,
                ..Default::default()
            }],
        };
        assert_eq!(w.mpi_fraction(0.0), 0.0);
        assert_eq!(w.mpi_fraction(1.0), 1.0);
    }

    #[test]
    fn empty_world_is_zero() {
        let w = WorldStats::default();
        assert_eq!(w.mean_wait_seconds(), 0.0);
        assert_eq!(w.total_messages(), 0);
    }
}
