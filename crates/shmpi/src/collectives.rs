//! Collective operations: reduce, allreduce, broadcast, gather, allgather.
//!
//! Built on the point-to-point layer with a reserved tag space; each
//! collective invocation consumes one sequence number so that back-to-back
//! collectives never cross-match (the usual "collectives are called in the
//! same order on all ranks" MPI requirement applies).

use crate::comm::Comm;
use crate::event::CommOp;
use serde::{Deserialize, Serialize};

/// Base of the reserved tag space for collectives. Public so analyzers
/// (commcheck's imbalance pass) can separate collective-internal traffic
/// from application point-to-point phases by tag alone.
pub const COLL_TAG_BASE: u32 = 0x8000_0000;
/// Distinct collective invocations before tags recycle.
const COLL_TAG_WINDOW: u32 = 0x4000_0000;

/// Elementwise reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

/// Element types usable in reductions.
pub trait Reducible: Copy + Send + PartialOrd + 'static {
    fn zero(op: ReduceOp) -> Self;
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_reducible_float {
    ($t:ty) => {
        impl Reducible for $t {
            fn zero(op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Sum => 0.0,
                    ReduceOp::Min => <$t>::INFINITY,
                    ReduceOp::Max => <$t>::NEG_INFINITY,
                }
            }
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                }
            }
        }
    };
}
impl_reducible_float!(f32);
impl_reducible_float!(f64);

macro_rules! impl_reducible_int {
    ($t:ty) => {
        impl Reducible for $t {
            fn zero(op: ReduceOp) -> Self {
                match op {
                    ReduceOp::Sum => 0,
                    ReduceOp::Min => <$t>::MAX,
                    ReduceOp::Max => <$t>::MIN,
                }
            }
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                }
            }
        }
    };
}
impl_reducible_int!(u32);
impl_reducible_int!(u64);
impl_reducible_int!(i32);
impl_reducible_int!(i64);
impl_reducible_int!(usize);

impl Comm {
    fn next_coll_tag(&mut self, kind: &'static str) -> u32 {
        let tag = COLL_TAG_BASE + (self.coll_seq % COLL_TAG_WINDOW);
        self.coll_seq += 1;
        self.stats.collectives += 1;
        // Entry marker for commcheck's collective-order analyzer; the
        // constituent point-to-point traffic is logged separately under the
        // reserved tag.
        self.log_event(CommOp::Collective { kind }, tag, 0);
        tag
    }

    /// Reduce element-wise onto `root`; returns `Some(reduced)` on the root,
    /// `None` elsewhere. The reduction is applied in rank order, so
    /// floating-point results are deterministic across runs.
    pub fn reduce<T: Reducible>(
        &mut self,
        vals: &[T],
        op: ReduceOp,
        root: usize,
    ) -> Option<Vec<T>> {
        let tag = self.next_coll_tag("reduce");
        if self.rank == root {
            let mut acc: Vec<T> = vals.to_vec();
            // Deterministic rank order (skip self).
            for src in 0..self.size() {
                if src == root {
                    continue;
                }
                let contrib = self.recv::<T>(src, tag);
                assert_eq!(
                    contrib.len(),
                    acc.len(),
                    "reduce length mismatch from rank {src}"
                );
                for (a, b) in acc.iter_mut().zip(contrib) {
                    *a = T::combine(op, *a, b);
                }
            }
            Some(acc)
        } else {
            self.send(root, tag, vals.to_vec());
            None
        }
    }

    /// Broadcast `data` from `root` to all ranks; every rank returns the
    /// root's payload.
    pub fn bcast<T: Clone + Send + 'static>(&mut self, data: Vec<T>, root: usize) -> Vec<T> {
        let tag = self.next_coll_tag("bcast");
        if self.rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send(dst, tag, data.clone());
                }
            }
            data
        } else {
            self.recv::<T>(root, tag)
        }
    }

    /// Allreduce: every rank gets the element-wise reduction of everyone's
    /// values (deterministic rank-ordered combination).
    pub fn allreduce<T: Reducible + Clone>(&mut self, vals: &[T], op: ReduceOp) -> Vec<T> {
        let reduced = self.reduce(vals, op, 0);
        self.bcast(reduced.unwrap_or_default(), 0)
    }

    /// Scalar convenience wrapper over [`Comm::allreduce`].
    pub fn allreduce_scalar<T: Reducible + Clone>(&mut self, val: T, op: ReduceOp) -> T {
        self.allreduce(&[val], op)[0]
    }

    /// Gather each rank's payload onto `root` (rank-ordered); `None` on
    /// non-roots.
    pub fn gather<T: Send + Clone + 'static>(
        &mut self,
        vals: &[T],
        root: usize,
    ) -> Option<Vec<Vec<T>>> {
        let tag = self.next_coll_tag("gather");
        if self.rank == root {
            let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size());
            for src in 0..self.size() {
                if src == root {
                    out.push(vals.to_vec());
                } else {
                    out.push(self.recv::<T>(src, tag));
                }
            }
            Some(out)
        } else {
            self.send(root, tag, vals.to_vec());
            None
        }
    }

    /// Allgather: every rank receives every rank's payload, rank-ordered.
    pub fn allgather<T: Send + Clone + 'static>(&mut self, vals: &[T]) -> Vec<Vec<T>> {
        let gathered = self.gather(vals, 0);
        // Broadcast the flattened structure: lengths then data.
        let (lens, flat) = match gathered {
            Some(parts) => {
                let lens: Vec<u64> = parts.iter().map(|p| p.len() as u64).collect();
                let flat: Vec<T> = parts.into_iter().flatten().collect();
                (lens, flat)
            }
            None => (Vec::new(), Vec::new()),
        };
        let lens = self.bcast(lens, 0);
        let flat = self.bcast(flat, 0);
        let mut out = Vec::with_capacity(lens.len());
        let mut offset = 0usize;
        for l in lens {
            let l = l as usize;
            out.push(flat[offset..offset + l].to_vec());
            offset += l;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn allreduce_sum() {
        let out = Universe::run(6, |c| c.allreduce_scalar(c.rank() as f64, ReduceOp::Sum));
        for r in out.results {
            assert_eq!(r, 15.0);
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = Universe::run(5, |c| {
            let mn = c.allreduce_scalar(c.rank() as i64 - 2, ReduceOp::Min);
            let mx = c.allreduce_scalar(c.rank() as i64 - 2, ReduceOp::Max);
            (mn, mx)
        });
        for (mn, mx) in out.results {
            assert_eq!((mn, mx), (-2, 2));
        }
    }

    #[test]
    fn allreduce_vector_elementwise() {
        let out = Universe::run(3, |c| {
            let v = vec![c.rank() as u64, 10 + c.rank() as u64];
            c.allreduce(&v, ReduceOp::Sum)
        });
        for r in out.results {
            assert_eq!(r, vec![3, 33]);
        }
    }

    #[test]
    fn reduce_only_root_gets_result() {
        let out = Universe::run(4, |c| c.reduce(&[1u32], ReduceOp::Sum, 2));
        for (rank, r) in out.results.into_iter().enumerate() {
            if rank == 2 {
                assert_eq!(r, Some(vec![4]));
            } else {
                assert_eq!(r, None);
            }
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = Universe::run(4, |c| {
            let data = if c.rank() == 3 {
                vec![9.5f32, 1.5]
            } else {
                Vec::new()
            };
            c.bcast(data, 3)
        });
        for r in out.results {
            assert_eq!(r, vec![9.5, 1.5]);
        }
    }

    #[test]
    fn gather_preserves_rank_order() {
        let out = Universe::run(4, |c| c.gather(&[c.rank() as u8], 0));
        assert_eq!(
            out.results[0],
            Some(vec![vec![0u8], vec![1], vec![2], vec![3]])
        );
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let out = Universe::run(3, |c| c.allgather(&[c.rank() as u16 * 5]));
        for r in out.results {
            assert_eq!(r, vec![vec![0u16], vec![5], vec![10]]);
        }
    }

    #[test]
    fn allgather_handles_unequal_lengths() {
        let out = Universe::run(3, |c| {
            let mine: Vec<u32> = (0..c.rank() as u32).collect();
            c.allgather(&mine)
        });
        for r in out.results {
            assert_eq!(r, vec![vec![], vec![0], vec![0, 1]]);
        }
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_match() {
        let out = Universe::run(4, |c| {
            let a = c.allreduce_scalar(1u64, ReduceOp::Sum);
            let b = c.allreduce_scalar(10u64, ReduceOp::Sum);
            let d = c.allreduce_scalar(100u64, ReduceOp::Sum);
            (a, b, d)
        });
        for r in out.results {
            assert_eq!(r, (4, 40, 400));
        }
    }

    #[test]
    fn float_reduction_is_deterministic_across_runs() {
        let run = || {
            Universe::run(7, |c| {
                // values chosen so summation order matters in FP
                let v = 1.0f64 / (c.rank() as f64 + 1.0) * 1e10;
                c.allreduce_scalar(v, ReduceOp::Sum)
            })
            .results[0]
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "rank-ordered reduction must be bitwise stable"
        );
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let out = Universe::run(1, |c| {
            let s = c.allreduce_scalar(5.0f32, ReduceOp::Sum);
            let g = c.allgather(&[1u8, 2]);
            (s, g)
        });
        assert_eq!(out.results[0].0, 5.0);
        assert_eq!(out.results[0].1, vec![vec![1, 2]]);
    }
}
