//! The per-rank communicator handle: point-to-point messaging.

use crate::event::{CommEvent, CommLog, CommOp};
use crate::mailbox::{Envelope, Mailbox, Pattern};
use crate::stats::{CommDetail, RankStats};
use bwb_machine::{LatencyProfile, RankPlacement};
use std::sync::{Arc, Barrier};

/// Wildcard source for [`Comm::recv`] / [`Comm::irecv`].
pub const ANY_SOURCE: usize = usize::MAX;

/// Software envelope overhead added to the modelled per-message latency
/// (matching, queueing — the MPI stack cost), nanoseconds.
pub const SW_OVERHEAD_NS: f64 = 250.0;

pub(crate) struct Shared {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) size: usize,
    pub(crate) barrier: Barrier,
    /// Optional machine model: where each rank lives and what messages cost.
    pub(crate) placement: Option<(RankPlacement, LatencyProfile)>,
}

/// One rank's communicator. Created by [`crate::Universe::run`]; each rank's
/// closure receives `&mut Comm` and may freely send/receive/collect.
pub struct Comm {
    pub(crate) rank: usize,
    pub(crate) shared: Arc<Shared>,
    pub(crate) stats: RankStats,
    /// Per-peer/per-tag refinement of `stats` (histograms, attributed wait).
    pub(crate) detail: CommDetail,
    /// Sequence number giving each collective invocation a unique tag.
    pub(crate) coll_seq: u32,
    /// When enabled, each halo exchange is logged as `(dat name, depth)` so
    /// analyzers (bwb-dslcheck) can compare exchanged depths against
    /// declared stencil radii. `None` (the default) costs nothing.
    pub(crate) exchange_trace: Option<Vec<(String, usize)>>,
    /// Full communication event log for commcheck. `None` (the default)
    /// costs one branch per operation.
    pub(crate) comm_log: Option<CommLog>,
    /// Current dat / phase attribution stamped onto logged events. Only
    /// consulted when `comm_log` is active.
    pub(crate) comm_ctx: Option<String>,
}

/// A non-blocking operation handle, completed by [`Comm::wait`].
///
/// Sends are eager/buffered so a send request is complete at creation;
/// receive requests carry their match pattern and block at `wait`.
#[derive(Debug)]
pub enum Request<T> {
    /// Completed send (payload already delivered to the destination).
    Send,
    /// Pending receive.
    Recv {
        source: Option<usize>,
        tag: u32,
        _marker: std::marker::PhantomData<T>,
    },
}

impl Comm {
    pub(crate) fn new(rank: usize, shared: Arc<Shared>) -> Self {
        Comm {
            rank,
            shared,
            stats: RankStats::default(),
            detail: CommDetail::default(),
            coll_seq: 0,
            exchange_trace: None,
            comm_log: None,
            comm_ctx: None,
        }
    }

    /// Start recording the full per-rank communication event log (every
    /// send/recv/barrier/collective with peer, tag, bytes, and ctx
    /// attribution). Drives `dslcheck::comm`; see [`crate::CommLog`].
    pub fn enable_comm_log(&mut self) {
        if self.comm_log.is_none() {
            self.comm_log = Some(CommLog::new(self.rank));
        }
    }

    /// Detach the recorded event log (if any), leaving logging disabled.
    pub fn take_comm_log(&mut self) -> Option<CommLog> {
        self.comm_log.take()
    }

    /// Attribute subsequent logged events to a dat / phase name. No-op
    /// (and allocation-free) while logging is disabled.
    pub fn set_comm_ctx(&mut self, ctx: &str) {
        if self.comm_log.is_some() {
            self.comm_ctx = Some(ctx.to_string());
        }
    }

    /// Clear the dat / phase attribution.
    pub fn clear_comm_ctx(&mut self) {
        self.comm_ctx = None;
    }

    /// Append one event to the comm log (no-op while logging is off).
    pub(crate) fn log_event(&mut self, op: CommOp, tag: u32, bytes: usize) {
        if let Some(log) = &mut self.comm_log {
            log.events.push(CommEvent {
                op,
                tag,
                bytes,
                ctx: self.comm_ctx.clone(),
            });
        }
    }

    /// Start logging halo exchanges (dat name, depth) for later inspection
    /// via [`Comm::exchange_trace`]. Intended for analyzer runs, not
    /// production timing.
    pub fn enable_exchange_trace(&mut self) {
        if self.exchange_trace.is_none() {
            self.exchange_trace = Some(Vec::new());
        }
    }

    /// Record one halo exchange in the trace (no-op unless enabled).
    pub fn note_exchange(&mut self, name: &str, depth: usize) {
        if let Some(trace) = &mut self.exchange_trace {
            trace.push((name.to_string(), depth));
        }
    }

    /// The exchanges logged since [`Comm::enable_exchange_trace`], in call
    /// order. Empty if tracing was never enabled.
    pub fn exchange_trace(&self) -> &[(String, usize)] {
        self.exchange_trace.as_deref().unwrap_or(&[])
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Statistics accumulated so far on this rank.
    pub fn stats(&self) -> RankStats {
        self.stats
    }

    /// Per-peer/per-tag breakdown accumulated so far on this rank.
    pub fn detail(&self) -> &CommDetail {
        &self.detail
    }

    fn modeled_latency_s(&self, peer: usize) -> f64 {
        match &self.shared.placement {
            Some((placement, profile)) => {
                let d = placement.distance(
                    self.rank.min(placement.n_ranks() - 1),
                    peer.min(placement.n_ranks() - 1),
                );
                profile.mpi_latency_ns(d, SW_OVERHEAD_NS) * 1e-9
            }
            None => SW_OVERHEAD_NS * 1e-9,
        }
    }

    /// Eager buffered send: copies the payload into the destination mailbox
    /// and returns immediately (like `MPI_Send` with a small message or
    /// `MPI_Bsend`).
    pub fn send<T: Send + 'static>(&mut self, dest: usize, tag: u32, data: Vec<T>) {
        assert!(dest < self.size(), "send to rank {dest} of {}", self.size());
        let bytes = std::mem::size_of::<T>() * data.len();
        self.stats.sends += 1;
        self.stats.bytes_sent += bytes as u64;
        self.stats.modeled_latency_s += self.modeled_latency_s(dest);
        self.detail.note_send(dest, bytes);
        bwb_trace::instant(
            bwb_trace::Cat::Mpi,
            "mpi_send",
            [dest as f64, bytes as f64, tag as f64],
        );
        self.log_event(CommOp::Send { dest }, tag, bytes);
        self.shared.mailboxes[dest].deliver(Envelope {
            source: self.rank,
            tag,
            data: Box::new(data),
            bytes,
        });
    }

    /// Blocking typed receive. `source` may be [`ANY_SOURCE`].
    ///
    /// # Panics
    /// Panics if the matching message's element type is not `T` — a type
    /// confusion that real MPI would surface as silent corruption.
    pub fn recv<T: Send + 'static>(&mut self, source: usize, tag: u32) -> Vec<T> {
        self.recv_from(source, tag).1
    }

    /// Like [`Comm::recv`] but also returns the actual source rank (useful
    /// with [`ANY_SOURCE`]).
    pub fn recv_from<T: Send + 'static>(&mut self, source: usize, tag: u32) -> (usize, Vec<T>) {
        let pat = Pattern {
            source: if source == ANY_SOURCE {
                None
            } else {
                Some(source)
            },
            tag,
        };
        let (env, waited) = self.shared.mailboxes[self.rank].take_blocking(pat);
        self.stats.recvs += 1;
        self.stats.bytes_received += env.bytes as u64;
        self.stats.wait_seconds += waited.as_secs_f64();
        let src = env.source;
        self.detail
            .note_recv(src, tag, env.bytes, waited.as_secs_f64());
        // Retro-dated span covering exactly the blocked interval, so summed
        // `mpi_wait` span time reconciles with `RankStats::wait_seconds`.
        bwb_trace::span_retro(
            bwb_trace::Cat::Mpi,
            "mpi_wait",
            waited,
            [src as f64, env.bytes as f64, tag as f64],
        );
        self.log_event(
            CommOp::Recv {
                source: pat.source,
                matched: src,
            },
            tag,
            env.bytes,
        );
        let data = env.data.downcast::<Vec<T>>().unwrap_or_else(|_| {
            panic!(
                "recv type mismatch: rank {} expected Vec<{}> from {} tag {}",
                self.rank,
                std::any::type_name::<T>(),
                src,
                tag
            )
        });
        (src, *data)
    }

    /// Non-blocking send (eager: completes immediately).
    pub fn isend<T: Send + 'static>(&mut self, dest: usize, tag: u32, data: Vec<T>) -> Request<T> {
        self.send(dest, tag, data);
        Request::Send
    }

    /// Post a non-blocking receive; complete it with [`Comm::wait`].
    pub fn irecv<T: Send + 'static>(&mut self, source: usize, tag: u32) -> Request<T> {
        Request::Recv {
            source: if source == ANY_SOURCE {
                None
            } else {
                Some(source)
            },
            tag,
            _marker: std::marker::PhantomData,
        }
    }

    /// Complete a request. Returns the payload for receives, `None` for
    /// sends. Blocked time is accounted as MPI wait time (Figure 7).
    pub fn wait<T: Send + 'static>(&mut self, req: Request<T>) -> Option<Vec<T>> {
        match req {
            Request::Send => None,
            Request::Recv { source, tag, .. } => {
                let src = source.unwrap_or(ANY_SOURCE);
                Some(self.recv(src, tag))
            }
        }
    }

    /// Complete a batch of requests, returning receive payloads in order.
    pub fn wait_all<T: Send + 'static>(&mut self, reqs: Vec<Request<T>>) -> Vec<Vec<T>> {
        reqs.into_iter().filter_map(|r| self.wait(r)).collect()
    }

    /// Non-blocking probe: is a matching message queued?
    pub fn iprobe(&self, source: usize, tag: u32) -> bool {
        let pat = Pattern {
            source: if source == ANY_SOURCE {
                None
            } else {
                Some(source)
            },
            tag,
        };
        // Peek without removing: take then re-deliver would reorder, so we
        // only report presence via a non-destructive scan.
        let mb: &Mailbox = &self.shared.mailboxes[self.rank];
        // Mailbox has no peek; emulate with try_take + redeliver only being
        // safe when no other thread receives for this rank (true: one thread
        // per rank). FIFO per (source,tag) is preserved because we re-insert
        // only after checking, and only sends from other threads can
        // interleave, which cannot overtake within the same (source,tag).
        if let Some(env) = mb.try_take(pat) {
            // push back to the *front-equivalent*: re-deliver and rely on
            // matching scan order; to strictly preserve order we must not
            // do this when a same-pattern message could arrive in between.
            // For a single-threaded-receiver mailbox this is sound.
            mb.deliver_front(env);
            true
        } else {
            false
        }
    }

    /// Synchronize all ranks; the blocked time counts as wait time.
    pub fn barrier(&mut self) {
        let t0 = std::time::Instant::now();
        self.shared.barrier.wait();
        let waited = t0.elapsed();
        self.stats.wait_seconds += waited.as_secs_f64();
        self.stats.barriers += 1;
        self.log_event(CommOp::Barrier, 0, 0);
        // Peer -1: barriers have no peer; bytes 0, tag -1.
        bwb_trace::span_retro(bwb_trace::Cat::Mpi, "barrier", waited, [-1.0, 0.0, -1.0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn ring_exchange() {
        let out = Universe::run(5, |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 1, vec![c.rank() as u32 * 10]);
            c.recv::<u32>(left, 1)[0]
        });
        assert_eq!(out.results, vec![40, 0, 10, 20, 30]);
    }

    #[test]
    fn any_source_receives_from_everyone() {
        let out = Universe::run(4, |c| {
            if c.rank() == 0 {
                let mut sum = 0u64;
                for _ in 1..c.size() {
                    let (_src, v) = c.recv_from::<u64>(ANY_SOURCE, 3);
                    sum += v[0];
                }
                sum
            } else {
                c.send(0, 3, vec![c.rank() as u64]);
                0
            }
        });
        assert_eq!(out.results[0], 1 + 2 + 3);
    }

    #[test]
    fn isend_irecv_wait() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                let r = c.irecv::<f64>(1, 0);
                let s = c.isend(1, 0, vec![1.5f64]);
                let got = c.wait(r).unwrap();
                c.wait(s);
                got[0]
            } else {
                let r = c.irecv::<f64>(0, 0);
                c.isend(0, 0, vec![2.5f64]);
                c.wait(r).unwrap()[0]
            }
        });
        assert_eq!(out.results, vec![2.5, 1.5]);
    }

    #[test]
    fn wait_all_collects_receives_in_order() {
        let out = Universe::run(3, |c| {
            if c.rank() == 0 {
                let reqs = vec![c.irecv::<u8>(1, 0), c.irecv::<u8>(2, 0)];
                let got = c.wait_all(reqs);
                (got[0][0], got[1][0])
            } else {
                c.send(0, 0, vec![c.rank() as u8]);
                (0, 0)
            }
        });
        assert_eq!(out.results[0], (1, 2));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![0u64; 100]);
            } else {
                let _ = c.recv::<u64>(0, 0);
            }
            c.stats()
        });
        assert_eq!(out.stats.per_rank[0].sends, 1);
        assert_eq!(out.stats.per_rank[0].bytes_sent, 800);
        assert_eq!(out.stats.per_rank[1].bytes_received, 800);
        assert!(out.stats.per_rank[0].modeled_latency_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn type_confusion_panics() {
        // The receiving rank panics with "recv type mismatch: ..."; the
        // scope propagates it as a scoped-thread panic at join.
        Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1u32]);
            } else {
                let _ = c.recv::<f64>(0, 0);
            }
        });
    }

    #[test]
    fn iprobe_sees_pending_message_and_preserves_it() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 9, vec![7i32]);
                c.barrier();
                true
            } else {
                c.barrier();
                let seen = c.iprobe(0, 9);
                let v = c.recv::<i32>(0, 9);
                seen && v[0] == 7
            }
        });
        assert!(out.results.iter().all(|&b| b));
    }

    #[test]
    fn barrier_counts() {
        let out = Universe::run(3, |c| {
            c.barrier();
            c.barrier();
            c.stats().barriers
        });
        assert!(out.results.iter().all(|&b| b == 2));
    }
}
