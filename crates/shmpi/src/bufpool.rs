//! Thread-local recycling pool for message pack/unpack buffers.
//!
//! [`crate::Comm::send`] transfers ownership of its `Vec` to the receiving
//! rank, so a sender cannot simply keep its pack buffer — but the receiver
//! ends up holding an allocation of exactly the right size once it has
//! unpacked. Routing finished buffers through this pool closes the loop:
//! halo exchanges are symmetric (every rank receives about as many strips
//! as it sends), so after the first exchange each rank packs into recycled
//! allocations and steady-state exchanges allocate nothing.
//!
//! The pool is thread-local (ranks are threads; no locking) and keyed by
//! element type, holding at most [`MAX_POOLED`] buffers per type so an
//! unusual burst cannot pin memory.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// Upper bound on pooled buffers per element type per thread.
const MAX_POOLED: usize = 16;

thread_local! {
    static POOL: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Take an empty buffer from this thread's pool (or a fresh one). The
/// returned `Vec` is empty but may carry capacity from a previous exchange.
pub fn take<T: 'static>() -> Vec<T> {
    POOL.with(|cell| {
        let mut map = cell.borrow_mut();
        map.get_mut(&TypeId::of::<T>())
            .and_then(|b| {
                b.downcast_mut::<Vec<Vec<T>>>()
                    .expect("pool entry type")
                    .pop()
            })
            .unwrap_or_default()
    })
}

/// Return a finished buffer to this thread's pool for reuse. The contents
/// are cleared; the allocation is kept (up to [`MAX_POOLED`] per type).
pub fn put<T: 'static>(mut buf: Vec<T>) {
    if buf.capacity() == 0 {
        return;
    }
    buf.clear();
    POOL.with(|cell| {
        let mut map = cell.borrow_mut();
        let entry = map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(Vec::<Vec<T>>::new()))
            .downcast_mut::<Vec<Vec<T>>>()
            .expect("pool entry type");
        if entry.len() < MAX_POOLED {
            entry.push(buf);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_round_trip_keeps_capacity() {
        let mut b = take::<f64>();
        b.extend_from_slice(&[1.0; 100]);
        let ptr = b.as_ptr();
        put(b);
        let b2 = take::<f64>();
        assert!(b2.is_empty());
        assert!(b2.capacity() >= 100);
        assert_eq!(b2.as_ptr(), ptr, "same allocation recycled");
        put(b2);
    }

    #[test]
    fn pools_are_per_type() {
        let mut f = take::<f32>();
        f.push(1.0);
        put(f);
        let u = take::<u32>();
        assert_eq!(u.capacity(), 0, "f32 buffer must not surface as u32");
        put(u);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        put(Vec::<u8>::new());
        let b = take::<u8>();
        assert_eq!(b.capacity(), 0);
    }
}
