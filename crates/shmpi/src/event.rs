//! Per-rank communication event logs — the raw material of commcheck.
//!
//! When logging is enabled ([`crate::Comm::enable_comm_log`], or wholesale
//! via [`crate::Universe::run_logged`]), every point-to-point operation,
//! barrier, and collective appends a [`CommEvent`] to the rank's
//! [`CommLog`]. The log records what the rank *said*: the operation, peer,
//! tag, payload size, and an optional `ctx` string attributing the event to
//! the dat / phase that triggered it (halo exchanges set this to the dat
//! name). `dslcheck::comm` merges the per-rank logs and replays them to
//! verify matching, deadlock-freedom, determinism, and balance.
//!
//! Recording deliberately captures *completed* operations plus enough
//! detail to reconstruct the pre-delivery state: for a `Recv`, both the
//! requested pattern (`source: None` = `ANY_SOURCE`) and the source that
//! actually matched. Replay re-derives whether that match was forced or a
//! race artifact.

use serde::Serialize;

/// What one communication event did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum CommOp {
    /// Eager buffered send to `dest`.
    Send { dest: usize },
    /// Blocking receive (or completed `irecv` wait). `source` is the
    /// requested pattern (`None` = `ANY_SOURCE`); `matched` is the rank the
    /// envelope actually came from.
    Recv {
        source: Option<usize>,
        matched: usize,
    },
    /// World barrier.
    Barrier,
    /// Collective entry marker (the constituent point-to-point traffic is
    /// logged separately as `Send`/`Recv` events carrying the collective's
    /// reserved tag). `kind` names the operation: "reduce", "bcast",
    /// "gather".
    Collective { kind: &'static str },
}

/// One recorded communication event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CommEvent {
    pub op: CommOp,
    /// Message tag (for `Barrier`, 0; for `Collective`, the base tag of the
    /// operation's reserved window).
    pub tag: u32,
    /// Payload bytes (0 for `Barrier` / `Collective` markers).
    pub bytes: usize,
    /// Dat / phase attribution, set by the layer that initiated the
    /// exchange (e.g. `"density0"` for an ops halo exchange, `"q"` for an
    /// op2 gather). `None` when the caller did not attribute.
    pub ctx: Option<String>,
}

/// The ordered event sequence one rank produced.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct CommLog {
    pub rank: usize,
    pub events: Vec<CommEvent>,
}

impl CommLog {
    pub fn new(rank: usize) -> Self {
        CommLog {
            rank,
            events: Vec::new(),
        }
    }

    /// Count of events matching a predicate (used by analyzers and tests).
    pub fn count(&self, f: impl Fn(&CommEvent) -> bool) -> usize {
        self.events.iter().filter(|e| f(e)).count()
    }

    /// Total sends recorded.
    pub fn sends(&self) -> usize {
        self.count(|e| matches!(e.op, CommOp::Send { .. }))
    }

    /// Total receives recorded.
    pub fn recvs(&self) -> usize {
        self.count(|e| matches!(e.op, CommOp::Recv { .. }))
    }

    /// Total barrier entries recorded.
    pub fn barriers(&self) -> usize {
        self.count(|e| matches!(e.op, CommOp::Barrier))
    }

    /// The sequence of collective kinds, in program order.
    pub fn collective_kinds(&self) -> Vec<&'static str> {
        self.events
            .iter()
            .filter_map(|e| match e.op {
                CommOp::Collective { kind } => Some(kind),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_counters() {
        let mut log = CommLog::new(2);
        log.events.push(CommEvent {
            op: CommOp::Send { dest: 1 },
            tag: 5,
            bytes: 64,
            ctx: Some("density".into()),
        });
        log.events.push(CommEvent {
            op: CommOp::Recv {
                source: None,
                matched: 3,
            },
            tag: 5,
            bytes: 64,
            ctx: None,
        });
        log.events.push(CommEvent {
            op: CommOp::Barrier,
            tag: 0,
            bytes: 0,
            ctx: None,
        });
        log.events.push(CommEvent {
            op: CommOp::Collective { kind: "reduce" },
            tag: 0x8000_0000,
            bytes: 0,
            ctx: None,
        });
        assert_eq!(log.sends(), 1);
        assert_eq!(log.recvs(), 1);
        assert_eq!(log.barriers(), 1);
        assert_eq!(log.collective_kinds(), vec!["reduce"]);
    }
}
