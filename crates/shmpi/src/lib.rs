//! # bwb-shmpi — in-process message passing
//!
//! The paper runs every application over Intel MPI, with ranks placed one
//! per core (pure MPI) or one per NUMA domain (MPI+OpenMP / MPI+SYCL), and
//! quantifies the time spent in `MPI_Wait` (Figure 7). This crate is the
//! substitute substrate: **ranks are OS threads** inside one process,
//! point-to-point messages are buffered envelopes delivered through per-rank
//! mailboxes, and every blocking entry point accounts the time it blocked —
//! the same instrument the paper reads.
//!
//! Semantics follow MPI where it matters to the benchmarked codes:
//!
//! * eager buffered `send` (never blocks), blocking `recv` with
//!   `(source, tag)` matching and FIFO order per (source, tag) pair;
//! * non-blocking `isend`/`irecv` returning [`Request`]s completed by
//!   `wait`/`wait_all`;
//! * collectives: `barrier`, `allreduce`, `reduce`, `bcast`, `gather`,
//!   `allgather`;
//! * Cartesian topologies with `dims_create`-style factorization and
//!   neighbour shifts — the decomposition used by all structured-mesh apps;
//! * per-rank [`RankStats`] (messages, bytes, blocked wall time, and a
//!   *modelled* latency account driven by the [`bwb_machine`] placement and
//!   latency profile, so figure generation can ask "what would this
//!   communication pattern cost on the Xeon MAX?").
//!
//! ## Example
//!
//! ```
//! use bwb_shmpi::Universe;
//!
//! let out = Universe::run(4, |comm| {
//!     // ring: send rank to the right, receive from the left
//!     let right = (comm.rank() + 1) % comm.size();
//!     let left = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.send(right, 0, vec![comm.rank() as u64]);
//!     let got = comm.recv::<u64>(left, 0);
//!     got[0]
//! });
//! assert_eq!(out.results, vec![3, 0, 1, 2]);
//! ```

pub mod bufpool;
pub mod cart;
pub mod collectives;
pub mod comm;
pub mod event;
pub mod mailbox;
pub mod stats;
pub mod universe;

pub use cart::CartComm;
pub use collectives::{ReduceOp, COLL_TAG_BASE};
pub use comm::{Comm, Request, ANY_SOURCE, SW_OVERHEAD_NS};
pub use event::{CommEvent, CommLog, CommOp};
pub use mailbox::{Envelope, LockedMailbox, Mailbox, MailboxKind, Pattern, SpscMailbox, SpscRing};
pub use stats::{CommDetail, PeerStats, RankStats, WorldStats, SIZE_HIST_BUCKETS};
pub use universe::{RunOutput, Universe};
