//! Per-rank mailboxes: the transport under point-to-point messaging.
//!
//! Each rank owns one [`Mailbox`] guarded by a `parking_lot` mutex +
//! condvar. Senders push [`Envelope`]s (eager/buffered semantics — a send
//! never blocks); receivers scan for the first envelope matching
//! `(source, tag)` and park on the condvar when none is present. Matching
//! preserves FIFO order per (source, tag) pair, as MPI requires
//! ("non-overtaking" rule).

// Under `--cfg loom` the lock primitives come from the loom stand-in so the
// deliver/take_blocking/deliver_front protocol can be model-checked across
// randomized schedules (see crates/shmpi/tests/loom_mailbox.rs).
#[cfg(loom)]
use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A buffered in-flight message.
pub struct Envelope {
    pub source: usize,
    pub tag: u32,
    /// The payload, type-erased (`Vec<T>` boxed as `Any`).
    pub data: Box<dyn Any + Send>,
    /// Payload size in bytes (recorded at send time for statistics).
    pub bytes: usize,
}

/// Match criteria for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// `None` = MPI_ANY_SOURCE.
    pub source: Option<usize>,
    pub tag: u32,
}

impl Pattern {
    fn matches(&self, e: &Envelope) -> bool {
        self.tag == e.tag && self.source.is_none_or(|s| s == e.source)
    }
}

#[derive(Default)]
struct Queue {
    envelopes: VecDeque<Envelope>,
}

/// One rank's incoming-message buffer.
#[derive(Default)]
pub struct Mailbox {
    queue: Mutex<Queue>,
    available: Condvar,
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver an envelope (called by the *sender*). Never blocks.
    pub fn deliver(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.envelopes.push_back(env);
        // More than one receiver thread never waits on one rank's mailbox in
        // correct programs, but notify_all is robust against probe users.
        self.available.notify_all();
    }

    /// Take the first matching envelope, blocking until one arrives.
    /// Returns the envelope and the wall-clock time spent blocked.
    pub fn take_blocking(&self, pat: Pattern) -> (Envelope, Duration) {
        let start = Instant::now();
        let mut q = self.queue.lock();
        loop {
            if let Some(idx) = q.envelopes.iter().position(|e| pat.matches(e)) {
                let env = q.envelopes.remove(idx).expect("index valid");
                return (env, start.elapsed());
            }
            self.available.wait(&mut q);
        }
    }

    /// Re-insert an envelope at the *front* of the queue. Used by probe
    /// implementations that must not reorder messages; sound only while a
    /// single thread receives from this mailbox (our one-thread-per-rank
    /// invariant).
    pub fn deliver_front(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.envelopes.push_front(env);
        self.available.notify_all();
    }

    /// Non-blocking probe-and-take.
    pub fn try_take(&self, pat: Pattern) -> Option<Envelope> {
        let mut q = self.queue.lock();
        let idx = q.envelopes.iter().position(|e| pat.matches(e))?;
        q.envelopes.remove(idx)
    }

    /// Number of queued envelopes (diagnostics).
    pub fn len(&self) -> usize {
        self.queue.lock().envelopes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(source: usize, tag: u32, payload: Vec<u64>) -> Envelope {
        let bytes = payload.len() * 8;
        Envelope {
            source,
            tag,
            data: Box::new(payload),
            bytes,
        }
    }

    #[test]
    fn deliver_then_take() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 7, vec![42]));
        let (e, _) = mb.take_blocking(Pattern {
            source: Some(1),
            tag: 7,
        });
        assert_eq!(e.source, 1);
        assert_eq!(e.bytes, 8);
        let v = e.data.downcast::<Vec<u64>>().unwrap();
        assert_eq!(*v, vec![42]);
    }

    #[test]
    fn tag_matching_skips_non_matching() {
        let mb = Mailbox::new();
        mb.deliver(env(0, 1, vec![1]));
        mb.deliver(env(0, 2, vec![2]));
        let (e, _) = mb.take_blocking(Pattern {
            source: Some(0),
            tag: 2,
        });
        let v = e.data.downcast::<Vec<u64>>().unwrap();
        assert_eq!(*v, vec![2]);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn fifo_order_within_source_tag_pair() {
        let mb = Mailbox::new();
        mb.deliver(env(3, 9, vec![1]));
        mb.deliver(env(3, 9, vec![2]));
        let (a, _) = mb.take_blocking(Pattern {
            source: Some(3),
            tag: 9,
        });
        let (b, _) = mb.take_blocking(Pattern {
            source: Some(3),
            tag: 9,
        });
        assert_eq!(*a.data.downcast::<Vec<u64>>().unwrap(), vec![1]);
        assert_eq!(*b.data.downcast::<Vec<u64>>().unwrap(), vec![2]);
    }

    #[test]
    fn any_source_matches_first_arrival() {
        let mb = Mailbox::new();
        mb.deliver(env(5, 0, vec![5]));
        let (e, _) = mb.take_blocking(Pattern {
            source: None,
            tag: 0,
        });
        assert_eq!(e.source, 5);
    }

    #[test]
    fn try_take_returns_none_when_empty() {
        let mb = Mailbox::new();
        assert!(mb
            .try_take(Pattern {
                source: None,
                tag: 0
            })
            .is_none());
        assert!(mb.is_empty());
    }

    #[test]
    fn blocking_take_wakes_on_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            let (e, waited) = mb2.take_blocking(Pattern {
                source: Some(0),
                tag: 0,
            });
            (e.bytes, waited)
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.deliver(env(0, 0, vec![1, 2, 3]));
        let (bytes, waited) = h.join().unwrap();
        assert_eq!(bytes, 24);
        assert!(waited >= Duration::from_millis(5), "blocked time recorded");
    }
}
