//! Per-rank mailboxes: the transport under point-to-point messaging.
//!
//! Two interchangeable transports sit behind the [`Mailbox`] dispatch
//! enum, selected per-world by [`MailboxKind`]:
//!
//! * [`LockedMailbox`] (default) — one queue guarded by a `parking_lot`
//!   mutex + condvar. Senders push [`Envelope`]s (eager/buffered
//!   semantics — a send never blocks); the receiver scans for the first
//!   envelope matching `(source, tag)` and parks on the condvar when
//!   none is present.
//! * [`SpscMailbox`] (`SHMPI_MAILBOX=spsc`, or
//!   `Universe::run_with_mailbox`) — one lock-free single-producer /
//!   single-consumer ring per source rank plus a receiver-owned stash
//!   for envelopes popped out of tag order. The hot deliver/take path is
//!   wait-free except when a ring is full (sender spin-yields) or the
//!   mailbox is empty (receiver parks via a Dekker-style flag +
//!   `thread::park`). The ring protocol is certified by bounded
//!   exhaustive DPOR exploration in `tests/loom_spsc.rs` and the whole
//!   mailbox by the bit-identity tests in `dslcheck`.
//!
//! Both transports preserve FIFO order per (source, tag) pair, as MPI
//! requires ("non-overtaking" rule): within one source the stash is
//! always older than the ring, and both are scanned in arrival order.

// Under `--cfg loom` the primitives come from the vendored loom DPOR
// model checker so the deliver/take_blocking/deliver_front protocols can
// be verified across *all* bounded interleavings (see
// crates/shmpi/tests/loom_mailbox.rs and tests/loom_spsc.rs).
#[cfg(loom)]
use loom::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
#[cfg(loom)]
use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
use parking_lot::{Condvar, Mutex};
#[cfg(not(loom))]
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};

use std::any::Any;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::time::{Duration, Instant};

/// A buffered in-flight message.
pub struct Envelope {
    pub source: usize,
    pub tag: u32,
    /// The payload, type-erased (`Vec<T>` boxed as `Any`).
    pub data: Box<dyn Any + Send>,
    /// Payload size in bytes (recorded at send time for statistics).
    pub bytes: usize,
}

/// Match criteria for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// `None` = MPI_ANY_SOURCE.
    pub source: Option<usize>,
    pub tag: u32,
}

impl Pattern {
    fn matches(&self, e: &Envelope) -> bool {
        self.tag == e.tag && self.source.is_none_or(|s| s == e.source)
    }
}

// ---------------------------------------------------------------------------
// Locked transport (default)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Queue {
    envelopes: VecDeque<Envelope>,
}

/// One rank's incoming-message buffer, mutex+condvar transport.
#[derive(Default)]
pub struct LockedMailbox {
    queue: Mutex<Queue>,
    available: Condvar,
}

impl LockedMailbox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver an envelope (called by the *sender*). Never blocks.
    pub fn deliver(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.envelopes.push_back(env);
        // More than one receiver thread never waits on one rank's mailbox in
        // correct programs, but notify_all is robust against probe users.
        self.available.notify_all();
    }

    /// Take the first matching envelope, blocking until one arrives.
    /// Returns the envelope and the wall-clock time spent blocked.
    pub fn take_blocking(&self, pat: Pattern) -> (Envelope, Duration) {
        let start = Instant::now();
        let mut q = self.queue.lock();
        loop {
            if let Some(idx) = q.envelopes.iter().position(|e| pat.matches(e)) {
                let env = q.envelopes.remove(idx).expect("index valid");
                return (env, start.elapsed());
            }
            self.available.wait(&mut q);
        }
    }

    /// Re-insert an envelope at the *front* of the queue. Used by probe
    /// implementations that must not reorder messages; sound only while a
    /// single thread receives from this mailbox (our one-thread-per-rank
    /// invariant).
    pub fn deliver_front(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.envelopes.push_front(env);
        self.available.notify_all();
    }

    /// Non-blocking probe-and-take.
    pub fn try_take(&self, pat: Pattern) -> Option<Envelope> {
        let mut q = self.queue.lock();
        let idx = q.envelopes.iter().position(|e| pat.matches(e))?;
        q.envelopes.remove(idx)
    }

    /// Number of queued envelopes (diagnostics).
    pub fn len(&self) -> usize {
        self.queue.lock().envelopes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Lock-free SPSC ring transport
// ---------------------------------------------------------------------------

/// Under loom the slot cell is the modeled `UnsafeCell` (every access is
/// a scheduling point with read/write conflict tracking); natively it is
/// a thin wrapper over `std::cell::UnsafeCell` with the same closure API
/// so the ring code is written once.
#[cfg(loom)]
use loom::cell::UnsafeCell as SlotCell;

#[cfg(not(loom))]
struct SlotCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> SlotCell<T> {
    fn new(v: T) -> Self {
        SlotCell(std::cell::UnsafeCell::new(v))
    }
    fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }
    fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

/// Pads (and aligns) the producer and consumer cursors to separate cache
/// lines so the SPSC hot path does not false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// A bounded lock-free single-producer / single-consumer ring.
///
/// Contract (callers must uphold; the type cannot enforce it statically):
/// at most one thread calls [`SpscRing::push`] and at most one (other)
/// thread calls [`SpscRing::pop`], concurrently. In shmpi, ring `s` of
/// rank `r`'s mailbox is written only by rank `s`'s thread and read only
/// by rank `r`'s thread, which is exactly this shape.
///
/// Cursors are monotonically increasing (wrapping) counters; the slot
/// index is `cursor & mask`. `tail` is published with `Release` after
/// the slot write and read with `Acquire` before the slot read, so the
/// consumer never observes a slot before its contents. Certified for all
/// bounded interleavings by `tests/loom_spsc.rs`.
pub struct SpscRing<T> {
    slots: Box<[SlotCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Consumer cursor: next position to pop. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Producer cursor: next position to push. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring moves `T` values between exactly one producer and one
// consumer thread (see the type-level contract above); a slot is accessed
// by the producer only while `head <= pos < tail+1` is unpublished and by
// the consumer only after the `Release`-published `tail` covers it, so no
// slot is ever accessed concurrently. `T: Send` makes the move itself safe.
unsafe impl<T: Send> Send for SpscRing<T> {}
// SAFETY: as above — shared references only permit the disjoint
// producer/consumer protocols, never concurrent access to one slot.
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// `capacity` is rounded up to a power of two, minimum 2.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        SpscRing {
            slots: (0..cap)
                .map(|_| SlotCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: cap - 1,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Producer side: append `value`, or hand it back if the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        // Producer owns `tail`; a relaxed load reads its own last store.
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.capacity() {
            return Err(value);
        }
        self.slots[tail & self.mask].with_mut(|slot| {
            // SAFETY: position `tail` is not yet published (consumer stops
            // at the current `tail`), and the `Acquire` on `head` proves
            // the consumer has vacated this slot from the previous lap, so
            // the producer holds the only reference to it.
            unsafe { (*slot).write(value) };
        });
        // Publish: everything written to the slot happens-before a
        // consumer that Acquire-loads this tail value.
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: take the oldest value, if any.
    pub fn pop(&self) -> Option<T> {
        // Consumer owns `head`; a relaxed load reads its own last store.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let value = self.slots[head & self.mask].with(|slot| {
            // SAFETY: `head < tail` with `tail` Acquire-loaded, so the
            // producer's slot write at this position happens-before this
            // read; the producer will not touch the slot again until the
            // consumer publishes `head+1` below, and `assume_init_read`
            // moves the value out exactly once (the cursor advances
            // unconditionally right after).
            unsafe { (*slot).assume_init_read() }
        });
        // Release: the producer's Acquire of `head` proves the slot has
        // been vacated before it reuses it on the next lap.
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Queued element count (exact only from the producer or consumer
    /// thread; a snapshot elsewhere).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drain undelivered values so their destructors run; `&mut self`
        // means no concurrent producer/consumer exists any more.
        while self.pop().is_some() {}
    }
}

/// Default per-source ring capacity (envelopes); override with
/// `SHMPI_MAILBOX_CAP`. Small is fine: a full ring only spin-yields the
/// sender, and halo exchanges post a handful of messages per neighbor.
const DEFAULT_RING_CAP: usize = 16;

fn ring_cap_from_env() -> usize {
    std::env::var("SHMPI_MAILBOX_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_RING_CAP)
}

/// Lock-free mailbox: one [`SpscRing`] per source rank plus a
/// receiver-owned stash for envelopes popped while scanning for a
/// different `(source, tag)`.
///
/// The stash mutex is uncontended by construction — only the single
/// receiver thread (and teardown diagnostics after all ranks joined)
/// ever locks it — so the deliver path stays lock-free and the take
/// path pays one uncontended lock acquisition.
pub struct SpscMailbox {
    rings: Box<[SpscRing<Envelope>]>,
    stash: Mutex<VecDeque<Envelope>>,
    /// Dekker-style wake flag: set by the receiver before re-checking
    /// the rings and parking; cleared (swap) by a sender that will
    /// unpark. `SeqCst` on both sides — see `take_blocking`.
    parked: AtomicBool,
    #[cfg(not(loom))]
    receiver: std::sync::OnceLock<std::thread::Thread>,
}

impl SpscMailbox {
    /// A mailbox able to receive from `world_size` source ranks.
    pub fn new(world_size: usize) -> Self {
        Self::with_ring_capacity(world_size, ring_cap_from_env())
    }

    pub fn with_ring_capacity(world_size: usize, ring_cap: usize) -> Self {
        SpscMailbox {
            rings: (0..world_size.max(1))
                .map(|_| SpscRing::with_capacity(ring_cap))
                .collect(),
            stash: Mutex::new(VecDeque::new()),
            parked: AtomicBool::new(false),
            #[cfg(not(loom))]
            receiver: std::sync::OnceLock::new(),
        }
    }

    fn backoff() {
        #[cfg(loom)]
        loom::thread::yield_now();
        #[cfg(not(loom))]
        std::thread::yield_now();
    }

    /// Deliver an envelope (called by the *sender*). Lock-free; only
    /// spin-yields while this source's ring is full (bounded-buffer
    /// backpressure — eager-send semantics still hold because the
    /// receiver drains rings into the unbounded stash on every take).
    pub fn deliver(&self, env: Envelope) {
        debug_assert!(env.source < self.rings.len(), "source rank out of range");
        let ring = &self.rings[env.source];
        let mut env = env;
        loop {
            match ring.push(env) {
                Ok(()) => break,
                Err(back) => {
                    env = back;
                    Self::backoff();
                }
            }
        }
        self.wake_receiver();
    }

    fn wake_receiver(&self) {
        // Pairs with the store(true) + re-check in `take_blocking`: the
        // fence orders our ring publish before the flag read, so either
        // we observe `parked` and unpark, or the receiver's re-check
        // (after its own SeqCst store) observes our publish.
        fence(Ordering::SeqCst);
        if self.parked.swap(false, Ordering::SeqCst) {
            #[cfg(not(loom))]
            if let Some(t) = self.receiver.get() {
                t.unpark();
            }
        }
    }

    /// Drain every source ring into the stash (in per-source FIFO
    /// order), then take the first stash entry matching `pat`. Receiver
    /// thread only.
    pub fn try_take(&self, pat: Pattern) -> Option<Envelope> {
        let mut stash = self.stash.lock();
        for ring in &self.rings {
            while let Some(env) = ring.pop() {
                stash.push_back(env);
            }
        }
        let idx = stash.iter().position(|e| pat.matches(e))?;
        stash.remove(idx)
    }

    /// Take the first matching envelope, blocking until one arrives.
    /// Returns the envelope and the wall-clock time spent blocked.
    /// Receiver thread only (the single-receiver invariant the whole
    /// transport is built on).
    pub fn take_blocking(&self, pat: Pattern) -> (Envelope, Duration) {
        let start = Instant::now();
        #[cfg(not(loom))]
        let _ = self.receiver.set(std::thread::current());
        loop {
            if let Some(env) = self.try_take(pat) {
                return (env, start.elapsed());
            }
            // Dekker handshake against `wake_receiver`: with SeqCst on
            // both flag accesses and the sender's fence, either the
            // sender's swap sees `true` (and unparks us, making the
            // park below return immediately via the pending token) or
            // this re-check sees the sender's ring publish.
            self.parked.store(true, Ordering::SeqCst);
            if let Some(env) = self.try_take(pat) {
                self.parked.store(false, Ordering::SeqCst);
                return (env, start.elapsed());
            }
            #[cfg(not(loom))]
            std::thread::park();
            #[cfg(loom)]
            Self::backoff();
            self.parked.store(false, Ordering::SeqCst);
        }
    }

    /// Re-insert an envelope at the *front* (probe support). Receiver
    /// thread only, like `deliver_front` on the locked transport.
    pub fn deliver_front(&self, env: Envelope) {
        self.stash.lock().push_front(env);
    }

    /// Number of queued envelopes (diagnostics; exact once all senders
    /// and the receiver have quiesced, e.g. at teardown).
    pub fn len(&self) -> usize {
        self.stash.lock().len() + self.rings.iter().map(SpscRing::len).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Which mailbox transport a world uses. Worlds default to
/// [`MailboxKind::Locked`]; opt in to the lock-free transport with
/// `Universe::run_with_mailbox` or `SHMPI_MAILBOX=spsc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MailboxKind {
    /// Mutex + condvar queue (default).
    #[default]
    Locked,
    /// Lock-free per-source SPSC rings + receiver stash.
    Spsc,
}

impl MailboxKind {
    /// `SHMPI_MAILBOX=spsc` selects the lock-free transport; anything
    /// else (including unset) selects the locked default.
    pub fn from_env() -> Self {
        match std::env::var("SHMPI_MAILBOX").as_deref() {
            Ok("spsc") => MailboxKind::Spsc,
            _ => MailboxKind::Locked,
        }
    }
}

/// One rank's incoming-message buffer (transport-dispatching facade).
pub enum Mailbox {
    Locked(LockedMailbox),
    Spsc(SpscMailbox),
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox::Locked(LockedMailbox::default())
    }
}

impl Mailbox {
    /// The default (locked) transport.
    pub fn new() -> Self {
        Self::default()
    }

    /// A mailbox of the given kind for a world of `world_size` ranks.
    pub fn with_kind(kind: MailboxKind, world_size: usize) -> Self {
        match kind {
            MailboxKind::Locked => Mailbox::Locked(LockedMailbox::new()),
            MailboxKind::Spsc => Mailbox::Spsc(SpscMailbox::new(world_size)),
        }
    }

    pub fn kind(&self) -> MailboxKind {
        match self {
            Mailbox::Locked(_) => MailboxKind::Locked,
            Mailbox::Spsc(_) => MailboxKind::Spsc,
        }
    }

    /// Deliver an envelope (called by the *sender*).
    pub fn deliver(&self, env: Envelope) {
        match self {
            Mailbox::Locked(m) => m.deliver(env),
            Mailbox::Spsc(m) => m.deliver(env),
        }
    }

    /// Take the first matching envelope, blocking until one arrives.
    /// Returns the envelope and the wall-clock time spent blocked.
    pub fn take_blocking(&self, pat: Pattern) -> (Envelope, Duration) {
        match self {
            Mailbox::Locked(m) => m.take_blocking(pat),
            Mailbox::Spsc(m) => m.take_blocking(pat),
        }
    }

    /// Re-insert an envelope at the *front* of the queue (probe
    /// support); sound only from the single receiver thread.
    pub fn deliver_front(&self, env: Envelope) {
        match self {
            Mailbox::Locked(m) => m.deliver_front(env),
            Mailbox::Spsc(m) => m.deliver_front(env),
        }
    }

    /// Non-blocking probe-and-take.
    pub fn try_take(&self, pat: Pattern) -> Option<Envelope> {
        match self {
            Mailbox::Locked(m) => m.try_take(pat),
            Mailbox::Spsc(m) => m.try_take(pat),
        }
    }

    /// Number of queued envelopes (diagnostics).
    pub fn len(&self) -> usize {
        match self {
            Mailbox::Locked(m) => m.len(),
            Mailbox::Spsc(m) => m.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(source: usize, tag: u32, payload: Vec<u64>) -> Envelope {
        let bytes = payload.len() * 8;
        Envelope {
            source,
            tag,
            data: Box::new(payload),
            bytes,
        }
    }

    fn both_kinds() -> [Mailbox; 2] {
        [
            Mailbox::with_kind(MailboxKind::Locked, 8),
            Mailbox::with_kind(MailboxKind::Spsc, 8),
        ]
    }

    #[test]
    fn deliver_then_take() {
        for mb in both_kinds() {
            mb.deliver(env(1, 7, vec![42]));
            let (e, _) = mb.take_blocking(Pattern {
                source: Some(1),
                tag: 7,
            });
            assert_eq!(e.source, 1);
            assert_eq!(e.bytes, 8);
            let v = e.data.downcast::<Vec<u64>>().unwrap();
            assert_eq!(*v, vec![42]);
        }
    }

    #[test]
    fn tag_matching_skips_non_matching() {
        for mb in both_kinds() {
            mb.deliver(env(0, 1, vec![1]));
            mb.deliver(env(0, 2, vec![2]));
            let (e, _) = mb.take_blocking(Pattern {
                source: Some(0),
                tag: 2,
            });
            let v = e.data.downcast::<Vec<u64>>().unwrap();
            assert_eq!(*v, vec![2]);
            assert_eq!(mb.len(), 1);
        }
    }

    #[test]
    fn fifo_order_within_source_tag_pair() {
        for mb in both_kinds() {
            mb.deliver(env(3, 9, vec![1]));
            mb.deliver(env(3, 9, vec![2]));
            let (a, _) = mb.take_blocking(Pattern {
                source: Some(3),
                tag: 9,
            });
            let (b, _) = mb.take_blocking(Pattern {
                source: Some(3),
                tag: 9,
            });
            assert_eq!(*a.data.downcast::<Vec<u64>>().unwrap(), vec![1]);
            assert_eq!(*b.data.downcast::<Vec<u64>>().unwrap(), vec![2]);
        }
    }

    #[test]
    fn any_source_matches_first_arrival() {
        for mb in both_kinds() {
            mb.deliver(env(5, 0, vec![5]));
            let (e, _) = mb.take_blocking(Pattern {
                source: None,
                tag: 0,
            });
            assert_eq!(e.source, 5);
        }
    }

    #[test]
    fn try_take_returns_none_when_empty() {
        for mb in both_kinds() {
            assert!(mb
                .try_take(Pattern {
                    source: None,
                    tag: 0
                })
                .is_none());
            assert!(mb.is_empty());
        }
    }

    #[test]
    fn blocking_take_wakes_on_delivery() {
        for mb in both_kinds() {
            let mb = Arc::new(mb);
            let mb2 = mb.clone();
            let h = std::thread::spawn(move || {
                let (e, waited) = mb2.take_blocking(Pattern {
                    source: Some(0),
                    tag: 0,
                });
                (e.bytes, waited)
            });
            std::thread::sleep(Duration::from_millis(20));
            mb.deliver(env(0, 0, vec![1, 2, 3]));
            let (bytes, waited) = h.join().unwrap();
            assert_eq!(bytes, 24);
            assert!(waited >= Duration::from_millis(5), "blocked time recorded");
        }
    }

    #[test]
    fn spsc_ring_fifo_and_full() {
        let ring: SpscRing<u64> = SpscRing::with_capacity(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            assert!(ring.push(i).is_ok());
        }
        assert_eq!(ring.push(99), Err(99), "full ring hands the value back");
        assert_eq!(ring.len(), 4);
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn spsc_ring_wraps_many_laps() {
        let ring: SpscRing<usize> = SpscRing::with_capacity(2);
        for lap in 0..1000 {
            assert!(ring.push(lap).is_ok());
            assert_eq!(ring.pop(), Some(lap));
        }
    }

    #[test]
    fn spsc_ring_drop_releases_queued_values() {
        let marker = Arc::new(());
        {
            let ring: SpscRing<Arc<()>> = SpscRing::with_capacity(8);
            ring.push(marker.clone()).unwrap();
            ring.push(marker.clone()).unwrap();
            assert_eq!(Arc::strong_count(&marker), 3);
        }
        assert_eq!(Arc::strong_count(&marker), 1, "drop drains the ring");
    }

    #[test]
    fn spsc_ring_cross_thread_stream() {
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::with_capacity(4));
        let producer = ring.clone();
        let n: u64 = if cfg!(miri) { 64 } else { 4096 };
        let h = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                while let Err(back) = producer.push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut next = 0u64;
        while next < n {
            match ring.pop() {
                Some(v) => {
                    assert_eq!(v, next, "FIFO order");
                    next += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        h.join().unwrap();
        assert!(ring.is_empty());
    }

    #[test]
    fn spsc_backpressure_on_tiny_ring() {
        // Ring of 2, six messages: senders must spin on full and nothing
        // may be lost or reordered.
        let mb = Arc::new(Mailbox::Spsc(SpscMailbox::with_ring_capacity(2, 2)));
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            for i in 0..6u64 {
                mb2.deliver(env(1, 5, vec![i]));
            }
        });
        for i in 0..6u64 {
            let (e, _) = mb.take_blocking(Pattern {
                source: Some(1),
                tag: 5,
            });
            assert_eq!(*e.data.downcast::<Vec<u64>>().unwrap(), vec![i]);
        }
        h.join().unwrap();
        assert!(mb.is_empty());
    }

    #[test]
    fn spsc_stash_preserves_per_source_fifo_across_tags() {
        // Envelope with a not-yet-wanted tag gets stashed; the later
        // matching take must still return same-tag envelopes in order.
        let mb = Mailbox::with_kind(MailboxKind::Spsc, 4);
        mb.deliver(env(2, 8, vec![1]));
        mb.deliver(env(2, 9, vec![2]));
        mb.deliver(env(2, 8, vec![3]));
        let (a, _) = mb.take_blocking(Pattern {
            source: Some(2),
            tag: 9,
        });
        assert_eq!(*a.data.downcast::<Vec<u64>>().unwrap(), vec![2]);
        let (b, _) = mb.take_blocking(Pattern {
            source: Some(2),
            tag: 8,
        });
        let (c, _) = mb.take_blocking(Pattern {
            source: Some(2),
            tag: 8,
        });
        assert_eq!(*b.data.downcast::<Vec<u64>>().unwrap(), vec![1]);
        assert_eq!(*c.data.downcast::<Vec<u64>>().unwrap(), vec![3]);
        assert!(mb.is_empty());
    }

    #[test]
    fn mailbox_kind_from_env_defaults_locked() {
        // Not testing the env-set path (process-global state); the
        // parser itself is covered by with_kind + kind().
        assert_eq!(Mailbox::new().kind(), MailboxKind::Locked);
        assert_eq!(
            Mailbox::with_kind(MailboxKind::Spsc, 4).kind(),
            MailboxKind::Spsc
        );
    }
}
