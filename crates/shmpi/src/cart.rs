//! Cartesian process topologies — the decomposition used by every
//! structured-mesh application in the paper ("a standard cartesian mesh
//! decomposition is used over MPI, with ghost cell exchanges triggered as
//! needed", §4).

use serde::{Deserialize, Serialize};

/// A Cartesian layout of `size` ranks over `ndims` dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CartComm {
    dims: Vec<usize>,
    periodic: Vec<bool>,
    size: usize,
}

/// Balanced factorization of `size` into `ndims` factors, largest first —
/// the spirit of `MPI_Dims_create`.
pub fn dims_create(size: usize, ndims: usize) -> Vec<usize> {
    assert!(size > 0 && ndims > 0);
    let mut dims = vec![1usize; ndims];
    let mut rem = size;
    // Repeatedly strip the smallest prime factor and assign it to the
    // currently-smallest dimension.
    let mut factors = Vec::new();
    let mut f = 2;
    while f * f <= rem {
        while rem.is_multiple_of(f) {
            factors.push(f);
            rem /= f;
        }
        f += 1;
    }
    if rem > 1 {
        factors.push(rem);
    }
    // Largest factors first, into the smallest dim.
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let i = (0..ndims).min_by_key(|&i| dims[i]).unwrap();
        dims[i] *= f;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

impl CartComm {
    /// Create a topology with explicit dims. `dims` must multiply to `size`.
    pub fn new(size: usize, dims: Vec<usize>, periodic: Vec<bool>) -> Self {
        assert_eq!(
            dims.iter().product::<usize>(),
            size,
            "dims {:?} != size {}",
            dims,
            size
        );
        assert_eq!(dims.len(), periodic.len());
        CartComm {
            dims,
            periodic,
            size,
        }
    }

    /// Create with a balanced `dims_create` factorization, non-periodic.
    pub fn balanced(size: usize, ndims: usize) -> Self {
        let dims = dims_create(size, ndims);
        let periodic = vec![false; ndims];
        CartComm {
            dims,
            periodic,
            size,
        }
    }

    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Row-major coordinates of `rank`.
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.size);
        let mut c = vec![0usize; self.ndims()];
        let mut r = rank;
        for d in (0..self.ndims()).rev() {
            c[d] = r % self.dims[d];
            r /= self.dims[d];
        }
        c
    }

    /// Rank at the given coordinates.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.ndims());
        let mut r = 0usize;
        for (&c, &dim) in coords.iter().zip(&self.dims) {
            assert!(c < dim);
            r = r * dim + c;
        }
        r
    }

    /// Neighbour of `rank` displaced by `disp` (±1 typically) along `dim`.
    /// Returns `None` at a non-periodic boundary.
    pub fn shift(&self, rank: usize, dim: usize, disp: isize) -> Option<usize> {
        let mut coords = self.coords_of(rank);
        let extent = self.dims[dim] as isize;
        let pos = coords[dim] as isize + disp;
        let new = if self.periodic[dim] {
            pos.rem_euclid(extent)
        } else if (0..extent).contains(&pos) {
            pos
        } else {
            return None;
        };
        coords[dim] = new as usize;
        Some(self.rank_of(&coords))
    }

    /// All face-neighbours (dim, direction, rank) of `rank`.
    pub fn neighbors(&self, rank: usize) -> Vec<(usize, isize, usize)> {
        let mut out = Vec::new();
        for d in 0..self.ndims() {
            for disp in [-1isize, 1] {
                if let Some(n) = self.shift(rank, d, disp) {
                    if n != rank {
                        out.push((d, disp, n));
                    }
                }
            }
        }
        out
    }

    /// Split a global extent `n` along `dim` for `rank`: returns
    /// `(start, len)` with remainder cells distributed to the low ranks.
    pub fn decompose_1d(&self, rank: usize, dim: usize, n: usize) -> (usize, usize) {
        let parts = self.dims[dim];
        let coord = self.coords_of(rank)[dim];
        let base = n / parts;
        let rem = n % parts;
        let len = base + usize::from(coord < rem);
        let start = coord * base + coord.min(rem);
        (start, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_create_balanced() {
        assert_eq!(dims_create(12, 2), vec![4, 3]);
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(dims_create(7, 2), vec![7, 1]);
        assert_eq!(dims_create(1, 3), vec![1, 1, 1]);
        assert_eq!(dims_create(112, 2), vec![14, 8]);
    }

    #[test]
    fn dims_product_always_equals_size() {
        for size in 1..=64 {
            for nd in 1..=3 {
                let d = dims_create(size, nd);
                assert_eq!(d.iter().product::<usize>(), size, "size={size} nd={nd}");
            }
        }
    }

    #[test]
    fn coords_roundtrip() {
        let c = CartComm::balanced(24, 3);
        for r in 0..24 {
            assert_eq!(c.rank_of(&c.coords_of(r)), r);
        }
    }

    #[test]
    fn shift_non_periodic_boundary_is_none() {
        let c = CartComm::new(4, vec![2, 2], vec![false, false]);
        // rank 0 at (0,0): no -1 neighbours.
        assert_eq!(c.shift(0, 0, -1), None);
        assert_eq!(c.shift(0, 1, -1), None);
        assert!(c.shift(0, 0, 1).is_some());
    }

    #[test]
    fn shift_periodic_wraps() {
        let c = CartComm::new(4, vec![4], vec![true]);
        assert_eq!(c.shift(0, 0, -1), Some(3));
        assert_eq!(c.shift(3, 0, 1), Some(0));
    }

    #[test]
    fn neighbors_interior_rank_has_2d_times_dims() {
        let c = CartComm::new(27, vec![3, 3, 3], vec![false; 3]);
        let center = c.rank_of(&[1, 1, 1]);
        assert_eq!(c.neighbors(center).len(), 6);
        let corner = c.rank_of(&[0, 0, 0]);
        assert_eq!(c.neighbors(corner).len(), 3);
    }

    #[test]
    fn decompose_1d_covers_exactly() {
        let c = CartComm::new(3, vec![3], vec![false]);
        let n = 10;
        let mut total = 0;
        let mut next = 0;
        for r in 0..3 {
            let (s, l) = c.decompose_1d(r, 0, n);
            assert_eq!(s, next, "partitions must be contiguous");
            next = s + l;
            total += l;
        }
        assert_eq!(total, n);
        // remainder goes to the low ranks: 4,3,3
        assert_eq!(c.decompose_1d(0, 0, n).1, 4);
        assert_eq!(c.decompose_1d(2, 0, n).1, 3);
    }

    #[test]
    fn decompose_balance_within_one() {
        let c = CartComm::balanced(7, 1);
        let lens: Vec<usize> = (0..7).map(|r| c.decompose_1d(r, 0, 100).1).collect();
        let mx = *lens.iter().max().unwrap();
        let mn = *lens.iter().min().unwrap();
        assert!(mx - mn <= 1);
    }

    #[test]
    #[should_panic(expected = "dims")]
    fn mismatched_dims_rejected() {
        CartComm::new(5, vec![2, 2], vec![false, false]);
    }
}
