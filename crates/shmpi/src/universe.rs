//! Launching a "world" of ranks as scoped threads.

use crate::comm::{Comm, Shared};
use crate::event::CommLog;
use crate::mailbox::{Mailbox, MailboxKind};
use crate::stats::{CommDetail, RankStats, WorldStats};
use bwb_machine::{LatencyProfile, RankPlacement};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

/// Result of a world run: per-rank return values (indexed by rank),
/// per-rank communication statistics, and the wall-clock duration.
#[derive(Debug)]
pub struct RunOutput<R> {
    pub results: Vec<R>,
    pub stats: WorldStats,
    pub wall_seconds: f64,
}

impl<R> RunOutput<R> {
    /// Fraction of mean rank time spent blocked in communication —
    /// the Figure 7 metric for this run.
    pub fn mpi_fraction(&self) -> f64 {
        self.stats.mpi_fraction(self.wall_seconds)
    }
}

/// Entry point: spawn `size` ranks and run `f` on each.
pub struct Universe;

impl Universe {
    /// Run `f` on `size` ranks (threads). Returns per-rank results in rank
    /// order plus communication statistics.
    ///
    /// The closure runs once per rank with that rank's [`Comm`]. All sends
    /// are eager, so the closure may send before the peer has posted a
    /// receive; deadlock is only possible through circular blocking
    /// receives, as in real MPI.
    pub fn run<F, R>(size: usize, f: F) -> RunOutput<R>
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        Self::run_placed(size, None, f)
    }

    /// Like [`Universe::run`] but with an explicit mailbox transport
    /// ([`MailboxKind::Spsc`] selects the lock-free SPSC ring path).
    /// The default entry points honor `SHMPI_MAILBOX=spsc` instead.
    pub fn run_with_mailbox<F, R>(size: usize, kind: MailboxKind, f: F) -> RunOutput<R>
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        Self::run_impl(size, None, false, kind, f).0
    }

    /// Like [`Universe::run`] but with a machine placement: each message is
    /// additionally priced with the modelled latency of its rank pair's
    /// topological distance, accumulated in
    /// [`RankStats::modeled_latency_s`].
    pub fn run_placed<F, R>(
        size: usize,
        placement: Option<(RankPlacement, LatencyProfile)>,
        f: F,
    ) -> RunOutput<R>
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        Self::run_impl(size, placement, false, MailboxKind::from_env(), f).0
    }

    /// Run a universe pinned to a carved core set: the serve-shard entry
    /// point. `placement` is one shard's disjoint core set (from
    /// [`bwb_machine::CpuTopology::carve_shards`]); ranks map onto its
    /// cores in order, messages are priced with the placement-aware
    /// latency model, and the transport is explicit so the service can put
    /// the lock-free SPSC rings on its hot path unconditionally (instead
    /// of the `SHMPI_MAILBOX` env default).
    ///
    /// Panics if the shard's core set has fewer cores than ranks — a shard
    /// never oversubscribes its carve.
    pub fn run_pinned<F, R>(
        size: usize,
        kind: MailboxKind,
        placement: (RankPlacement, LatencyProfile),
        f: F,
    ) -> RunOutput<R>
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        assert!(
            placement.0.n_ranks() >= size,
            "shard core set has {} cores for {} ranks",
            placement.0.n_ranks(),
            size
        );
        Self::run_impl(size, Some(placement), false, kind, f).0
    }

    /// Like [`Universe::run`] but with communication-event logging enabled
    /// on every rank; returns the per-rank [`CommLog`]s (indexed by rank)
    /// alongside the run output. Feeds `dslcheck::comm` ("commcheck").
    pub fn run_logged<F, R>(size: usize, f: F) -> (RunOutput<R>, Vec<CommLog>)
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        Self::run_placed_logged(size, None, f)
    }

    /// [`Universe::run_placed`] with communication-event logging.
    pub fn run_placed_logged<F, R>(
        size: usize,
        placement: Option<(RankPlacement, LatencyProfile)>,
        f: F,
    ) -> (RunOutput<R>, Vec<CommLog>)
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        let (out, logs) = Self::run_impl(size, placement, true, MailboxKind::from_env(), f);
        (out, logs.expect("logging was enabled"))
    }

    fn run_impl<F, R>(
        size: usize,
        placement: Option<(RankPlacement, LatencyProfile)>,
        log: bool,
        mailbox: MailboxKind,
        f: F,
    ) -> (RunOutput<R>, Option<Vec<CommLog>>)
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        assert!(size > 0, "world size must be at least 1");
        if let Some((p, _)) = &placement {
            assert!(
                p.n_ranks() >= size,
                "placement has {} slots for {} ranks",
                p.n_ranks(),
                size
            );
        }
        let shared = Arc::new(Shared {
            mailboxes: (0..size)
                .map(|_| Mailbox::with_kind(mailbox, size))
                .collect(),
            size,
            barrier: Barrier::new(size),
            placement,
        });

        type Slot<R> = Option<(R, RankStats, CommDetail, Option<CommLog>)>;
        let results: Mutex<Vec<Slot<R>>> = Mutex::new((0..size).map(|_| None).collect());

        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for rank in 0..size {
                let shared = Arc::clone(&shared);
                let f = &f;
                let results = &results;
                scope.spawn(move || {
                    bwb_trace::set_rank(rank);
                    bwb_trace::set_thread_label(&format!("rank {rank}"));
                    let mut comm = Comm::new(rank, shared);
                    if log {
                        comm.enable_comm_log();
                    }
                    let r = f(&mut comm);
                    let log = comm.take_comm_log();
                    results.lock().unwrap()[rank] = Some((r, comm.stats, comm.detail, log));
                });
            }
        });
        let wall_seconds = t0.elapsed().as_secs_f64();

        let mut out_results = Vec::with_capacity(size);
        let mut out_stats = Vec::with_capacity(size);
        let mut out_details = Vec::with_capacity(size);
        let mut out_logs = Vec::with_capacity(size);
        for slot in results.into_inner().unwrap() {
            let (r, s, d, l) = slot.expect("every rank completes");
            out_results.push(r);
            out_stats.push(s);
            out_details.push(d);
            out_logs.push(l);
        }
        // Teardown check: every send must have been received. Eager
        // delivery means anything still queued is a matching bug the run
        // would otherwise silently drop.
        for (rank, stats) in out_stats.iter_mut().enumerate() {
            let leftover = shared.mailboxes[rank].len();
            stats.unreceived_at_teardown = leftover as u64;
            debug_assert_eq!(
                leftover, 0,
                "rank {rank} mailbox holds {leftover} unreceived envelope(s) at teardown"
            );
        }
        let out = RunOutput {
            results: out_results,
            stats: WorldStats {
                per_rank: out_stats,
                details: out_details,
            },
            wall_seconds,
        };
        let logs = if log {
            // A rank's closure may have detached its log with
            // `take_comm_log`; substitute an empty log for that rank.
            Some(
                out_logs
                    .into_iter()
                    .enumerate()
                    .map(|(r, l)| l.unwrap_or_else(|| CommLog::new(r)))
                    .collect(),
            )
        } else {
            None
        };
        (out, logs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwb_machine::{platforms, PlacementPolicy};

    #[test]
    fn single_rank_world() {
        let out = Universe::run(1, |c| {
            assert_eq!(c.size(), 1);
            c.rank()
        });
        assert_eq!(out.results, vec![0]);
        assert_eq!(out.stats.per_rank.len(), 1);
    }

    #[test]
    fn results_indexed_by_rank() {
        let out = Universe::run(8, |c| c.rank() * 2);
        assert_eq!(out.results, (0..8).map(|r| r * 2).collect::<Vec<_>>());
    }

    // Real-clock assertion: meaningless under miri's virtual clock.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn wall_time_positive() {
        let out = Universe::run(2, |_c| ());
        assert!(out.wall_seconds > 0.0);
    }

    #[test]
    #[should_panic(expected = "world size")]
    fn zero_size_rejected() {
        Universe::run(0, |_c| ());
    }

    // 72 interpreted threads: far too slow under miri; the mailbox and
    // collectives tests cover the same synchronization paths at small rank
    // counts.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn placed_run_prices_cross_socket_messages_higher() {
        let p = platforms::xeon_8360y();
        let placement = p.topology.place_ranks(PlacementPolicy::OnePerCore);
        // Ranks 0 and 1 are same-NUMA; ranks 0 and 71 are cross-socket.
        let near = Universe::run_placed(72, Some((placement.clone(), p.latency)), |c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1u8]);
            } else if c.rank() == 1 {
                let _ = c.recv::<u8>(0, 0);
            }
            c.stats().modeled_latency_s
        });
        let far = Universe::run_placed(72, Some((placement, p.latency)), |c| {
            if c.rank() == 0 {
                c.send(71, 0, vec![1u8]);
            } else if c.rank() == 71 {
                let _ = c.recv::<u8>(0, 0);
            }
            c.stats().modeled_latency_s
        });
        assert!(far.results[0] > near.results[0]);
    }

    #[test]
    fn logged_run_records_per_rank_events() {
        use crate::event::CommOp;
        let (out, logs) = Universe::run_logged(3, |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.set_comm_ctx("ring");
            c.send(right, 4, vec![1u32]);
            let _ = c.recv::<u32>(left, 4);
            c.clear_comm_ctx();
            c.barrier();
        });
        assert_eq!(logs.len(), 3);
        for (rank, log) in logs.iter().enumerate() {
            assert_eq!(log.rank, rank);
            assert_eq!(log.sends(), 1);
            assert_eq!(log.recvs(), 1);
            assert_eq!(log.barriers(), 1);
            let send = &log.events[0];
            assert_eq!(
                send.op,
                CommOp::Send {
                    dest: (rank + 1) % 3
                }
            );
            assert_eq!(send.ctx.as_deref(), Some("ring"));
            assert_eq!(send.bytes, 4);
        }
        assert_eq!(out.stats.per_rank[0].unreceived_at_teardown, 0);
    }

    #[test]
    fn logged_collectives_record_markers() {
        use crate::ReduceOp;
        let (_out, logs) = Universe::run_logged(2, |c| {
            c.allreduce_scalar(1u64, ReduceOp::Sum);
        });
        for log in &logs {
            // allreduce = reduce + bcast on every rank.
            assert_eq!(log.collective_kinds(), vec!["reduce", "bcast"]);
        }
    }

    #[test]
    fn unlogged_run_keeps_logging_disabled() {
        let out = Universe::run(2, |c| c.take_comm_log().is_none());
        assert!(out.results.iter().all(|&none| none));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unreceived envelope")]
    fn teardown_asserts_on_unreceived_send() {
        Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 77, vec![1u8]);
            }
            // rank 1 never receives tag 77
        });
    }

    #[test]
    fn spsc_transport_is_observably_identical() {
        use crate::ReduceOp;
        // Ring exchange + allreduce + barrier: results and byte
        // accounting must not depend on the mailbox transport.
        let program = |c: &mut crate::Comm| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 3, vec![c.rank() as u64 * 10]);
            let got = c.recv::<u64>(left, 3)[0];
            let total = c.allreduce_scalar(got, ReduceOp::Sum);
            c.barrier();
            (got, total, c.stats().bytes_sent)
        };
        let locked = Universe::run_with_mailbox(6, MailboxKind::Locked, program);
        let spsc = Universe::run_with_mailbox(6, MailboxKind::Spsc, program);
        assert_eq!(locked.results, spsc.results);
        for (l, s) in locked.stats.per_rank.iter().zip(spsc.stats.per_rank.iter()) {
            assert_eq!(l.bytes_sent, s.bytes_sent);
            assert_eq!(l.sends, s.sends);
            assert_eq!(l.unreceived_at_teardown, 0);
            assert_eq!(s.unreceived_at_teardown, 0);
        }
    }

    #[test]
    fn pinned_universe_runs_on_carved_cores_with_spsc() {
        use bwb_machine::ShardPolicy;
        let p = platforms::xeon_8360y();
        let shards = p.topology.carve_shards(2, ShardPolicy::OnePerNuma).unwrap();
        for shard in shards {
            let out = Universe::run_pinned(4, MailboxKind::Spsc, (shard, p.latency), |c| {
                let right = (c.rank() + 1) % c.size();
                let left = (c.rank() + c.size() - 1) % c.size();
                c.send(right, 9, vec![c.rank() as u32]);
                c.recv::<u32>(left, 9)[0]
            });
            assert_eq!(out.results, vec![3, 0, 1, 2]);
        }
    }

    #[test]
    #[should_panic(expected = "cores for")]
    fn pinned_universe_rejects_oversubscribed_shard() {
        use bwb_machine::ShardPolicy;
        let p = platforms::xeon_8360y();
        let shard = p
            .topology
            .carve_shards(p.topology.total_numa() as usize, ShardPolicy::OnePerNuma)
            .unwrap()
            .remove(0);
        let ranks = shard.n_ranks() + 1;
        Universe::run_pinned(ranks, MailboxKind::Spsc, (shard, p.latency), |_c| ());
    }

    #[test]
    fn mpi_fraction_in_unit_interval() {
        let out = Universe::run(4, |c| {
            c.barrier();
        });
        let f = out.mpi_fraction();
        assert!((0.0..=1.0).contains(&f));
    }
}
