//! Exhaustive DPOR certification of the lock-free SPSC mailbox.
//!
//! Build and run with `RUSTFLAGS="--cfg loom" cargo test -p bwb-shmpi
//! --test loom_spsc` (the CI `model-check` job does exactly this). Unlike
//! the randomized predecessor, the vendored loom explorer enumerates
//! *every* schedule of these models (persistent + sleep sets, no
//! preemption bound here) and reports the explored-schedule count — the
//! proof the `SHMPI_MAILBOX=spsc` transport is gated on.
//!
//! Certified properties:
//! 1. The 2-thread `SpscRing` producer/consumer protocol: every value is
//!    received exactly once, in FIFO order, under all interleavings —
//!    including ring wraparound and full-ring backpressure.
//! 2. The whole `SpscMailbox` deliver/take path (rings + stash + wake
//!    flag): tag-ordered takes see per-(source, tag) FIFO order.
//! 3. A *planted* protocol bug — publishing the producer cursor before
//!    writing the slot — is caught with a replayable failing schedule,
//!    and `loom::replay` reproduces it deterministically.
#![cfg(loom)]

use bwb_shmpi::{Envelope, Pattern, SpscMailbox, SpscRing};
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// Exhaustive budget: no preemption bound, generous schedule cap. The
/// models below are small enough to complete (counts are asserted).
fn exhaustive() -> loom::Builder {
    loom::Builder {
        max_schedules: 500_000,
        max_steps: 50_000,
        max_preemptions: None,
        exhaustive: false,
    }
}

#[test]
fn spsc_ring_two_thread_fifo_exhaustive() {
    let stats = exhaustive().model(|| {
        // Capacity 2 with 3 values forces a wraparound and a full-ring
        // backpressure branch inside the explored state space.
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::with_capacity(2));
        let producer = ring.clone();
        let h = thread::spawn(move || {
            for i in 0..3u64 {
                let mut v = i;
                while let Err(back) = producer.push(v) {
                    v = back;
                    thread::yield_now();
                }
            }
        });
        let mut next = 0u64;
        while next < 3 {
            match ring.pop() {
                Some(v) => {
                    assert_eq!(v, next, "FIFO violated");
                    next += 1;
                }
                None => thread::yield_now(),
            }
        }
        assert!(ring.pop().is_none());
        h.join().unwrap();
    });
    assert!(
        stats.complete,
        "exploration must be exhaustive, not budget-clipped: {stats:?}"
    );
    assert!(stats.schedules >= 2, "{stats:?}");
    // Surface the count in `--nocapture` runs / CI logs (EXPERIMENTS.md
    // records the value).
    println!(
        "spsc_ring 2-thread model: {} schedules, {} scheduling points, exhaustive",
        stats.schedules, stats.steps
    );
}

fn env(source: usize, tag: u32, val: u64) -> Envelope {
    Envelope {
        source,
        tag,
        data: Box::new(vec![val]),
        bytes: 8,
    }
}

fn val(e: &Envelope) -> u64 {
    e.data.downcast_ref::<Vec<u64>>().expect("u64 payload")[0]
}

#[test]
fn spsc_mailbox_deliver_take_fifo_exhaustive() {
    let stats = exhaustive().model(|| {
        // One source, two tags interleaved: exercises ring -> stash
        // migration and the parked-flag handshake (modeled as spin).
        let mb = Arc::new(SpscMailbox::with_ring_capacity(2, 2));
        let sender = {
            let mb = mb.clone();
            thread::spawn(move || {
                mb.deliver(env(1, 7, 10));
                mb.deliver(env(1, 9, 20));
                mb.deliver(env(1, 7, 11));
            })
        };
        let (a, _) = mb.take_blocking(Pattern {
            source: Some(1),
            tag: 9,
        });
        assert_eq!(val(&a), 20);
        let (b, _) = mb.take_blocking(Pattern {
            source: Some(1),
            tag: 7,
        });
        let (c, _) = mb.take_blocking(Pattern {
            source: Some(1),
            tag: 7,
        });
        assert_eq!(val(&b), 10, "tag-7 FIFO violated");
        assert_eq!(val(&c), 11, "tag-7 FIFO violated");
        sender.join().unwrap();
        assert!(mb.is_empty());
    });
    assert!(stats.complete, "{stats:?}");
    println!(
        "spsc_mailbox deliver/take model: {} schedules, {} scheduling points, exhaustive",
        stats.schedules, stats.steps
    );
}

// ---------------------------------------------------------------------------
// Planted protocol bug: cursor published before the slot write.
// ---------------------------------------------------------------------------

/// A deliberately broken SPSC "ring" (capacity 1, value-level slots): the
/// producer publishes `tail` *before* storing the value — exactly the bug
/// the Release-after-write ordering in `SpscRing::push` exists to
/// prevent. Slots hold a sentinel rather than `MaybeUninit` so the bug
/// manifests as an assertion failure, not UB.
struct BadRing {
    slot: AtomicUsize,
    tail: AtomicUsize,
    head: AtomicUsize,
}

const POISON: usize = usize::MAX;

impl BadRing {
    fn new() -> Self {
        BadRing {
            slot: AtomicUsize::new(POISON),
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    fn push(&self, v: usize) {
        // BUG: publish first, write second.
        let t = self.tail.load(Ordering::Relaxed);
        self.tail.store(t + 1, Ordering::Release);
        self.slot.store(v, Ordering::Release);
    }

    fn pop(&self) -> Option<usize> {
        let h = self.head.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Acquire);
        if h == t {
            return None;
        }
        let v = self.slot.load(Ordering::Acquire);
        self.head.store(h + 1, Ordering::Release);
        Some(v)
    }
}

fn bad_ring_model() {
    let ring = Arc::new(BadRing::new());
    let producer = ring.clone();
    let h = thread::spawn(move || producer.push(42));
    loop {
        if let Some(v) = ring.pop() {
            assert_ne!(v, POISON, "consumer observed the slot before its write");
            assert_eq!(v, 42);
            break;
        }
        thread::yield_now();
    }
    h.join().unwrap();
}

#[test]
fn planted_early_publish_caught_with_replayable_trace() {
    let failure = exhaustive()
        .explore(bad_ring_model)
        .expect_err("DPOR must find the early-publish window");
    assert!(
        failure.message.contains("before its write"),
        "failure is the planted assertion: {failure}"
    );
    assert!(
        !failure.schedule.is_empty(),
        "failing trace must be replayable"
    );
    println!(
        "planted bug caught after {} schedules; failing trace: {:?}",
        failure.stats.schedules, failure.schedule
    );
    // And the trace really does reproduce the bug, deterministically.
    let replayed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        loom::replay(&failure.schedule, bad_ring_model);
    }));
    assert!(replayed.is_err(), "replay must reproduce the failure");
}
