//! Model-check the Mailbox mutex+condvar protocol under `--cfg loom`.
//!
//! Build and run with `RUSTFLAGS="--cfg loom" cargo test -p bwb-shmpi
//! --test loom_mailbox` (the CI `model-check` job does exactly this). The
//! vendored loom stand-in performs bounded exhaustive exploration with
//! DPOR (`LOOM_MAX_SCHEDULES` / `LOOM_MAX_PREEMPTIONS` budgets), pinning
//! the transport invariants the receivers rely on for *every* explored
//! interleaving:
//!
//! 1. FIFO non-overtaking: two envelopes from one (source, tag) pair are
//!    received in delivery order under every interleaving.
//! 2. `deliver_front` re-insertion keeps the probed envelope at the head,
//!    ahead of concurrent `deliver` traffic from the same source.
//! 3. A blocked `take_blocking` always wakes for a matching delivery
//!    (no lost wakeup).
#![cfg(loom)]

use bwb_shmpi::{Envelope, Mailbox, Pattern};
use loom::sync::Arc;
use loom::thread;

fn env(source: usize, tag: u32, val: u64) -> Envelope {
    Envelope {
        source,
        tag,
        data: Box::new(vec![val]),
        bytes: 8,
    }
}

fn val(e: &Envelope) -> u64 {
    e.data.downcast_ref::<Vec<u64>>().expect("u64 payload")[0]
}

#[test]
fn fifo_non_overtaking_under_all_interleavings() {
    loom::model(|| {
        let mb = Arc::new(Mailbox::new());
        let sender = {
            let mb = mb.clone();
            thread::spawn(move || {
                mb.deliver(env(0, 7, 1));
                mb.deliver(env(0, 7, 2));
            })
        };
        let receiver = {
            let mb = mb.clone();
            thread::spawn(move || {
                let pat = Pattern {
                    source: Some(0),
                    tag: 7,
                };
                let (a, _) = mb.take_blocking(pat);
                let (b, _) = mb.take_blocking(pat);
                (val(&a), val(&b))
            })
        };
        sender.join().unwrap();
        let (a, b) = receiver.join().unwrap();
        assert_eq!((a, b), (1, 2), "per-(source,tag) FIFO order violated");
    });
}

#[test]
fn fifo_holds_across_interleaved_sources() {
    loom::model(|| {
        let mb = Arc::new(Mailbox::new());
        let s0 = {
            let mb = mb.clone();
            thread::spawn(move || {
                mb.deliver(env(0, 3, 10));
                mb.deliver(env(0, 3, 11));
            })
        };
        let s1 = {
            let mb = mb.clone();
            thread::spawn(move || {
                mb.deliver(env(1, 3, 20));
                mb.deliver(env(1, 3, 21));
            })
        };
        let receiver = {
            let mb = mb.clone();
            thread::spawn(move || {
                let from = |src| Pattern {
                    source: Some(src),
                    tag: 3,
                };
                // Interleave the sources; each (source, tag) stream must
                // independently preserve order regardless of how the two
                // sender threads raced.
                let a0 = val(&mb.take_blocking(from(0)).0);
                let a1 = val(&mb.take_blocking(from(1)).0);
                let b0 = val(&mb.take_blocking(from(0)).0);
                let b1 = val(&mb.take_blocking(from(1)).0);
                ((a0, b0), (a1, b1))
            })
        };
        s0.join().unwrap();
        s1.join().unwrap();
        let (src0, src1) = receiver.join().unwrap();
        assert_eq!(src0, (10, 11), "source 0 stream reordered");
        assert_eq!(src1, (20, 21), "source 1 stream reordered");
    });
}

#[test]
fn deliver_front_keeps_probed_envelope_at_head() {
    loom::model(|| {
        let mb = Arc::new(Mailbox::new());
        mb.deliver(env(0, 5, 1));
        // A concurrent sender appends while the receiver probes (try_take)
        // and puts the envelope back with deliver_front — the iprobe path.
        let sender = {
            let mb = mb.clone();
            thread::spawn(move || mb.deliver(env(0, 5, 2)))
        };
        let pat = Pattern {
            source: Some(0),
            tag: 5,
        };
        let probed = mb.try_take(pat).expect("head envelope present");
        assert_eq!(val(&probed), 1);
        mb.deliver_front(probed);
        sender.join().unwrap();
        let (a, _) = mb.take_blocking(pat);
        let (b, _) = mb.take_blocking(pat);
        assert_eq!(
            (val(&a), val(&b)),
            (1, 2),
            "deliver_front must not let later traffic overtake the head"
        );
    });
}

#[test]
fn blocked_receiver_always_wakes() {
    loom::model(|| {
        let mb = Arc::new(Mailbox::new());
        let receiver = {
            let mb = mb.clone();
            thread::spawn(move || {
                let (e, _) = mb.take_blocking(Pattern {
                    source: None,
                    tag: 9,
                });
                val(&e)
            })
        };
        let sender = {
            let mb = mb.clone();
            thread::spawn(move || mb.deliver(env(2, 9, 42)))
        };
        sender.join().unwrap();
        assert_eq!(receiver.join().unwrap(), 42, "delivery wakeup lost");
    });
}
