//! The BabelStream kernels, runnable on the host.
//!
//! Follows the reference implementation's conventions: three arrays
//! initialized to (0.1, 0.2, 0.0), a scalar of 0.4, and per-kernel
//! bytes-moved accounting of 2 or 3 array lengths.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Initial values from the BabelStream reference implementation.
pub const INIT_A: f64 = 0.1;
pub const INIT_B: f64 = 0.2;
pub const INIT_C: f64 = 0.0;
pub const SCALAR: f64 = 0.4;

/// Parallelization of the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Par {
    Serial,
    Rayon,
}

/// The benchmark kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    Copy,
    Mul,
    Add,
    Triad,
    Dot,
    Nstream,
}

impl Kernel {
    pub const ALL: [Kernel; 6] = [
        Kernel::Copy,
        Kernel::Mul,
        Kernel::Add,
        Kernel::Triad,
        Kernel::Dot,
        Kernel::Nstream,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Kernel::Copy => "Copy",
            Kernel::Mul => "Mul",
            Kernel::Add => "Add",
            Kernel::Triad => "Triad",
            Kernel::Dot => "Dot",
            Kernel::Nstream => "Nstream",
        }
    }

    /// Arrays moved per element (the STREAM bytes convention).
    pub fn arrays_moved(self) -> usize {
        match self {
            Kernel::Copy | Kernel::Mul | Kernel::Dot => 2,
            Kernel::Add | Kernel::Triad => 3,
            Kernel::Nstream => 4,
        }
    }
}

/// One timed kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelResult {
    pub kernel: Kernel,
    pub seconds: f64,
    pub bytes: usize,
    pub bandwidth_gbs: f64,
}

/// The benchmark state: three working arrays.
pub struct BabelStream {
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    par: Par,
}

impl BabelStream {
    pub fn new(n: usize, par: Par) -> Self {
        assert!(n > 0);
        BabelStream {
            a: vec![INIT_A; n],
            b: vec![INIT_B; n],
            c: vec![INIT_C; n],
            par,
        }
    }

    pub fn len(&self) -> usize {
        self.a.len()
    }

    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Working-set bytes across the three arrays.
    pub fn working_set_bytes(&self) -> usize {
        3 * self.a.len() * std::mem::size_of::<f64>()
    }

    fn map2(par: Par, dst: &mut [f64], src: &[f64], f: impl Fn(f64) -> f64 + Sync) {
        match par {
            Par::Serial => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = f(s);
                }
            }
            Par::Rayon => {
                dst.par_iter_mut()
                    .zip(src.par_iter())
                    .for_each(|(d, &s)| *d = f(s));
            }
        }
    }

    fn map3(par: Par, dst: &mut [f64], s1: &[f64], s2: &[f64], f: impl Fn(f64, f64) -> f64 + Sync) {
        match par {
            Par::Serial => {
                for i in 0..dst.len() {
                    dst[i] = f(s1[i], s2[i]);
                }
            }
            Par::Rayon => {
                dst.par_iter_mut()
                    .zip(s1.par_iter().zip(s2.par_iter()))
                    .for_each(|(d, (&x, &y))| *d = f(x, y));
            }
        }
    }

    /// c = a
    pub fn copy(&mut self) {
        Self::map2(self.par, &mut self.c, &self.a, |x| x);
    }

    /// b = s·c
    pub fn mul(&mut self) {
        Self::map2(self.par, &mut self.b, &self.c, |x| SCALAR * x);
    }

    /// c = a + b
    pub fn add(&mut self) {
        Self::map3(self.par, &mut self.c, &self.a, &self.b, |x, y| x + y);
    }

    /// a = b + s·c
    pub fn triad(&mut self) {
        Self::map3(self.par, &mut self.a, &self.b, &self.c, |x, y| {
            x + SCALAR * y
        });
    }

    /// a += b + s·c
    pub fn nstream(&mut self) {
        match self.par {
            Par::Serial => {
                for i in 0..self.a.len() {
                    self.a[i] += self.b[i] + SCALAR * self.c[i];
                }
            }
            Par::Rayon => {
                let (b, c) = (&self.b, &self.c);
                self.a
                    .par_iter_mut()
                    .enumerate()
                    .for_each(|(i, a)| *a += b[i] + SCALAR * c[i]);
            }
        }
    }

    /// sum(a·b)
    pub fn dot(&mut self) -> f64 {
        match self.par {
            Par::Serial => self.a.iter().zip(&self.b).map(|(&x, &y)| x * y).sum(),
            Par::Rayon => self
                .a
                .par_iter()
                .zip(self.b.par_iter())
                .map(|(&x, &y)| x * y)
                .sum(),
        }
    }

    /// Time one kernel once and compute its bandwidth.
    pub fn run_kernel(&mut self, k: Kernel) -> KernelResult {
        let n = self.len();
        let t0 = Instant::now();
        let mut _sink = 0.0;
        match k {
            Kernel::Copy => self.copy(),
            Kernel::Mul => self.mul(),
            Kernel::Add => self.add(),
            Kernel::Triad => self.triad(),
            Kernel::Dot => _sink = self.dot(),
            Kernel::Nstream => self.nstream(),
        }
        let seconds = t0.elapsed().as_secs_f64();
        std::hint::black_box(_sink);
        let bytes = k.arrays_moved() * n * std::mem::size_of::<f64>();
        KernelResult {
            kernel: k,
            seconds,
            bytes,
            bandwidth_gbs: if seconds > 0.0 {
                bytes as f64 / seconds / 1e9
            } else {
                0.0
            },
        }
    }

    /// Run the classic 5-kernel sequence `reps` times; returns the
    /// best-of-reps result per kernel (BabelStream's reporting convention).
    pub fn run(&mut self, reps: usize) -> Vec<KernelResult> {
        assert!(reps >= 1);
        let mut best: Vec<Option<KernelResult>> = vec![None; Kernel::ALL.len()];
        for _ in 0..reps {
            for (slot, &k) in best.iter_mut().zip(Kernel::ALL.iter()) {
                if k == Kernel::Nstream {
                    continue; // not part of the classic sequence
                }
                let r = self.run_kernel(k);
                let better = slot.is_none_or(|prev: KernelResult| r.seconds < prev.seconds);
                if better {
                    *slot = Some(r);
                }
            }
        }
        best.into_iter().flatten().collect()
    }

    /// Validate array contents after `reps` repetitions of the classic
    /// sequence, following the reference implementation's error check.
    /// Returns the max relative error across the three arrays.
    pub fn validate(&self, reps: usize) -> f64 {
        let (mut ga, mut gb, mut gc) = (INIT_A, INIT_B, INIT_C);
        for _ in 0..reps {
            gc = ga; // copy
            gb = SCALAR * gc; // mul
            gc = ga + gb; // add
            ga = gb + SCALAR * gc; // triad
        }
        let err = |arr: &[f64], gold: f64| -> f64 {
            arr.iter()
                .map(|v| ((v - gold) / gold).abs())
                .fold(0.0, f64::max)
        };
        err(&self.a, ga).max(err(&self.b, gb)).max(err(&self.c, gc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_compute_reference_values() {
        let mut s = BabelStream::new(1000, Par::Serial);
        s.copy();
        assert_eq!(s.c[0], INIT_A);
        s.mul();
        assert_eq!(s.b[0], SCALAR * INIT_A);
        s.add();
        assert_eq!(s.c[0], INIT_A + SCALAR * INIT_A);
        s.triad();
        let expect = SCALAR * INIT_A + SCALAR * (INIT_A + SCALAR * INIT_A);
        assert!((s.a[0] - expect).abs() < 1e-15);
    }

    #[test]
    fn serial_and_rayon_agree() {
        let run = |par: Par| {
            let mut s = BabelStream::new(4321, par);
            for _ in 0..3 {
                s.copy();
                s.mul();
                s.add();
                s.triad();
            }
            (s.a.clone(), s.b.clone(), s.c.clone(), s.dot())
        };
        let (a1, b1, c1, d1) = run(Par::Serial);
        let (a2, b2, c2, d2) = run(Par::Rayon);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_eq!(c1, c2);
        assert!((d1 - d2).abs() / d1.abs() < 1e-12);
    }

    #[test]
    fn validation_passes_after_full_sequence() {
        let mut s = BabelStream::new(512, Par::Serial);
        let reps = 10;
        for _ in 0..reps {
            s.copy();
            s.mul();
            s.add();
            s.triad();
        }
        assert!(s.validate(reps) < 1e-12);
    }

    #[test]
    fn dot_is_n_times_product_initially() {
        let mut s = BabelStream::new(100, Par::Serial);
        let d = s.dot();
        assert!((d - 100.0 * INIT_A * INIT_B).abs() < 1e-12);
    }

    #[test]
    fn nstream_accumulates() {
        let mut s = BabelStream::new(10, Par::Serial);
        s.nstream();
        let expect = INIT_A + INIT_B + SCALAR * INIT_C;
        assert!((s.a[0] - expect).abs() < 1e-15);
    }

    #[test]
    fn run_reports_all_five_kernels_with_positive_bandwidth() {
        let mut s = BabelStream::new(100_000, Par::Rayon);
        let results = s.run(2);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(r.bandwidth_gbs > 0.0, "{:?}", r.kernel);
            assert_eq!(r.bytes % 8, 0);
        }
        // Triad moves 3 arrays, copy 2.
        let triad = results.iter().find(|r| r.kernel == Kernel::Triad).unwrap();
        let copy = results.iter().find(|r| r.kernel == Kernel::Copy).unwrap();
        assert_eq!(triad.bytes, copy.bytes / 2 * 3);
    }

    #[test]
    fn bytes_convention() {
        assert_eq!(Kernel::Copy.arrays_moved(), 2);
        assert_eq!(Kernel::Triad.arrays_moved(), 3);
        assert_eq!(Kernel::Dot.arrays_moved(), 2);
        assert_eq!(Kernel::Nstream.arrays_moved(), 4);
    }

    #[test]
    fn working_set_accounting() {
        let s = BabelStream::new(1024, Par::Serial);
        assert_eq!(s.working_set_bytes(), 3 * 1024 * 8);
    }
}
