//! # bwb-stream — BabelStream
//!
//! The paper's Figure 1 sweeps the BabelStream **Triad** kernel over array
//! sizes on one NUMA domain, one socket, and the whole machine of each
//! platform. This crate provides:
//!
//! * [`babel`] — a real, runnable implementation of the five BabelStream
//!   kernels (Copy, Mul, Add, Triad, Dot) plus Nstream, in serial and
//!   thread-parallel variants, with the standard bytes-moved accounting;
//! * [`model`] — the modelled Figure-1 curves for the paper's platforms,
//!   produced by the [`bwb_memsim`] hierarchy model (including the
//!   streaming-store flag variant on the Xeon MAX).

pub mod babel;
pub mod model;

pub use babel::{BabelStream, Kernel, KernelResult, Par};
pub use model::{
    figure1_curves, figure1_curves_with, triad_sweep, triad_sweep_with, Figure1Point, Figure1Series,
};
