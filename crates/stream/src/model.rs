//! Modelled Figure-1 curves: BabelStream Triad bandwidth vs array size on
//! the paper's platforms, per machine subset, with the streaming-store flag
//! variant on the Xeon MAX.

use bwb_machine::{Platform, PlatformKind};
use bwb_memsim::{MachineSubset, MemoryHierarchyModel, StoreMode, TrafficModel};
use serde::{Deserialize, Serialize};

/// One point of a modelled Figure-1 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure1Point {
    /// Per-array length in f64 elements.
    pub elements: u64,
    /// Total working set (3 arrays), bytes.
    pub working_set_bytes: u64,
    /// Reported Triad bandwidth, GB/s (useful-bytes convention).
    pub bandwidth_gbs: f64,
}

/// One platform/subset/flag-variant series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure1Series {
    pub platform: String,
    pub platform_kind: PlatformKind,
    pub subset: MachineSubset,
    /// True for the streaming-store ("SS") tuned flag variant.
    pub streaming_stores: bool,
    pub points: Vec<Figure1Point>,
}

impl Figure1Series {
    /// Large-array plateau: the mean of the last three points.
    pub fn large_size_plateau_gbs(&self) -> f64 {
        let n = self.points.len();
        assert!(n >= 3);
        self.points[n - 3..]
            .iter()
            .map(|p| p.bandwidth_gbs)
            .sum::<f64>()
            / 3.0
    }

    /// Small-array (cache) plateau: max bandwidth over the sweep.
    pub fn cache_plateau_gbs(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.bandwidth_gbs)
            .fold(0.0, f64::max)
    }
}

/// Model a Triad sweep for one platform/subset/flag combination, using the
/// canonical hand-declared [`TrafficModel::stream_triad`] accounting.
pub fn triad_sweep(
    platform: &Platform,
    subset: MachineSubset,
    streaming_stores: bool,
    min_elements: u64,
    max_elements: u64,
    points: usize,
) -> Figure1Series {
    triad_sweep_with(
        platform,
        subset,
        streaming_stores,
        TrafficModel::stream_triad(),
        min_elements,
        max_elements,
        points,
    )
}

/// Model a Triad sweep with an explicit per-element traffic model.
///
/// The figures pipeline passes the model *derived* by `bwb-dslcheck`'s
/// whole-chain dataflow analysis from a recorded Triad kernel (which is
/// cross-checked to equal the hand-declared constant) — so the published
/// curves consume derived rather than declared traffic.
#[allow(clippy::too_many_arguments)]
pub fn triad_sweep_with(
    platform: &Platform,
    subset: MachineSubset,
    streaming_stores: bool,
    traffic: TrafficModel,
    min_elements: u64,
    max_elements: u64,
    points: usize,
) -> Figure1Series {
    let model = MemoryHierarchyModel::new(platform.clone());
    let mode = if streaming_stores {
        StoreMode::Streaming
    } else {
        StoreMode::WriteAllocate
    };

    // Measured Triad figures already include write-allocate losses under the
    // default flags; calibrate the raw memory bandwidth so the reported
    // default-flag figure matches the measurement, then derive the SS gain
    // from the traffic model (bounded by the hardware's measured SS value
    // when the paper provides one).
    let raw_bw =
        platform.measured_triad_gbs / traffic.reported_bandwidth_gbs(1.0, StoreMode::WriteAllocate);

    let mut out = Vec::with_capacity(points);
    let lf = (min_elements as f64).ln();
    let lt = (max_elements as f64).ln();
    for s in 0..points {
        let elements = (lf + (lt - lf) * s as f64 / (points - 1) as f64).exp() as u64;
        let ws = 3 * elements * 8;
        let curve = model.bandwidth(ws, subset);
        let bw = if curve.dominant_level == 0 {
            // Memory-resident: apply store-mode traffic accounting against
            // the calibrated raw bandwidth, scaled to the subset.
            let frac = model.core_fraction(subset);
            let reported = traffic.reported_bandwidth_gbs(raw_bw * frac, mode);
            match (streaming_stores, platform.measured_triad_ss_gbs) {
                (true, Some(ss)) => reported.min(ss * frac),
                _ => reported,
            }
        } else {
            // Cache-resident: streaming stores are counterproductive in
            // cache; BabelStream reports the cache bandwidth either way.
            curve.bandwidth_gbs
        };
        out.push(Figure1Point {
            elements,
            working_set_bytes: ws,
            bandwidth_gbs: bw,
        });
    }
    Figure1Series {
        platform: platform.name.clone(),
        platform_kind: platform.kind,
        subset,
        streaming_stores,
        points: out,
    }
}

/// All Figure-1 series: three CPUs × three subsets, plus the SS variant on
/// the Xeon MAX (whole machine), matching the paper's figure contents.
pub fn figure1_curves(min_elements: u64, max_elements: u64, points: usize) -> Vec<Figure1Series> {
    figure1_curves_with(
        TrafficModel::stream_triad(),
        min_elements,
        max_elements,
        points,
    )
}

/// [`figure1_curves`] with an explicit Triad traffic model (see
/// [`triad_sweep_with`]).
pub fn figure1_curves_with(
    traffic: TrafficModel,
    min_elements: u64,
    max_elements: u64,
    points: usize,
) -> Vec<Figure1Series> {
    let mut series = Vec::new();
    for p in bwb_machine::platforms::all_cpus() {
        for subset in MachineSubset::ALL {
            series.push(triad_sweep_with(
                &p,
                subset,
                false,
                traffic,
                min_elements,
                max_elements,
                points,
            ));
        }
        if p.measured_triad_ss_gbs.is_some() {
            series.push(triad_sweep_with(
                &p,
                MachineSubset::WholeMachine,
                true,
                traffic,
                min_elements,
                max_elements,
                points,
            ));
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwb_machine::platforms;

    const MIN_E: u64 = 1 << 12;
    const MAX_E: u64 = 1 << 28; // 3 arrays × 2 GiB

    #[test]
    fn max_default_flags_plateau_matches_measurement() {
        let s = triad_sweep(
            &platforms::xeon_max_9480(),
            MachineSubset::WholeMachine,
            false,
            MIN_E,
            MAX_E,
            40,
        );
        let plateau = s.large_size_plateau_gbs();
        assert!((plateau - 1446.0).abs() / 1446.0 < 0.1, "plateau {plateau}");
    }

    #[test]
    fn streaming_stores_raise_max_plateau_toward_1643() {
        let base = triad_sweep(
            &platforms::xeon_max_9480(),
            MachineSubset::WholeMachine,
            false,
            MIN_E,
            MAX_E,
            40,
        );
        let ss = triad_sweep(
            &platforms::xeon_max_9480(),
            MachineSubset::WholeMachine,
            true,
            MIN_E,
            MAX_E,
            40,
        );
        let gain = ss.large_size_plateau_gbs() / base.large_size_plateau_gbs();
        assert!(gain > 1.05 && gain <= 4.0 / 3.0 + 1e-9, "SS gain {gain}");
        assert!(ss.large_size_plateau_gbs() <= 1643.0 * 1.01);
    }

    #[test]
    fn ddr_systems_plateau_near_300() {
        for (p, expect) in [
            (platforms::xeon_8360y(), 296.0),
            (platforms::epyc_7v73x(), 310.0),
        ] {
            let s = triad_sweep(&p, MachineSubset::WholeMachine, false, MIN_E, MAX_E, 40);
            let plateau = s.large_size_plateau_gbs();
            assert!(
                (plateau - expect).abs() / expect < 0.12,
                "{}: {plateau}",
                p.name
            );
        }
    }

    #[test]
    fn figure1_headline_ratio_4_8x() {
        let max = triad_sweep(
            &platforms::xeon_max_9480(),
            MachineSubset::WholeMachine,
            false,
            MIN_E,
            MAX_E,
            40,
        );
        let icx = triad_sweep(
            &platforms::xeon_8360y(),
            MachineSubset::WholeMachine,
            false,
            MIN_E,
            MAX_E,
            40,
        );
        let r = max.large_size_plateau_gbs() / icx.large_size_plateau_gbs();
        assert!(r > 4.2 && r < 5.4, "MAX/ICX ratio {r}");
    }

    #[test]
    fn cache_plateau_exceeds_memory_plateau() {
        for p in platforms::all_cpus() {
            let s = triad_sweep(&p, MachineSubset::WholeMachine, false, MIN_E, MAX_E, 60);
            let ratio = s.cache_plateau_gbs() / s.large_size_plateau_gbs();
            assert!(ratio > 2.0, "{}: cache/mem {ratio}", p.name);
        }
    }

    #[test]
    fn single_numa_scales_down() {
        let p = platforms::xeon_max_9480();
        let whole = triad_sweep(&p, MachineSubset::WholeMachine, false, MIN_E, MAX_E, 30);
        let numa = triad_sweep(&p, MachineSubset::OneNuma, false, MIN_E, MAX_E, 30);
        let r = whole.large_size_plateau_gbs() / numa.large_size_plateau_gbs();
        assert!((r - 8.0).abs() < 0.5, "whole/NUMA ratio {r}");
    }

    #[test]
    fn full_figure1_has_ten_series() {
        let all = figure1_curves(MIN_E, MAX_E, 12);
        // 3 CPUs × 3 subsets + 1 SS variant on MAX.
        assert_eq!(all.len(), 10);
        assert_eq!(all.iter().filter(|s| s.streaming_stores).count(), 1);
    }

    #[test]
    fn epyc_vcache_plateau_extends_beyond_xeons() {
        // The distinguishing Figure-1 feature of Milan-X: high bandwidth
        // out to ~GB working sets.
        let amd = triad_sweep(
            &platforms::epyc_7v73x(),
            MachineSubset::WholeMachine,
            false,
            MIN_E,
            MAX_E,
            60,
        );
        let icx = triad_sweep(
            &platforms::xeon_8360y(),
            MachineSubset::WholeMachine,
            false,
            MIN_E,
            MAX_E,
            60,
        );
        // At ~1 GiB working set (arrays of 2^25 elements → 768 MiB):
        let pick = |s: &Figure1Series| {
            s.points
                .iter()
                .find(|p| p.working_set_bytes > 700 << 20)
                .map(|p| p.bandwidth_gbs)
                .unwrap()
        };
        assert!(pick(&amd) > 3.0 * pick(&icx));
    }
}
