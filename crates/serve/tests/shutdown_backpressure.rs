//! Graceful-shutdown and bounded-queue backpressure, end to end over real
//! sockets: overflowing the admission queue yields `429` with a
//! `Retry-After` hint (and the work succeeds on retry); draining refuses
//! new jobs with `503` while in-flight connections finish, then the accept
//! loop returns.

use bwb_serve::http::request;
use bwb_serve::server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Barrier;

#[test]
fn overflowing_the_admission_queue_returns_429_with_retry_after() {
    // One permit, zero queue slots: any overlapping second job is refused.
    let server = Server::bind(ServerConfig {
        max_concurrent: 1,
        max_queue: 0,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let state = server.state();
    let runner = std::thread::spawn(move || server.run());

    // Distinct specs (different n) so coalescing cannot absorb the burst.
    let bodies: Vec<String> = [12usize, 14, 16, 18]
        .iter()
        .map(|n| {
            format!("{{\"kind\":\"benchmark\",\"app\":\"acoustic\",\"n\":{n},\"iterations\":3}}")
        })
        .collect();

    let barrier = Barrier::new(bodies.len());
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = bodies
            .iter()
            .map(|body| {
                let barrier = &barrier;
                let addr = addr.clone();
                scope.spawn(move || {
                    barrier.wait();
                    request(&addr, "POST", "/job", Some(body)).expect("request")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = responses.iter().filter(|r| r.status == 200).count();
    let rejected: Vec<_> = responses.iter().filter(|r| r.status == 429).collect();
    assert!(ok >= 1, "at least the admitted leader must succeed");
    assert!(
        !rejected.is_empty(),
        "a 4-job burst against 1 permit + 0 queue slots must overflow; statuses: {:?}",
        responses.iter().map(|r| r.status).collect::<Vec<_>>()
    );
    for r in &rejected {
        let retry: u64 = r
            .header("retry-after")
            .expect("429 must carry Retry-After")
            .parse()
            .expect("Retry-After must be integer seconds");
        assert!(retry >= 1);
    }

    // Backpressure is load shedding, not failure: the shed jobs succeed
    // when resubmitted without contention.
    for (body, resp) in bodies.iter().zip(&responses) {
        if resp.status == 429 {
            let retry = request(&addr, "POST", "/job", Some(body)).expect("retry");
            assert_eq!(retry.status, 200, "shed job must succeed on retry");
        }
    }

    state.begin_shutdown();
    runner.join().expect("server thread");
}

#[test]
fn draining_refuses_new_jobs_and_exits_once_idle() {
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let state = server.state();
    let runner = std::thread::spawn(move || server.run());

    // Hold one connection open mid-request: it counts as in-flight, so the
    // accept loop must keep serving (and answering 503s) until it finishes.
    let mut held = TcpStream::connect(&addr).expect("connect");

    let shutdown = request(&addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(shutdown.status, 200);
    assert!(state.is_draining());

    // New jobs are refused while draining, with a retry hint.
    let refused = request(
        &addr,
        "POST",
        "/job",
        Some(r#"{"kind":"figure","figure":8}"#),
    )
    .expect("job during drain");
    assert_eq!(refused.status, 503);
    assert!(refused.header("retry-after").is_some());

    // Liveness stays up for the drain's duration.
    let health = request(&addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200);

    // The held request now completes normally — drain lets in-flight work
    // finish rather than cutting it off.
    held.write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
        .expect("finish held request");
    let mut reply = String::new();
    held.read_to_string(&mut reply).expect("held response");
    assert!(reply.starts_with("HTTP/1.1 200"), "held reply: {reply}");

    // With the last in-flight connection done, the accept loop returns.
    runner.join().expect("server thread exits after drain");
}
