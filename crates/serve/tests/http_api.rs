//! End-to-end HTTP tests: submit jobs over a real socket and check the
//! cache, trace, and error paths the README documents.

use bwb_serve::http::{request, ClientResponse};
use bwb_serve::server::{Server, ServerConfig};
use bwb_trace::json::{parse, validate_chrome, Json};

/// Bind an ephemeral server, run `f` against its address, then drain.
fn with_server(f: impl FnOnce(&str)) {
    with_server_cfg(ServerConfig::default(), f);
}

fn with_server_cfg(cfg: ServerConfig, f: impl FnOnce(&str)) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().to_string();
    let state = server.state();
    let runner = std::thread::spawn(move || server.run());
    f(&addr);
    state.begin_shutdown();
    runner.join().expect("server thread");
}

fn post_job(addr: &str, body: &str) -> ClientResponse {
    request(addr, "POST", "/job", Some(body)).expect("request")
}

#[test]
fn resubmitted_job_is_served_from_cache_bit_identically() {
    with_server(|addr| {
        let body = r#"{"kind":"figure","figure":8}"#;
        let first = post_job(addr, body);
        assert_eq!(first.status, 200);
        assert_eq!(first.header("x-cache"), Some("miss"));
        let key = first.header("x-cache-key").expect("key header").to_string();

        let second = post_job(addr, body);
        assert_eq!(second.status, 200);
        assert_eq!(second.header("x-cache"), Some("hit"));
        assert_eq!(second.header("x-cache-key"), Some(key.as_str()));
        assert_eq!(first.body, second.body, "cache must return identical bytes");

        // A real benchmark run caches the same way.
        let bench = r#"{"kind":"benchmark","app":"acoustic","n":12,"iterations":2}"#;
        assert_eq!(post_job(addr, bench).header("x-cache"), Some("miss"));
        assert_eq!(post_job(addr, bench).header("x-cache"), Some("hit"));

        let stats = request(addr, "GET", "/stats", None).expect("stats");
        let doc = parse(&stats.body).expect("stats json");
        let hits = doc
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_f64)
            .expect("cache.hits");
        assert!(hits >= 2.0, "expected >= 2 cache hits, saw {hits}");
    });
}

#[test]
fn unsatisfiable_shard_carves_are_client_errors_not_crashes() {
    // 9 one-per-NUMA shards on 8 NUMA domains: binding must succeed (the
    // pool carves lazily), the infeasible placement must come back as a
    // 400, and the same server must keep serving feasibly-placed jobs.
    let cfg = ServerConfig {
        shards: 9,
        ..ServerConfig::default()
    };
    with_server_cfg(cfg, |addr| {
        let numa = post_job(
            addr,
            r#"{"kind":"benchmark","app":"acoustic","n":12,"iterations":2,"ranks":2,"placement":"one-per-numa"}"#,
        );
        assert_eq!(numa.status, 400, "{}", numa.body);
        assert!(numa.body.contains("NUMA domains"), "{}", numa.body);

        let packed = post_job(
            addr,
            r#"{"kind":"benchmark","app":"acoustic","n":12,"iterations":2,"ranks":2,"placement":"packed"}"#,
        );
        assert_eq!(packed.status, 200, "{}", packed.body);
        let doc = parse(&packed.body).expect("payload json");
        assert_eq!(doc.get("placement").and_then(Json::as_str), Some("packed"));

        // Differently-placed requests must not share a cache entry.
        let again = post_job(
            addr,
            r#"{"kind":"benchmark","app":"acoustic","n":12,"iterations":2,"ranks":2,"placement":"packed"}"#,
        );
        assert_eq!(again.header("x-cache"), Some("hit"));
        let unplaced = post_job(
            addr,
            r#"{"kind":"benchmark","app":"acoustic","n":12,"iterations":2,"ranks":2}"#,
        );
        assert_eq!(unplaced.header("x-cache"), Some("miss"));
    });
}

#[test]
fn trace_jobs_store_a_retrievable_perfetto_export() {
    with_server(|addr| {
        let resp = post_job(
            addr,
            r#"{"kind":"trace","app":"cloverleaf2d","n":16,"iterations":2}"#,
        );
        assert_eq!(resp.status, 200);
        let doc = parse(&resp.body).expect("payload json");
        let path = doc
            .get("trace_path")
            .and_then(Json::as_str)
            .expect("trace_path")
            .to_string();

        let trace = request(addr, "GET", &path, None).expect("trace fetch");
        assert_eq!(trace.status, 200);
        let chrome = parse(&trace.body).expect("chrome json");
        assert!(
            validate_chrome(&chrome).is_empty(),
            "trace export must validate as Chrome trace_event JSON"
        );
    });
}

#[test]
fn error_paths_return_structured_statuses() {
    with_server(|addr| {
        assert_eq!(post_job(addr, "not json").status, 400);
        assert_eq!(post_job(addr, r#"{"kind":"teapot"}"#).status, 400);
        assert_eq!(
            post_job(addr, r#"{"kind":"figure","figure":2}"#).status,
            400
        );
        assert_eq!(
            request(addr, "GET", "/trace/999", None)
                .expect("req")
                .status,
            404
        );
        assert_eq!(
            request(addr, "GET", "/nope", None).expect("req").status,
            404
        );
        assert_eq!(
            request(addr, "GET", "/healthz", None).expect("req").status,
            200
        );
    });
}
