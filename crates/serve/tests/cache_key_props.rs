//! Property tests for the content-addressed cache keys (satellite of the
//! serving subsystem): any change to any component of the key material —
//! app, grid config, plan, machine descriptor, job kind — must change the
//! key, and the key must be a pure function of the material (no
//! process-local state), so caches survive restarts protocol-compatibly.

use bwb_apps::jobspec::BenchSpec;
use bwb_apps::AppId;
use bwb_machine::ShardPolicy;
use bwb_serve::{CacheKey, Job};
use proptest::prelude::*;

/// Sample a benchmark spec from plain integers (the vendored proptest has
/// range strategies only).
fn spec_from(app_idx: usize, n: usize, iters: usize, par: usize) -> BenchSpec {
    BenchSpec {
        app: AppId::ALL[app_idx % AppId::ALL.len()],
        n,
        iterations: iters,
        ranks: 1,
        parallel: par % 2 == 1,
    }
}

fn bench_key(spec: &BenchSpec, plan: Option<&str>, machine: &str) -> CacheKey {
    Job::Benchmark {
        spec: spec.clone(),
        plan: plan.map(String::from),
        placement: None,
    }
    .cache_key(machine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every single-field perturbation of the key material produces a
    /// different key, and all perturbations are mutually distinct — no
    /// component is ignored and no two components alias each other.
    #[test]
    fn any_field_change_changes_the_key(
        app_idx in 0usize..9,
        n in 4usize..256,
        iters in 1usize..64,
        par in 0usize..2,
    ) {
        let spec = spec_from(app_idx, n, iters, par);
        let machine = "machine-a";
        let base = bench_key(&spec, None, machine);

        let mut other_app = spec.clone();
        other_app.app = AppId::ALL[(app_idx + 1) % AppId::ALL.len()];
        let mut other_n = spec.clone();
        other_n.n = n + 1;
        let mut other_iters = spec.clone();
        other_iters.iterations = iters + 1;
        let mut other_par = spec.clone();
        other_par.parallel = !spec.parallel;

        let perturbed = [
            bench_key(&other_app, None, machine),
            bench_key(&other_n, None, machine),
            bench_key(&other_iters, None, machine),
            bench_key(&other_par, None, machine),
            bench_key(&spec, Some("{\"app\":\"x\"}"), machine),
            bench_key(&spec, None, "machine-b"),
            Job::Trace { spec: spec.clone() }.cache_key(machine),
            Job::Benchmark {
                spec: spec.clone(),
                plan: None,
                placement: Some(ShardPolicy::Packed),
            }
            .cache_key(machine),
            Job::Benchmark {
                spec: spec.clone(),
                plan: None,
                placement: Some(ShardPolicy::OnePerNuma),
            }
            .cache_key(machine),
        ];
        for (i, k) in perturbed.iter().enumerate() {
            prop_assert_ne!(base, *k, "perturbation #{} collided with base", i);
        }
        for i in 0..perturbed.len() {
            for j in (i + 1)..perturbed.len() {
                prop_assert_ne!(
                    perturbed[i], perturbed[j],
                    "perturbations #{} and #{} collided", i, j
                );
            }
        }
    }

    /// Keys are pure functions of the material: rebuilding the same job
    /// from scratch always yields the same key.
    #[test]
    fn keys_are_deterministic(
        app_idx in 0usize..9,
        n in 4usize..256,
        iters in 1usize..64,
        par in 0usize..2,
    ) {
        let a = bench_key(&spec_from(app_idx, n, iters, par), None, "m");
        let b = bench_key(&spec_from(app_idx, n, iters, par), None, "m");
        prop_assert_eq!(a, b);
    }
}

/// Cross-process stability: the key of a fixed job against a fixed machine
/// descriptor is a pinned constant (independently recomputed outside this
/// codebase). If this changes, every persisted cache is invalidated —
/// bump intentionally, never accidentally.
#[test]
fn golden_job_key_is_stable_across_processes() {
    let job = Job::Benchmark {
        spec: BenchSpec {
            app: AppId::Acoustic,
            n: 32,
            iterations: 10,
            ranks: 1,
            parallel: false,
        },
        plan: None,
        placement: None,
    };
    assert_eq!(
        job.cache_key("golden-machine").to_string(),
        "a7a162e2c8b60c36"
    );
}
