//! Admission control and single-flight coalescing.
//!
//! Two concerns share this module because they interlock:
//!
//! * **Single-flight**: identical in-flight jobs (same cache key) execute
//!   once. The first submitter becomes the *leader* and runs the work; any
//!   duplicate arriving before completion becomes a *follower* and awaits
//!   the leader's result over a oneshot channel. Followers never consume
//!   an admission slot — coalescing happens before admission, so a burst
//!   of identical requests costs one queue position, not N.
//! * **Admission**: heavy-job concurrency is bounded by a FIFO-fair
//!   semaphore. When the semaphore's wait queue is full, new leaders are
//!   rejected (HTTP 429 upstream) — and the rejection propagates to any
//!   followers that joined the losing flight, since they would have been
//!   rejected too.
//!
//! The leader runs its work *synchronously on its own calling thread*
//! (connection threads are cheap; the async runtime only orchestrates
//! waiting), so heavy compute never occupies an executor worker.

use crate::key::CacheKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tokio::sync::{oneshot, Semaphore};

type Payload = Result<String, String>;

/// Counters for `/stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightStats {
    /// Jobs whose work closure actually ran (single-flight leaders).
    pub executed: u64,
    /// Submissions served by joining an in-flight identical job.
    pub coalesced: u64,
    /// Submissions rejected because the admission queue was full.
    pub rejected: u64,
    /// Leaders currently holding an admission permit.
    pub running_now: usize,
    /// Leaders currently waiting for a permit.
    pub queued_now: usize,
}

/// Admission rejection: the bounded queue was full.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueFull {
    /// Hint for the client's `Retry-After` header, seconds.
    pub retry_after_secs: u64,
}

/// The result of one submission.
#[derive(Debug)]
pub struct FlightOutcome {
    pub payload: Payload,
    /// True when this submission rode on another's execution.
    pub coalesced: bool,
}

pub struct SingleFlight {
    sem: Arc<Semaphore>,
    max_queue: usize,
    flights: Mutex<HashMap<u64, Vec<oneshot::Sender<Payload>>>>,
    executed: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
}

impl SingleFlight {
    /// `max_concurrent` leaders run at once; up to `max_queue` more wait;
    /// beyond that submissions are rejected.
    pub fn new(max_concurrent: usize, max_queue: usize) -> SingleFlight {
        assert!(max_concurrent > 0, "need at least one admission slot");
        SingleFlight {
            sem: Arc::new(Semaphore::new(max_concurrent)),
            max_queue,
            flights: Mutex::new(HashMap::new()),
            executed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Followers currently joined to `key`'s flight (None = no flight).
    /// Exposed for tests and `/stats`.
    pub fn waiters_for(&self, key: CacheKey) -> Option<usize> {
        self.flights.lock().unwrap().get(&key.0).map(Vec::len)
    }

    pub fn stats(&self) -> FlightStats {
        FlightStats {
            executed: self.executed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            running_now: self.sem.initial_permits() - self.sem.available_permits(),
            queued_now: self.sem.waiters(),
        }
    }

    /// Submit work under `key`. Exactly one of the concurrent submitters
    /// with the same key runs `work`; the rest receive its payload.
    ///
    /// `work` runs on the calling thread after async admission.
    pub async fn run_or_join<F>(&self, key: CacheKey, work: F) -> Result<FlightOutcome, QueueFull>
    where
        F: FnOnce() -> Payload,
    {
        // Join an existing flight if one is up.
        let rx = {
            let mut flights = self.flights.lock().unwrap();
            match flights.get_mut(&key.0) {
                Some(waiters) => {
                    let (tx, rx) = oneshot::channel();
                    waiters.push(tx);
                    Some(rx)
                }
                None => {
                    flights.insert(key.0, Vec::new());
                    None
                }
            }
        };
        if let Some(rx) = rx {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            let payload = match rx.await {
                Ok(p) => p,
                // Leader dropped without resolving (rejected): mirror it.
                Err(_) => Err("coalesced leader was rejected by admission".into()),
            };
            return Ok(FlightOutcome {
                payload,
                coalesced: true,
            });
        }

        // Leader path: bounded-queue admission.
        let permit = match self.sem.try_acquire_owned() {
            Some(p) => p,
            None if self.sem.waiters() >= self.max_queue => {
                // Abandon the flight; followers see the drop as rejection.
                self.flights.lock().unwrap().remove(&key.0);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(QueueFull {
                    retry_after_secs: 1,
                });
            }
            None => self.sem.acquire_owned().await,
        };

        self.executed.fetch_add(1, Ordering::Relaxed);
        let payload = work();
        drop(permit);

        // Resolve the flight: everyone who joined gets the payload.
        let waiters = self
            .flights
            .lock()
            .unwrap()
            .remove(&key.0)
            .unwrap_or_default();
        for tx in waiters {
            let _ = tx.send(payload.clone());
        }
        Ok(FlightOutcome {
            payload,
            coalesced: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;
    use tokio::runtime::Runtime;

    #[test]
    fn identical_concurrent_jobs_execute_once_with_identical_payloads() {
        let rt = Runtime::with_workers(4);
        let sf = Arc::new(SingleFlight::new(2, 4));
        let runs = Arc::new(AtomicUsize::new(0));
        let key = CacheKey(7);

        // The leader's work blocks until the follower has provably joined
        // the flight, so coalescing is deterministic, not timing-dependent.
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let leader = {
            let (sf, runs) = (Arc::clone(&sf), Arc::clone(&runs));
            rt.spawn(async move {
                sf.run_or_join(key, move || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    gate_rx.recv().unwrap();
                    Ok("{\"result\":42}".to_string())
                })
                .await
                .unwrap()
            })
        };
        // Wait until the leader's flight is registered, then join it.
        while sf.waiters_for(key).is_none() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let follower = {
            let (sf, runs) = (Arc::clone(&sf), Arc::clone(&runs));
            rt.spawn(async move {
                sf.run_or_join(key, move || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    Ok("{\"result\":\"should never run\"}".to_string())
                })
                .await
                .unwrap()
            })
        };
        while sf.waiters_for(key) != Some(1) {
            std::thread::sleep(Duration::from_millis(1));
        }
        gate_tx.send(()).unwrap();

        let a = rt.block_on(leader).unwrap();
        let b = rt.block_on(follower).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "work ran exactly once");
        assert_eq!(a.payload.as_deref(), b.payload.as_deref());
        assert!(!a.coalesced && b.coalesced);
        let s = sf.stats();
        assert_eq!((s.executed, s.coalesced, s.rejected), (1, 1, 0));
        assert_eq!(sf.waiters_for(key), None, "flight cleaned up");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let rt = Runtime::with_workers(2);
        let sf = Arc::new(SingleFlight::new(2, 4));
        let runs = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let (sf, runs) = (Arc::clone(&sf), Arc::clone(&runs));
                rt.spawn(async move {
                    sf.run_or_join(CacheKey(i), move || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        Ok(format!("{{\"i\":{i}}}"))
                    })
                    .await
                    .unwrap()
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let out = rt.block_on(h).unwrap();
            assert_eq!(out.payload.unwrap(), format!("{{\"i\":{i}}}"));
            assert!(!out.coalesced);
        }
        assert_eq!(runs.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn full_queue_rejects_new_leaders() {
        let rt = Runtime::with_workers(4);
        // One slot, zero queue: anything beyond the running leader bounces.
        let sf = Arc::new(SingleFlight::new(1, 0));
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let holder = {
            let sf = Arc::clone(&sf);
            rt.spawn(async move {
                sf.run_or_join(CacheKey(1), move || {
                    gate_rx.recv().unwrap();
                    Ok("held".to_string())
                })
                .await
                .unwrap()
            })
        };
        while sf.stats().running_now != 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let rejected = {
            let sf = Arc::clone(&sf);
            rt.block_on(async move { sf.run_or_join(CacheKey(2), || Ok("no".into())).await })
        };
        assert_eq!(
            rejected.unwrap_err(),
            QueueFull {
                retry_after_secs: 1
            }
        );
        gate_tx.send(()).unwrap();
        assert_eq!(rt.block_on(holder).unwrap().payload.unwrap(), "held");
        assert_eq!(sf.stats().rejected, 1);
    }
}
