//! A minimal HTTP/1.1 layer: exactly the subset the job API needs.
//!
//! Requests are read head-first (request line + headers, CRLF-delimited)
//! with a `Content-Length`-framed body; responses always close the
//! connection (`Connection: close`), which keeps the framing trivial and
//! matches the one-request-per-job usage pattern of the load generator
//! and CI smoke tests. No chunked encoding, no keep-alive, no TLS.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Cap on request head + body: jobs are small JSON documents.
const MAX_HEAD_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Read one request from the stream. `Err` strings are protocol-level
/// (respond 400 and close).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    // Read until the blank line terminating the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err("request head too large".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-head".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).map_err(|_| "head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();
    let headers: Vec<(String, String)> = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            l.split_once(':')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        })
        .collect();

    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse().map_err(|_| "bad Content-Length"))
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err("body too large".into());
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        headers,
        body: String::from_utf8(body).map_err(|_| "body is not UTF-8")?,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into(),
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain".into())],
            body: body.into(),
        }
    }

    /// Client-facing error as a JSON envelope.
    pub fn error(status: u16, message: &str) -> Response {
        let escaped = message.replace('\\', "\\\\").replace('"', "\\\"");
        Response::json(status, format!("{{\"error\":\"{escaped}\"}}"))
    }

    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        for (k, v) in &self.headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str(&format!(
            "Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.body.len()
        ));
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// A tiny blocking client for the load generator and tests: one request,
/// one response, connection closed.
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .map_err(|e| e.to_string())?;
    stream
        .write_all(body.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
    let raw = String::from_utf8(raw).map_err(|_| "response is not UTF-8")?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("malformed response (no head terminator)")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    Ok(ClientResponse {
        status,
        headers: lines
            .filter_map(|l| {
                l.split_once(':')
                    .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            })
            .collect(),
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_round_trip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/job");
            assert_eq!(req.body, "{\"kind\":\"figure\",\"figure\":8}");
            Response::json(200, "{\"ok\":true}")
                .header("X-Cache", "miss")
                .write_to(&mut s)
                .unwrap();
        });
        let resp = request(
            &addr,
            "POST",
            "/job",
            Some("{\"kind\":\"figure\",\"figure\":8}"),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-cache"), Some("miss"));
        assert_eq!(resp.body, "{\"ok\":true}");
    }

    #[test]
    fn bodyless_get_parses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!((req.method.as_str(), req.path.as_str()), ("GET", "/stats"));
            assert!(req.body.is_empty());
            Response::text(200, "ok").write_to(&mut s).unwrap();
        });
        let resp = request(&addr, "GET", "/stats", None).unwrap();
        server.join().unwrap();
        assert_eq!((resp.status, resp.body.as_str()), (200, "ok"));
    }
}
