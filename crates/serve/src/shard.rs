//! The sharded worker pool.
//!
//! The service carves the modelled machine's physical cores into disjoint
//! shards ([`CpuTopology::carve_shards`]) and pins each distributed job's
//! `shmpi` universe to one shard's core set via [`Universe::run_pinned`].
//! Messages inside a universe are priced with the placement-aware latency
//! model, and the transport is the lock-free SPSC mailbox unconditionally
//! — the serving hot path never takes the locked mailbox.
//!
//! Carving is *lazy and per-policy*: jobs may request a `placement` and
//! the pool materializes (and caches) one shard set per [`ShardPolicy`] on
//! first use. A carve the topology cannot satisfy (say 9 one-per-NUMA
//! shards on 8 domains) is a job-level error the HTTP layer maps to 400 —
//! it never crashes the pool. When a job does not pick a placement, the
//! pool asks placecheck for the certified policy of that app/rank-count
//! ([`bwb_dslcheck::certified_shard_policy`]) and falls back to the
//! configured default.
//!
//! A shard runs one universe at a time (its cores are "occupied"); jobs
//! are routed round-robin and block on the shard's gate, which the
//! admission layer upstream keeps short by bounding concurrent heavy jobs.

use bwb_apps::jobspec::{BenchOutcome, BenchSpec};
use bwb_machine::{CpuTopology, Platform, RankPlacement, ShardPolicy};
use bwb_shmpi::{MailboxKind, Universe};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct Shard {
    placement: RankPlacement,
    /// One universe per shard at a time.
    gate: Mutex<()>,
    jobs: AtomicU64,
}

/// The carved shards of one policy, with their own round-robin cursor.
struct ShardSet {
    shards: Vec<Shard>,
    next: AtomicUsize,
}

/// Per-shard counters for `/stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    pub shard: usize,
    pub cores: usize,
    pub jobs: u64,
}

/// One distributed execution's result with its routing information.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    pub outcome: BenchOutcome,
    pub shard: usize,
    /// The policy the run was actually placed under.
    pub policy: ShardPolicy,
    /// Fraction of rank time blocked in communication (Figure 7's metric).
    pub mpi_fraction: f64,
    pub wall_seconds: f64,
}

pub struct ShardPool {
    platform: Platform,
    n_shards: usize,
    default_policy: ShardPolicy,
    /// Lazily carved shard sets, one per policy ever requested.
    sets: Mutex<HashMap<ShardPolicy, Arc<ShardSet>>>,
}

impl ShardPool {
    /// Remember the carve parameters; no cores are carved until a job
    /// needs them, so an unsatisfiable configuration surfaces as that
    /// job's error instead of a construction panic.
    pub fn new(platform: Platform, n_shards: usize, policy: ShardPolicy) -> ShardPool {
        ShardPool {
            platform,
            n_shards,
            default_policy: policy,
            sets: Mutex::new(HashMap::new()),
        }
    }

    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    pub fn policy(&self) -> ShardPolicy {
        self.default_policy
    }

    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    pub fn topology(&self) -> &CpuTopology {
        &self.platform.topology
    }

    /// The carved shard set for `policy`, materializing it on first use.
    fn set_for(&self, policy: ShardPolicy) -> Result<Arc<ShardSet>, String> {
        let mut sets = self.sets.lock().unwrap();
        if let Some(set) = sets.get(&policy) {
            return Ok(Arc::clone(set));
        }
        let shards = self
            .platform
            .topology
            .carve_shards(self.n_shards, policy)?
            .into_iter()
            .map(|placement| Shard {
                placement,
                gate: Mutex::new(()),
                jobs: AtomicU64::new(0),
            })
            .collect();
        let set = Arc::new(ShardSet {
            shards,
            next: AtomicUsize::new(0),
        });
        sets.insert(policy, Arc::clone(&set));
        Ok(set)
    }

    /// Stats of the default policy's shard set (empty until first carve
    /// or when the default policy cannot carve this topology).
    pub fn stats(&self) -> Vec<ShardStats> {
        let sets = self.sets.lock().unwrap();
        let Some(set) = sets.get(&self.default_policy) else {
            return Vec::new();
        };
        set.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStats {
                shard: i,
                cores: s.placement.n_ranks(),
                jobs: s.jobs.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The policy a ranked run of `spec` executes under when the request
    /// does not pick one: placecheck's certified shard policy for this
    /// app/rank count on this platform, else the configured default.
    pub fn certified_policy(&self, spec: &BenchSpec) -> ShardPolicy {
        bwb_dslcheck::certified_shard_policy(
            spec.app.slug(),
            spec.ranks,
            &self.platform,
            self.n_shards,
        )
        .unwrap_or(self.default_policy)
    }

    /// Run a ranked spec on the next shard (round-robin) of the requested
    /// policy — or of placecheck's certified policy when `policy` is
    /// `None` — pinned to its carved core set over the SPSC transport.
    pub fn run_ranked(
        &self,
        spec: &BenchSpec,
        policy: Option<ShardPolicy>,
    ) -> Result<ShardedRun, String> {
        spec.validate()?;
        let policy = policy.unwrap_or_else(|| self.certified_policy(spec));
        let set = self.set_for(policy)?;
        let idx = set.next.fetch_add(1, Ordering::Relaxed) % set.shards.len();
        let shard = &set.shards[idx];
        if spec.ranks > shard.placement.n_ranks() {
            return Err(format!(
                "ranks={} exceeds the shard's {} cores (shards={}, policy={})",
                spec.ranks,
                shard.placement.n_ranks(),
                set.shards.len(),
                policy.label(),
            ));
        }
        let _gate = shard.gate.lock().unwrap();
        shard.jobs.fetch_add(1, Ordering::Relaxed);
        let sp = spec.clone();
        let out = Universe::run_pinned(
            spec.ranks,
            MailboxKind::Spsc,
            (shard.placement.clone(), self.platform.latency),
            move |c| sp.run_ranked(c),
        );
        let mpi_fraction = out.mpi_fraction();
        let wall_seconds = out.wall_seconds;
        Ok(ShardedRun {
            outcome: spec.merge_ranked(&out.results),
            shard: idx,
            policy,
            mpi_fraction,
            wall_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwb_apps::AppId;
    use bwb_machine::platforms;

    #[test]
    fn pool_carves_requested_shards_and_round_robins() {
        let pool = ShardPool::new(platforms::xeon_8360y(), 2, ShardPolicy::Packed);
        assert_eq!(pool.n_shards(), 2);
        let spec = BenchSpec {
            app: AppId::Acoustic,
            n: 12,
            iterations: 2,
            ranks: 2,
            parallel: false,
        };
        let a = pool.run_ranked(&spec, Some(ShardPolicy::Packed)).unwrap();
        let b = pool.run_ranked(&spec, Some(ShardPolicy::Packed)).unwrap();
        assert_ne!(a.shard, b.shard, "round-robin over both shards");
        assert_eq!(a.outcome.ranks, 2);
        // Same spec, same physics: validation quantities agree exactly.
        assert_eq!(a.outcome.validation, b.outcome.validation);
        let stats = pool.stats();
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 2);
    }

    #[test]
    fn oversized_rank_counts_are_refused_with_context() {
        // 72 physical cores packed into 8 shards of 9 cores each.
        let pool = ShardPool::new(platforms::xeon_8360y(), 8, ShardPolicy::Packed);
        let spec = BenchSpec {
            app: AppId::Acoustic,
            n: 64,
            iterations: 1,
            ranks: 64,
            parallel: false,
        };
        let err = pool
            .run_ranked(&spec, Some(ShardPolicy::Packed))
            .unwrap_err();
        assert!(err.contains("exceeds the shard's"), "{err}");
    }

    #[test]
    fn unsatisfiable_carves_error_per_job_not_at_construction() {
        // 9 one-per-NUMA shards on 8 domains: constructing the pool is
        // fine; the carve error belongs to the job that needs it.
        let pool = ShardPool::new(platforms::xeon_max_9480(), 9, ShardPolicy::OnePerNuma);
        let spec = BenchSpec {
            app: AppId::Acoustic,
            n: 12,
            iterations: 1,
            ranks: 2,
            parallel: false,
        };
        let err = pool
            .run_ranked(&spec, Some(ShardPolicy::OnePerNuma))
            .unwrap_err();
        assert!(err.contains("NUMA domains"), "{err}");
        // The same pool still serves jobs under a policy that carves.
        let ok = pool.run_ranked(&spec, Some(ShardPolicy::Packed)).unwrap();
        assert_eq!(ok.outcome.ranks, 2);
        assert_eq!(ok.policy, ShardPolicy::Packed);
    }

    #[test]
    fn default_placement_comes_from_placecheck() {
        let pool = ShardPool::new(platforms::xeon_max_9480(), 2, ShardPolicy::OnePerNuma);
        let spec = BenchSpec {
            app: AppId::Acoustic,
            n: 12,
            iterations: 1,
            ranks: 4,
            parallel: false,
        };
        let certified = pool.certified_policy(&spec);
        let run = pool.run_ranked(&spec, None).unwrap();
        assert_eq!(run.policy, certified);
    }
}
