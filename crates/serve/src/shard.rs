//! The sharded worker pool.
//!
//! The service carves the modelled machine's physical cores into disjoint
//! shards ([`CpuTopology::carve_shards`]) and pins each distributed job's
//! `shmpi` universe to one shard's core set via [`Universe::run_pinned`].
//! Messages inside a universe are priced with the placement-aware latency
//! model, and the transport is the lock-free SPSC mailbox unconditionally
//! — the serving hot path never takes the locked mailbox.
//!
//! A shard runs one universe at a time (its cores are "occupied"); jobs
//! are routed round-robin and block on the shard's gate, which the
//! admission layer upstream keeps short by bounding concurrent heavy jobs.

use bwb_apps::jobspec::{BenchOutcome, BenchSpec};
use bwb_machine::{CpuTopology, Platform, RankPlacement, ShardPolicy};
use bwb_shmpi::{MailboxKind, Universe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

struct Shard {
    placement: RankPlacement,
    /// One universe per shard at a time.
    gate: Mutex<()>,
    jobs: AtomicU64,
}

/// Per-shard counters for `/stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    pub shard: usize,
    pub cores: usize,
    pub jobs: u64,
}

/// One distributed execution's result with its routing information.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    pub outcome: BenchOutcome,
    pub shard: usize,
    /// Fraction of rank time blocked in communication (Figure 7's metric).
    pub mpi_fraction: f64,
    pub wall_seconds: f64,
}

pub struct ShardPool {
    platform: Platform,
    policy: ShardPolicy,
    shards: Vec<Shard>,
    next: AtomicUsize,
}

impl ShardPool {
    /// Carve `n_shards` disjoint core sets out of `platform`'s topology.
    pub fn new(platform: Platform, n_shards: usize, policy: ShardPolicy) -> ShardPool {
        let shards = platform
            .topology
            .carve_shards(n_shards, policy)
            .into_iter()
            .map(|placement| Shard {
                placement,
                gate: Mutex::new(()),
                jobs: AtomicU64::new(0),
            })
            .collect();
        ShardPool {
            platform,
            policy,
            shards,
            next: AtomicUsize::new(0),
        }
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    pub fn topology(&self) -> &CpuTopology {
        &self.platform.topology
    }

    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStats {
                shard: i,
                cores: s.placement.n_ranks(),
                jobs: s.jobs.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Run a ranked spec on the next shard (round-robin), pinned to its
    /// carved core set over the SPSC transport.
    pub fn run_ranked(&self, spec: &BenchSpec) -> Result<ShardedRun, String> {
        spec.validate()?;
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let shard = &self.shards[idx];
        if spec.ranks > shard.placement.n_ranks() {
            return Err(format!(
                "ranks={} exceeds the shard's {} cores (shards={}, policy={})",
                spec.ranks,
                shard.placement.n_ranks(),
                self.shards.len(),
                self.policy.label(),
            ));
        }
        let _gate = shard.gate.lock().unwrap();
        shard.jobs.fetch_add(1, Ordering::Relaxed);
        let sp = spec.clone();
        let out = Universe::run_pinned(
            spec.ranks,
            MailboxKind::Spsc,
            (shard.placement.clone(), self.platform.latency),
            move |c| sp.run_ranked(c),
        );
        let mpi_fraction = out.mpi_fraction();
        let wall_seconds = out.wall_seconds;
        Ok(ShardedRun {
            outcome: spec.merge_ranked(&out.results),
            shard: idx,
            mpi_fraction,
            wall_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwb_apps::AppId;
    use bwb_machine::platforms;

    #[test]
    fn pool_carves_requested_shards_and_round_robins() {
        let pool = ShardPool::new(platforms::xeon_8360y(), 2, ShardPolicy::Packed);
        assert_eq!(pool.n_shards(), 2);
        let spec = BenchSpec {
            app: AppId::Acoustic,
            n: 12,
            iterations: 2,
            ranks: 2,
            parallel: false,
        };
        let a = pool.run_ranked(&spec).unwrap();
        let b = pool.run_ranked(&spec).unwrap();
        assert_ne!(a.shard, b.shard, "round-robin over both shards");
        assert_eq!(a.outcome.ranks, 2);
        // Same spec, same physics: validation quantities agree exactly.
        assert_eq!(a.outcome.validation, b.outcome.validation);
        let stats = pool.stats();
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 2);
    }

    #[test]
    fn oversized_rank_counts_are_refused_with_context() {
        // 72 physical cores packed into 8 shards of 9 cores each.
        let pool = ShardPool::new(platforms::xeon_8360y(), 8, ShardPolicy::Packed);
        let spec = BenchSpec {
            app: AppId::Acoustic,
            n: 64,
            iterations: 1,
            ranks: 64,
            parallel: false,
        };
        let err = pool.run_ranked(&spec).unwrap_err();
        assert!(err.contains("exceeds the shard's"), "{err}");
    }
}
