//! Job specs: the wire-level request shapes and their execution.
//!
//! A job arrives as a JSON object with a `kind` discriminant:
//!
//! * `{"kind":"benchmark","app":"acoustic","n":32,"iterations":10,
//!    "ranks":1,"parallel":false,"plan":{...},"placement":"packed"}` — run
//!   one app; `ranks > 1` routes through the sharded pinned-universe pool;
//!   the optional `plan` is a `dslcheck` optimization-plan document (as
//!   exported by an `analyze` job) threaded into the app's config; the
//!   optional `placement` pins a ranked run's shard policy
//!   (`one-per-numa` | `packed`) — omitted, the pool runs placecheck's
//!   certified policy for that app/rank count.
//! * `{"kind":"trace","app":"cloverleaf2d","n":24,"iterations":5}` — run
//!   under the tracer; the Perfetto (Chrome `trace_event`) export is
//!   retrievable at `/trace/<job id>`.
//! * `{"kind":"figure","figure":8}` — reproduce a paper figure (3–9).
//! * `{"kind":"analyze","app":"acoustic"}` — whole-chain dataflow report
//!   and certified optimization plan for one registered app. Apps with a
//!   declared chain are planned on the *static fast path*: the
//!   certificates come from `dslcheck::speccheck`'s execution-free
//!   analysis (`"source":"static"` in the payload) and no worker executes
//!   a recording pass; everything else falls back to the instrumented
//!   recording (`"source":"recorded"`).
//!
//! Every job renders a [`KeyMaterial`] — the cache address of its result.

use crate::key::{CacheKey, KeyMaterial};
use crate::shard::ShardPool;
use bwb_apps::jobspec::{BenchOutcome, BenchSpec};
use bwb_apps::AppId;
use bwb_machine::ShardPolicy;
use bwb_ops::OptPlan;
use bwb_perfmodel::figures;
use bwb_trace::json::Json;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A parsed, validated job.
#[derive(Debug, Clone)]
pub enum Job {
    Benchmark {
        spec: BenchSpec,
        /// Canonical plan JSON (round-tripped through [`OptPlan`]).
        plan: Option<String>,
        /// Explicit shard placement for ranked runs. `None` defers to
        /// placecheck's certified policy (see [`ShardPool::run_ranked`]).
        placement: Option<ShardPolicy>,
    },
    Trace {
        spec: BenchSpec,
    },
    Figure {
        figure: u8,
    },
    Analyze {
        app: String,
    },
}

fn get_usize(body: &Json, key: &str, default: usize) -> Result<usize, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .filter(|n| n.fract() == 0.0 && *n >= 0.0)
            .map(|n| n as usize)
            .ok_or_else(|| format!("field '{key}' must be a non-negative integer")),
    }
}

fn parse_bench_spec(body: &Json) -> Result<BenchSpec, String> {
    let slug = body
        .get("app")
        .and_then(Json::as_str)
        .ok_or("missing field 'app'")?;
    let app = AppId::from_slug(slug).ok_or_else(|| {
        format!(
            "unknown app '{slug}' (known: {})",
            AppId::ALL.map(|a| a.slug()).join(", ")
        )
    })?;
    let defaults = BenchSpec::small(app);
    let spec = BenchSpec {
        app,
        n: get_usize(body, "n", defaults.n)?,
        iterations: get_usize(body, "iterations", defaults.iterations)?,
        ranks: get_usize(body, "ranks", 1)?,
        parallel: matches!(body.get("parallel"), Some(Json::Bool(true))),
    };
    spec.validate()?;
    Ok(spec)
}

impl Job {
    /// Parse a request body. Errors are client-facing (HTTP 400).
    pub fn parse(body: &Json) -> Result<Job, String> {
        let kind = body
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing field 'kind'")?;
        match kind {
            "benchmark" => {
                let spec = parse_bench_spec(body)?;
                let plan = match body.get("plan") {
                    None | Some(Json::Null) => None,
                    // Round-trip through OptPlan: rejects malformed plans
                    // and canonicalizes the rendering for the cache key.
                    Some(p) => Some(
                        OptPlan::from_json(&p.to_string())
                            .map_err(|e| format!("invalid plan: {e}"))?
                            .to_json(),
                    ),
                };
                if plan.is_some() && spec.ranks > 1 {
                    return Err("plans apply to in-process runs (ranks=1)".into());
                }
                let placement = match body.get("placement") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(s)) => Some(ShardPolicy::parse(s).ok_or_else(|| {
                        format!(
                            "unknown placement '{s}' (known: {})",
                            ShardPolicy::ALL.map(|p| p.label()).join(", ")
                        )
                    })?),
                    Some(_) => return Err("field 'placement' must be a string".into()),
                };
                if placement.is_some() && spec.ranks <= 1 {
                    return Err("placement applies to ranked runs (ranks>1)".into());
                }
                Ok(Job::Benchmark {
                    spec,
                    plan,
                    placement,
                })
            }
            "trace" => {
                let spec = parse_bench_spec(body)?;
                if spec.ranks > 1 {
                    return Err("trace jobs run in-process (ranks=1)".into());
                }
                Ok(Job::Trace { spec })
            }
            "figure" => {
                let figure = get_usize(body, "figure", 0)? as u8;
                if !(3..=9).contains(&figure) {
                    return Err("field 'figure' must be 3..=9".into());
                }
                Ok(Job::Figure { figure })
            }
            "analyze" => {
                let app = body
                    .get("app")
                    .and_then(Json::as_str)
                    .ok_or("missing field 'app'")?;
                Ok(Job::Analyze { app: app.into() })
            }
            other => Err(format!(
                "unknown kind '{other}' (benchmark|trace|figure|analyze)"
            )),
        }
    }

    pub fn kind_label(&self) -> &'static str {
        match self {
            Job::Benchmark { .. } => "benchmark",
            Job::Trace { .. } => "trace",
            Job::Figure { .. } => "figure",
            Job::Analyze { .. } => "analyze",
        }
    }

    /// The job's cache address on `machine` (a descriptor fingerprint).
    pub fn cache_key(&self, machine: &str) -> CacheKey {
        let spec = match self {
            // An explicit placement is part of the cache address (runs
            // pinned differently must not collide); the default-placed
            // spelling is unchanged so historical keys stay valid.
            Job::Benchmark {
                spec,
                placement: Some(p),
                ..
            } => format!("{} placement={}", spec.canonical(), p.label()),
            Job::Benchmark { spec, .. } | Job::Trace { spec } => spec.canonical(),
            Job::Figure { figure } => format!("figure={figure}"),
            Job::Analyze { app } => format!("analyze={app}"),
        };
        let plan = match self {
            Job::Benchmark { plan, .. } => plan.clone().unwrap_or_else(|| "none".into()),
            _ => "none".into(),
        };
        KeyMaterial {
            kind: self.kind_label(),
            spec: &spec,
            plan: &plan,
            machine,
        }
        .key()
    }

    /// Execute the job, returning the response payload JSON.
    pub fn execute(&self, ctx: &ExecContext, job_id: u64) -> Result<String, String> {
        match self {
            Job::Benchmark {
                spec,
                plan,
                placement,
            } => execute_benchmark(ctx, spec, plan.as_deref(), *placement),
            Job::Trace { spec } => execute_trace(ctx, spec, job_id),
            Job::Figure { figure } => Ok(figure_payload(*figure)),
            Job::Analyze { app } => execute_analyze(app),
        }
    }
}

/// Everything job execution reaches for.
pub struct ExecContext {
    pub shards: Arc<ShardPool>,
    pub traces: Arc<TraceStore>,
}

/// Per-job-id Perfetto exports, plus the global tracer gate: `bwb_trace`
/// records into process-global thread rings, so traced executions must
/// serialize — the gate is held for the whole traced run.
#[derive(Default)]
pub struct TraceStore {
    gate: Mutex<()>,
    map: Mutex<HashMap<u64, String>>,
}

impl TraceStore {
    pub fn new() -> TraceStore {
        TraceStore::default()
    }

    pub fn get(&self, job_id: u64) -> Option<String> {
        self.map.lock().unwrap().get(&job_id).cloned()
    }

    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.lock().unwrap().is_empty()
    }
}

fn outcome_json(out: &BenchOutcome) -> Vec<(String, Json)> {
    vec![
        ("app".into(), Json::Str(out.app.slug().into())),
        ("validation".into(), Json::Num(out.validation)),
        ("points".into(), Json::Num(out.points as f64)),
        ("iterations".into(), Json::Num(out.iterations as f64)),
        ("ranks".into(), Json::Num(out.ranks as f64)),
        ("seconds".into(), Json::Num(out.seconds)),
        ("bytes".into(), Json::Num(out.bytes as f64)),
        ("gbs".into(), Json::Num(out.gbs)),
    ]
}

fn execute_benchmark(
    ctx: &ExecContext,
    spec: &BenchSpec,
    plan: Option<&str>,
    placement: Option<ShardPolicy>,
) -> Result<String, String> {
    let mut fields: Vec<(String, Json)>;
    if spec.ranks > 1 {
        let run = ctx.shards.run_ranked(spec, placement)?;
        fields = outcome_json(&run.outcome);
        fields.push(("shard".into(), Json::Num(run.shard as f64)));
        fields.push(("placement".into(), Json::Str(run.policy.label().into())));
        fields.push(("mpi_fraction".into(), Json::Num(run.mpi_fraction)));
        fields.push(("wall_seconds".into(), Json::Num(run.wall_seconds)));
    } else {
        let parsed = plan
            .map(|p| OptPlan::from_json(p).map_err(|e| format!("invalid plan: {e}")))
            .transpose()?;
        let planned = parsed.is_some();
        let out = spec.run_with_plan(parsed)?;
        fields = outcome_json(&out);
        fields.push(("planned".into(), Json::Bool(planned)));
    }
    fields.push(("config".into(), Json::Str(spec.config_summary())));
    Ok(Json::Obj(fields).to_string())
}

fn execute_trace(ctx: &ExecContext, spec: &BenchSpec, job_id: u64) -> Result<String, String> {
    let _gate = ctx.traces.gate.lock().unwrap();
    let (result, trace) = bwb_trace::with_tracing(|| spec.run());
    let out = result?;
    let chrome = bwb_trace::to_chrome_json(&trace, &Default::default());
    let events = trace.total_events();
    ctx.traces.map.lock().unwrap().insert(job_id, chrome);
    let mut fields = outcome_json(&out);
    fields.push(("trace_events".into(), Json::Num(events as f64)));
    fields.push(("trace_path".into(), Json::Str(format!("/trace/{job_id}"))));
    Ok(Json::Obj(fields).to_string())
}

fn execute_analyze(app: &str) -> Result<String, String> {
    // Static fast path: apps with a declared chain are planned without any
    // worker executing a recording pass — the certificates come from the
    // execution-free analysis, which the registry cross-checks against
    // recorded runs in CI. Only a clean, parametrically stable static
    // report short-circuits; anything else falls back to the recording.
    if let Some(s) = bwb_dslcheck::static_report_for(app) {
        if s.report.clean() {
            return Ok(format!(
                "{{\"source\":\"static\",\"static_ns\":{},\"report\":{},\"plan\":{}}}",
                s.nanos,
                s.report.to_json(),
                s.report.export_plan().to_json()
            ));
        }
    }
    let reports = bwb_dslcheck::dataflow_all();
    let known: Vec<&str> = reports.iter().map(|r| r.app.as_str()).collect();
    let report = reports
        .iter()
        .find(|r| r.app == app)
        .ok_or_else(|| format!("unknown app '{}' (known: {})", app, known.join(", ")))?;
    // The report and its exported plan already render themselves as JSON;
    // splice them in raw rather than re-modelling their schemas here.
    Ok(format!(
        "{{\"source\":\"recorded\",\"report\":{},\"plan\":{}}}",
        report.to_json(),
        report.export_plan().to_json()
    ))
}

fn jrow(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn figure_payload(figure: u8) -> String {
    let rows: Vec<Json> = match figure {
        3 | 4 => {
            let p = bwb_machine::platforms::xeon_max_9480();
            let m = if figure == 3 {
                figures::figure3_structured_matrix(&p)
            } else {
                figures::figure4_unstructured_matrix(&p)
            };
            m.rows
                .iter()
                .map(|r| {
                    jrow(vec![
                        ("label", Json::Str(r.label.clone())),
                        ("mean_slowdown", Json::Num(r.mean)),
                        (
                            "slowdowns",
                            Json::Arr(
                                r.slowdowns
                                    .iter()
                                    .map(|s| s.map(Json::Num).unwrap_or(Json::Null))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect()
        }
        5 => figures::figure5_parallelization_speedups()
            .iter()
            .map(|e| {
                jrow(vec![
                    ("app", Json::Str(e.app.slug().into())),
                    (
                        "speedups",
                        Json::Arr(
                            e.speedups
                                .iter()
                                .map(|(l, s)| {
                                    jrow(vec![
                                        ("config", Json::Str(l.clone())),
                                        ("speedup", Json::Num(*s)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
        6 => figures::figure6_platform_comparison()
            .iter()
            .map(|e| {
                jrow(vec![
                    ("app", Json::Str(e.app.slug().into())),
                    ("speedup_vs_8360y", Json::Num(e.speedup_vs_8360y)),
                    ("speedup_vs_epyc", Json::Num(e.speedup_vs_epyc)),
                    ("a100_vs_max", Json::Num(e.a100_vs_max)),
                ])
            })
            .collect(),
        7 => figures::figure7_mpi_fractions()
            .iter()
            .map(|e| {
                jrow(vec![
                    ("app", Json::Str(e.app.slug().into())),
                    ("platform", Json::Str(e.platform.label().into())),
                    ("mpi_fraction_pure", Json::Num(e.mpi_fraction_pure)),
                    ("mpi_fraction_openmp", Json::Num(e.mpi_fraction_openmp)),
                ])
            })
            .collect(),
        8 => figures::figure8_effective_bandwidth()
            .iter()
            .map(|e| {
                jrow(vec![
                    ("app", Json::Str(e.app.slug().into())),
                    ("platform", Json::Str(e.platform.label().into())),
                    ("effective_gbs", Json::Num(e.effective_gbs)),
                    ("fraction_of_stream", Json::Num(e.fraction_of_stream)),
                ])
            })
            .collect(),
        9 => figures::figure9_tiling()
            .iter()
            .map(|e| {
                jrow(vec![
                    ("platform", Json::Str(e.platform.label().into())),
                    ("untiled_seconds", Json::Num(e.untiled_seconds)),
                    ("tiled_seconds", Json::Num(e.tiled_seconds)),
                    ("gain", Json::Num(e.gain)),
                ])
            })
            .collect(),
        _ => unreachable!("parse() bounds the figure number"),
    };
    Json::Obj(vec![
        ("figure".into(), Json::Num(figure as f64)),
        ("rows".into(), Json::Arr(rows)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwb_machine::platforms;
    use bwb_machine::ShardPolicy;

    fn ctx() -> ExecContext {
        ExecContext {
            shards: Arc::new(ShardPool::new(
                platforms::xeon_8360y(),
                2,
                ShardPolicy::OnePerNuma,
            )),
            traces: Arc::new(TraceStore::new()),
        }
    }

    fn parse(body: &str) -> Result<Job, String> {
        Job::parse(&bwb_trace::json::parse(body).unwrap())
    }

    #[test]
    fn parse_rejects_malformed_jobs() {
        assert!(parse("{}").unwrap_err().contains("kind"));
        assert!(parse("{\"kind\":\"benchmark\"}")
            .unwrap_err()
            .contains("app"));
        assert!(parse("{\"kind\":\"benchmark\",\"app\":\"nope\"}")
            .unwrap_err()
            .contains("unknown app"));
        assert!(parse("{\"kind\":\"figure\",\"figure\":2}")
            .unwrap_err()
            .contains("3..=9"));
        assert!(
            parse("{\"kind\":\"benchmark\",\"app\":\"volna\",\"ranks\":2}")
                .unwrap_err()
                .contains("no distributed driver")
        );
        assert!(parse(
            "{\"kind\":\"benchmark\",\"app\":\"acoustic\",\"ranks\":2,\"placement\":\"diagonal\"}"
        )
        .unwrap_err()
        .contains("unknown placement"));
        assert!(
            parse("{\"kind\":\"benchmark\",\"app\":\"acoustic\",\"placement\":\"packed\"}")
                .unwrap_err()
                .contains("ranks>1")
        );
    }

    #[test]
    fn cache_keys_separate_kinds_specs_and_machines() {
        let bench = parse("{\"kind\":\"benchmark\",\"app\":\"acoustic\"}").unwrap();
        let trace = parse("{\"kind\":\"trace\",\"app\":\"acoustic\"}").unwrap();
        let other = parse("{\"kind\":\"benchmark\",\"app\":\"acoustic\",\"n\":48}").unwrap();
        let m1 = "machine-a";
        let m2 = "machine-b";
        assert_ne!(bench.cache_key(m1), trace.cache_key(m1));
        assert_ne!(bench.cache_key(m1), other.cache_key(m1));
        assert_ne!(bench.cache_key(m1), bench.cache_key(m2));
        assert_eq!(bench.cache_key(m1), bench.cache_key(m1));
    }

    #[test]
    fn cache_keys_separate_placements() {
        let base = parse("{\"kind\":\"benchmark\",\"app\":\"acoustic\",\"ranks\":2}").unwrap();
        let numa = parse(
            "{\"kind\":\"benchmark\",\"app\":\"acoustic\",\"ranks\":2,\
             \"placement\":\"one-per-numa\"}",
        )
        .unwrap();
        let packed = parse(
            "{\"kind\":\"benchmark\",\"app\":\"acoustic\",\"ranks\":2,\
             \"placement\":\"packed\"}",
        )
        .unwrap();
        let m = "machine-a";
        assert_ne!(numa.cache_key(m), packed.cache_key(m));
        assert_ne!(base.cache_key(m), numa.cache_key(m));
        assert_ne!(base.cache_key(m), packed.cache_key(m));
    }

    #[test]
    fn benchmark_job_executes_and_reports() {
        let job = parse("{\"kind\":\"benchmark\",\"app\":\"acoustic\",\"n\":12,\"iterations\":2}")
            .unwrap();
        let payload = job.execute(&ctx(), 1).unwrap();
        let doc = bwb_trace::json::parse(&payload).unwrap();
        assert_eq!(doc.get("app").and_then(Json::as_str), Some("acoustic"));
        assert!(doc.get("gbs").and_then(Json::as_f64).unwrap() > 0.0);
        assert_eq!(doc.get("ranks").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn ranked_benchmark_routes_through_a_shard() {
        let job = parse(
            "{\"kind\":\"benchmark\",\"app\":\"acoustic\",\"n\":12,\"iterations\":2,\"ranks\":2}",
        )
        .unwrap();
        let payload = job.execute(&ctx(), 2).unwrap();
        let doc = bwb_trace::json::parse(&payload).unwrap();
        assert_eq!(doc.get("ranks").and_then(Json::as_f64), Some(2.0));
        assert!(doc.get("shard").is_some());
        assert!(doc.get("placement").and_then(Json::as_str).is_some());
        assert!(doc.get("mpi_fraction").and_then(Json::as_f64).unwrap() >= 0.0);
    }

    #[test]
    fn explicit_placement_is_honored_and_reported() {
        let job = parse(
            "{\"kind\":\"benchmark\",\"app\":\"acoustic\",\"n\":12,\"iterations\":2,\
             \"ranks\":2,\"placement\":\"packed\"}",
        )
        .unwrap();
        let payload = job.execute(&ctx(), 9).unwrap();
        let doc = bwb_trace::json::parse(&payload).unwrap();
        assert_eq!(doc.get("placement").and_then(Json::as_str), Some("packed"));
    }

    #[test]
    fn trace_job_stores_a_valid_chrome_export() {
        let c = ctx();
        let job = parse("{\"kind\":\"trace\",\"app\":\"cloverleaf2d\",\"n\":16,\"iterations\":2}")
            .unwrap();
        let payload = job.execute(&c, 77).unwrap();
        let doc = bwb_trace::json::parse(&payload).unwrap();
        assert_eq!(
            doc.get("trace_path").and_then(Json::as_str),
            Some("/trace/77")
        );
        let chrome = c.traces.get(77).expect("trace stored under the job id");
        let chrome_doc = bwb_trace::json::parse(&chrome).unwrap();
        assert!(bwb_trace::json::validate_chrome(&chrome_doc).is_empty());
    }

    #[test]
    fn figure_job_renders_rows() {
        let job = parse("{\"kind\":\"figure\",\"figure\":8}").unwrap();
        let payload = job.execute(&ctx(), 3).unwrap();
        let doc = bwb_trace::json::parse(&payload).unwrap();
        assert_eq!(doc.get("figure").and_then(Json::as_f64), Some(8.0));
        assert!(!doc.get("rows").and_then(Json::as_array).unwrap().is_empty());
    }

    #[test]
    fn analyze_job_exports_a_plan_that_feeds_back_into_benchmarks() {
        let job = parse("{\"kind\":\"analyze\",\"app\":\"acoustic\"}").unwrap();
        let payload = job.execute(&ctx(), 4).unwrap();
        let doc = bwb_trace::json::parse(&payload).unwrap();
        let plan = doc.get("plan").expect("plan present");
        // The exported plan must round-trip into a benchmark job.
        let body = format!(
            "{{\"kind\":\"benchmark\",\"app\":\"acoustic\",\"n\":12,\"iterations\":2,\"plan\":{plan}}}"
        );
        let bench = parse(&body).unwrap();
        let out = bench.execute(&ctx(), 5).unwrap();
        let out_doc = bwb_trace::json::parse(&out).unwrap();
        assert_eq!(out_doc.get("planned"), Some(&Json::Bool(true)));
    }

    #[test]
    fn analyze_job_takes_the_static_fast_path_for_declared_chains() {
        // Acoustic declares a chain, so planning must be execution-free.
        let job = parse("{\"kind\":\"analyze\",\"app\":\"acoustic\"}").unwrap();
        let payload = job.execute(&ctx(), 6).unwrap();
        let doc = bwb_trace::json::parse(&payload).unwrap();
        assert_eq!(doc.get("source").and_then(Json::as_str), Some("static"));
        assert!(doc.get("plan").is_some());
        // The op2 apps have no declarable chain: recording fallback.
        let job = parse("{\"kind\":\"analyze\",\"app\":\"mgcfd\"}").unwrap();
        let payload = job.execute(&ctx(), 7).unwrap();
        let doc = bwb_trace::json::parse(&payload).unwrap();
        assert_eq!(doc.get("source").and_then(Json::as_str), Some("recorded"));
    }
}
