//! Content-addressed cache keys.
//!
//! A result is addressed by a stable 64-bit FNV-1a hash over a canonical,
//! order-fixed encoding of everything that determines it: the job kind,
//! the benchmark/figure/analyze spec, the optimization plan (if any), and
//! the machine descriptor the job runs against. The encoding escapes the
//! field separator so no two distinct component tuples collide by
//! concatenation, and the hash uses no process-local state (no `HashMap`
//! iteration order, no pointer identity) — the same job hashes identically
//! across processes and runs, which is what lets a warm cache survive a
//! server restart protocol-compatibly.

use bwb_machine::Platform;
use std::fmt;

/// 64-bit FNV-1a over a byte string — the single shared implementation in
/// [`bwb_ops::hash`], re-exported here so cache-key callers keep their
/// import path. Deliberately simple and dependency-free: cache keys need
/// stability and dispersion, not cryptography.
pub use bwb_ops::hash::fnv1a64;

/// A content-address: displays as 16 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64);

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The four components every key is derived from. Renderings are escaped
/// so component boundaries are unambiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyMaterial<'a> {
    /// Job kind tag ("benchmark", "trace", "figure", "analyze").
    pub kind: &'a str,
    /// Canonical spec rendering (e.g. `BenchSpec::canonical`).
    pub spec: &'a str,
    /// Canonical plan rendering; "none" when the job carries no plan.
    pub plan: &'a str,
    /// Machine descriptor fingerprint (see [`machine_fingerprint`]).
    pub machine: &'a str,
}

fn escape_into(out: &mut String, field: &str) {
    for c in field.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\|"),
            _ => out.push(c),
        }
    }
}

impl KeyMaterial<'_> {
    /// Canonical byte encoding: `kind=..|spec=..|plan=..|machine=..` with
    /// `|` and `\` escaped inside fields.
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(
            self.kind.len() + self.spec.len() + self.plan.len() + self.machine.len() + 32,
        );
        for (tag, field) in [
            ("kind=", self.kind),
            ("|spec=", self.spec),
            ("|plan=", self.plan),
            ("|machine=", self.machine),
        ] {
            s.push_str(tag);
            escape_into(&mut s, field);
        }
        s
    }

    pub fn key(&self) -> CacheKey {
        CacheKey(fnv1a64(self.encode().as_bytes()))
    }
}

/// A stable fingerprint of the machine descriptor a job executes against:
/// platform name, full core topology, SMT width, memory kind, and the
/// latency profile the placement model prices messages with. Any change to
/// the modelled machine changes every key.
pub fn machine_fingerprint(p: &Platform) -> String {
    let t = &p.topology;
    format!(
        "{} s{} n{} c{} smt{} mem={:?} lat={:.0}/{:.0}/{:.0}",
        p.name,
        t.sockets,
        t.numa_per_socket,
        t.cores_per_numa,
        t.smt_per_core,
        p.memory.kind,
        p.latency.same_numa_ns,
        p.latency.cross_numa_ns,
        p.latency.cross_socket_ns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_published_vectors() {
        // Reference values for FNV-1a 64 from the specification.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn golden_key_is_stable_across_releases() {
        // Pinned value: if this changes, existing caches are invalidated —
        // bump intentionally, never accidentally.
        let m = KeyMaterial {
            kind: "benchmark",
            spec: "app=acoustic n=32 iters=10 ranks=1 par=false",
            plan: "none",
            machine: "Xeon MAX 9480 s2 n4 c14 smt2",
        };
        assert_eq!(m.key(), CacheKey(fnv1a64(m.encode().as_bytes())));
        assert_eq!(format!("{}", m.key()), "5ce5971452c5d1d9");
    }

    #[test]
    fn escaping_prevents_component_smearing() {
        // Moving a suffix across the component boundary must change the key.
        let a = KeyMaterial {
            kind: "benchmark",
            spec: "x|plan=evil",
            plan: "none",
            machine: "m",
        };
        let b = KeyMaterial {
            kind: "benchmark",
            spec: "x",
            plan: "evil|plan=none",
            machine: "m",
        };
        assert_ne!(a.encode(), b.encode());
        assert_ne!(a.key(), b.key());
    }
}
