//! The content-addressed result cache.
//!
//! Payloads (response JSON strings) are stored under their [`CacheKey`]
//! with hit/miss/age accounting. The cache is unbounded by entry count but
//! every entry is a completed job's response body — the serving layer's
//! jobs are CI-sized, so the working set is small; an eviction policy can
//! ride on `created`/`hits` later without changing the interface.

use crate::key::CacheKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

struct Entry {
    payload: String,
    created: Instant,
    hits: u64,
}

/// Aggregate counters for `/stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheStats {
    pub entries: usize,
    pub hits: u64,
    pub misses: u64,
    /// Age of the oldest live entry, seconds (0 when empty).
    pub oldest_age_secs: f64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe keyed payload store.
#[derive(Default)]
pub struct ResultCache {
    map: Mutex<HashMap<u64, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Look up a payload; counts a hit or a miss.
    pub fn get(&self, key: CacheKey) -> Option<String> {
        let mut map = self.map.lock().unwrap();
        match map.get_mut(&key.0) {
            Some(e) => {
                e.hits += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.payload.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a payload (last write wins; identical by construction since
    /// the key addresses the content that produced it).
    pub fn insert(&self, key: CacheKey, payload: String) {
        self.map.lock().unwrap().insert(
            key.0,
            Entry {
                payload,
                created: Instant::now(),
                hits: 0,
            },
        );
    }

    pub fn stats(&self) -> CacheStats {
        let map = self.map.lock().unwrap();
        let oldest = map
            .values()
            .map(|e| e.created.elapsed().as_secs_f64())
            .fold(0.0, f64::max);
        CacheStats {
            entries: map.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            oldest_age_secs: oldest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_age_accounting() {
        let c = ResultCache::new();
        let k = CacheKey(42);
        assert_eq!(c.get(k), None);
        c.insert(k, "{\"x\":1}".into());
        assert_eq!(c.get(k).as_deref(), Some("{\"x\":1}"));
        assert_eq!(c.get(k).as_deref(), Some("{\"x\":1}"));
        let s = c.stats();
        assert_eq!((s.entries, s.hits, s.misses), (1, 2, 1));
        assert!(s.oldest_age_secs >= 0.0);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
