//! Load generation: replay a heavy-tailed job mix against a running
//! server and report latency/throughput/cache statistics.
//!
//! Real benchmark-service traffic is Zipf-like — a few configurations
//! (the CI staples, the paper's headline figures) dominate, with a long
//! tail of one-off explorations. The generator samples a job catalog
//! under a Zipf(s) distribution, so the cache and single-flight layers
//! see realistic skew: the head of the catalog should serve from cache
//! after first touch, while tail jobs keep missing.

use crate::http;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address ("host:port").
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Zipf skew (1.0 = classic; higher = heavier head).
    pub zipf_s: f64,
    pub seed: u64,
    /// Job bodies to sample from; index 0 is the most popular.
    pub catalog: Vec<String>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            clients: 4,
            requests_per_client: 25,
            zipf_s: 1.1,
            seed: 42,
            catalog: default_catalog(),
        }
    }
}

/// A CI-sized job mix: popular cached staples up front, heavier and
/// ranked jobs in the tail.
pub fn default_catalog() -> Vec<String> {
    vec![
        r#"{"kind":"benchmark","app":"acoustic","n":32,"iterations":6}"#.into(),
        r#"{"kind":"benchmark","app":"cloverleaf2d","n":32,"iterations":8}"#.into(),
        r#"{"kind":"figure","figure":8}"#.into(),
        r#"{"kind":"benchmark","app":"miniweather","n":32,"iterations":4}"#.into(),
        r#"{"kind":"benchmark","app":"acoustic","n":32,"iterations":6,"ranks":2}"#.into(),
        r#"{"kind":"figure","figure":3}"#.into(),
        r#"{"kind":"benchmark","app":"cloverleaf2d","n":32,"iterations":8,"ranks":2}"#.into(),
        r#"{"kind":"benchmark","app":"opensbli-sa","n":16,"iterations":3}"#.into(),
        r#"{"kind":"trace","app":"cloverleaf2d","n":24,"iterations":4}"#.into(),
        r#"{"kind":"benchmark","app":"volna","n":24,"iterations":20}"#.into(),
    ]
}

/// Zipf CDF over `n` catalog slots with skew `s`.
pub fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn sample_zipf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen();
    cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1)
}

/// Aggregate of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    pub total: usize,
    pub ok: usize,
    pub rejected: usize,
    pub errors: usize,
    pub hits: usize,
    pub misses: usize,
    pub coalesced: usize,
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Latency split by cache disposition: cold = executed (miss),
    /// warm = served from cache (hit).
    pub cold_p50_ms: f64,
    pub warm_p50_ms: f64,
    pub throughput_rps: f64,
    pub wall_seconds: f64,
}

impl LoadReport {
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits + self.misses + self.coalesced;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// A row for the EXPERIMENTS.md table.
    pub fn markdown_row(&self, label: &str) -> String {
        format!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.0} | {:.0}% | {} |",
            label,
            self.total,
            self.p50_ms,
            self.p99_ms,
            self.cold_p50_ms,
            self.warm_p50_ms,
            self.throughput_rps,
            100.0 * self.hit_rate(),
            self.coalesced,
        )
    }
}

/// `p` in [0,100] over an unsorted sample (empty → 0).
pub fn percentile_ms(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[idx.min(samples.len() - 1)]
}

struct Sample {
    latency_ms: f64,
    status: u16,
    cache: String,
}

/// Run the configured load and aggregate. Each client thread samples the
/// catalog independently (seeded per client for reproducibility).
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    assert!(!cfg.catalog.is_empty(), "catalog must not be empty");
    let cdf = Arc::new(zipf_cdf(cfg.catalog.len(), cfg.zipf_s));
    let catalog = Arc::new(cfg.catalog.clone());
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();

    std::thread::scope(|scope| {
        for client in 0..cfg.clients {
            let (cdf, catalog, samples) =
                (Arc::clone(&cdf), Arc::clone(&catalog), Arc::clone(&samples));
            let addr = cfg.addr.clone();
            let (requests, seed) = (cfg.requests_per_client, cfg.seed);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (client as u64).wrapping_mul(0x9e37));
                for _ in 0..requests {
                    let body = &catalog[sample_zipf(&cdf, &mut rng)];
                    let t0 = Instant::now();
                    let resp = http::request(&addr, "POST", "/job", Some(body));
                    let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
                    let (status, cache) = match &resp {
                        Ok(r) => (r.status, r.header("x-cache").unwrap_or("").to_string()),
                        Err(_) => (0, String::new()),
                    };
                    samples.lock().unwrap().push(Sample {
                        latency_ms,
                        status,
                        cache,
                    });
                }
            });
        }
    });

    let wall_seconds = started.elapsed().as_secs_f64();
    let samples = Arc::try_unwrap(samples).ok().unwrap().into_inner().unwrap();
    let mut all: Vec<f64> = Vec::with_capacity(samples.len());
    let (mut cold, mut warm) = (Vec::new(), Vec::new());
    let mut report = LoadReport {
        total: samples.len(),
        wall_seconds,
        ..LoadReport::default()
    };
    for s in &samples {
        match s.status {
            200 => report.ok += 1,
            429 => report.rejected += 1,
            _ => report.errors += 1,
        }
        if s.status == 200 {
            all.push(s.latency_ms);
            match s.cache.as_str() {
                "hit" => {
                    report.hits += 1;
                    warm.push(s.latency_ms);
                }
                "miss" => {
                    report.misses += 1;
                    cold.push(s.latency_ms);
                }
                "coalesced" => report.coalesced += 1,
                _ => {}
            }
        }
    }
    report.p50_ms = percentile_ms(&mut all, 50.0);
    report.p99_ms = percentile_ms(&mut all, 99.0);
    report.cold_p50_ms = percentile_ms(&mut cold, 50.0);
    report.warm_p50_ms = percentile_ms(&mut warm, 50.0);
    report.throughput_rps = if wall_seconds > 0.0 {
        report.total as f64 / wall_seconds
    } else {
        0.0
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_head_heavy() {
        let cdf = zipf_cdf(10, 1.1);
        assert_eq!(cdf.len(), 10);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf[9] - 1.0).abs() < 1e-12);
        // The head slot alone carries a disproportionate share.
        assert!(cdf[0] > 0.25, "head mass {}", cdf[0]);
    }

    #[test]
    fn zipf_sampling_prefers_the_head() {
        let cdf = zipf_cdf(8, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..4000 {
            counts[sample_zipf(&cdf, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[4], "{counts:?}");
        assert!(counts[0] + counts[1] > 4000 / 3, "{counts:?}");
    }

    #[test]
    fn percentiles_pick_order_statistics() {
        let mut xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile_ms(&mut xs, 50.0), 3.0);
        assert_eq!(percentile_ms(&mut xs, 0.0), 1.0);
        assert_eq!(percentile_ms(&mut xs, 100.0), 5.0);
        assert_eq!(percentile_ms(&mut [], 50.0), 0.0);
    }

    #[test]
    fn default_catalog_parses_as_jobs() {
        for body in default_catalog() {
            let doc = bwb_trace::json::parse(&body).unwrap();
            crate::jobs::Job::parse(&doc).unwrap_or_else(|e| panic!("{body}: {e}"));
        }
    }
}
