//! # bwb-serve — the benchmark-serving front end
//!
//! A long-running HTTP+JSON service over the whole reproduction stack:
//! clients submit figure, benchmark, analyze, and trace jobs; the server
//! answers from a content-addressed result cache when it can, coalesces
//! identical in-flight work when it can't, and bounds the heavy-job
//! concurrency it admits. Distributed jobs run on `shmpi` universes pinned
//! to disjoint core shards carved from the modelled machine's topology
//! ([`bwb_machine::CpuTopology::carve_shards`]), over the lock-free SPSC
//! mailbox transport.
//!
//! The layering, bottom-up:
//!
//! * [`key`] — stable FNV-1a content addresses over (job kind, canonical
//!   spec, optimization plan, machine descriptor). No process-local state:
//!   keys are comparable across runs and hosts.
//! * [`cache`] — the keyed payload store with hit/miss/age accounting.
//! * [`flight`] — single-flight coalescing plus fair bounded admission
//!   (FIFO semaphore; full queue ⇒ HTTP 429 upstream).
//! * [`shard`] — the pinned worker pool: one `shmpi` universe per shard
//!   at a time, placement-priced messaging, SPSC transport.
//! * [`jobs`] — wire-level job shapes, parsing, and execution against
//!   `bwb-apps`/`bwb-perfmodel`/`bwb-dslcheck`, with per-job Perfetto
//!   exports via `bwb-trace`.
//! * [`http`] + [`server`] — a deliberately minimal HTTP/1.1 layer and
//!   the routing/drain logic on top.
//! * [`loadgen`] — the Zipf load driver behind the `loadtest` CLI and the
//!   EXPERIMENTS.md serving table.
//!
//! ## Quick start
//!
//! ```
//! use bwb_serve::server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! let addr = server.local_addr().to_string();
//! let state = server.state();
//! let t = std::thread::spawn(move || server.run());
//! let resp = bwb_serve::http::request(
//!     &addr, "POST", "/job", Some(r#"{"kind":"figure","figure":8}"#)).unwrap();
//! assert_eq!(resp.status, 200);
//! state.begin_shutdown();
//! t.join().unwrap();
//! ```

pub mod cache;
pub mod flight;
pub mod http;
pub mod jobs;
pub mod key;
pub mod loadgen;
pub mod server;
pub mod shard;

pub use cache::{CacheStats, ResultCache};
pub use flight::{FlightOutcome, FlightStats, QueueFull, SingleFlight};
pub use jobs::{ExecContext, Job, TraceStore};
pub use key::{fnv1a64, CacheKey, KeyMaterial};
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use server::{Server, ServerConfig, ServerState};
pub use shard::{ShardPool, ShardStats, ShardedRun};
