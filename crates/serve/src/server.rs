//! The HTTP front end: request routing, cache/admission orchestration,
//! graceful drain.
//!
//! Threading model: the async runtime only orchestrates *waiting*
//! (single-flight joins, admission queueing); socket I/O and heavy job
//! compute run on plain per-connection threads, which call into the
//! runtime with `Handle::block_on`. This keeps the executor responsive
//! with a handful of workers while jobs saturate the machine.
//!
//! Routes:
//!
//! * `POST /job` — submit a job (see [`crate::jobs`] for body shapes).
//!   Responds with the payload JSON plus `X-Job-Id`, `X-Cache-Key`, and
//!   `X-Cache: hit|miss|coalesced`. `429 + Retry-After` when the
//!   admission queue is full; `503` while draining.
//! * `GET /stats` — cache, flight, shard, and uptime counters.
//! * `GET /trace/<job id>` — the Perfetto export of a trace job.
//! * `GET /healthz` — liveness.
//! * `POST /shutdown` — begin draining: in-flight jobs finish, new jobs
//!   are refused, and [`Server::run`] returns once idle.

use crate::cache::ResultCache;
use crate::flight::SingleFlight;
use crate::http::{read_request, Request, Response};
use crate::jobs::{ExecContext, Job, TraceStore};
use crate::key::machine_fingerprint;
use crate::shard::ShardPool;
use bwb_machine::{platforms, Platform, ShardPolicy};
use bwb_trace::json::Json;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::runtime::{Handle, Runtime};

#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker shards carved out of the platform topology.
    pub shards: usize,
    pub policy: ShardPolicy,
    /// Heavy jobs running concurrently (admission permits).
    pub max_concurrent: usize,
    /// Jobs waiting beyond that before 429s start.
    pub max_queue: usize,
    /// The modelled machine jobs run against (part of every cache key).
    pub platform: Platform,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 2,
            policy: ShardPolicy::OnePerNuma,
            max_concurrent: 2,
            max_queue: 8,
            platform: platforms::xeon_max_9480(),
        }
    }
}

pub struct ServerState {
    cache: ResultCache,
    flight: SingleFlight,
    ctx: ExecContext,
    machine: String,
    handle: Handle,
    job_seq: AtomicU64,
    inflight: AtomicUsize,
    draining: AtomicBool,
    started: Instant,
}

impl ServerState {
    /// Start draining: refuse new jobs, let in-flight ones finish.
    pub fn begin_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    pub fn jobs_submitted(&self) -> u64 {
        self.job_seq.load(Ordering::Relaxed)
    }

    fn stats_json(&self) -> String {
        let c = self.cache.stats();
        let f = self.flight.stats();
        let shards: Vec<Json> = self
            .ctx
            .shards
            .stats()
            .into_iter()
            .map(|s| {
                Json::Obj(vec![
                    ("shard".into(), Json::Num(s.shard as f64)),
                    ("cores".into(), Json::Num(s.cores as f64)),
                    ("jobs".into(), Json::Num(s.jobs as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("machine".into(), Json::Str(self.machine.clone())),
            (
                "uptime_secs".into(),
                Json::Num(self.started.elapsed().as_secs_f64()),
            ),
            ("draining".into(), Json::Bool(self.is_draining())),
            (
                "jobs_submitted".into(),
                Json::Num(self.jobs_submitted() as f64),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("entries".into(), Json::Num(c.entries as f64)),
                    ("hits".into(), Json::Num(c.hits as f64)),
                    ("misses".into(), Json::Num(c.misses as f64)),
                    ("hit_rate".into(), Json::Num(c.hit_rate())),
                    ("oldest_age_secs".into(), Json::Num(c.oldest_age_secs)),
                ]),
            ),
            (
                "flight".into(),
                Json::Obj(vec![
                    ("executed".into(), Json::Num(f.executed as f64)),
                    ("coalesced".into(), Json::Num(f.coalesced as f64)),
                    ("rejected".into(), Json::Num(f.rejected as f64)),
                    ("running_now".into(), Json::Num(f.running_now as f64)),
                    ("queued_now".into(), Json::Num(f.queued_now as f64)),
                ]),
            ),
            (
                "shards".into(),
                Json::Obj(vec![
                    (
                        "policy".into(),
                        Json::Str(self.ctx.shards.policy().label().into()),
                    ),
                    ("pools".into(), Json::Arr(shards)),
                ]),
            ),
            (
                "traces_stored".into(),
                Json::Num(self.ctx.traces.len() as f64),
            ),
        ])
        .to_string()
    }
}

pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    local_addr: SocketAddr,
    // Owns the executor; dropping the server stops the workers.
    _runtime: Runtime,
}

impl Server {
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let runtime = Runtime::with_workers(4);
        let machine = machine_fingerprint(&cfg.platform);
        let state = Arc::new(ServerState {
            cache: ResultCache::new(),
            flight: SingleFlight::new(cfg.max_concurrent, cfg.max_queue),
            ctx: ExecContext {
                shards: Arc::new(ShardPool::new(cfg.platform, cfg.shards, cfg.policy)),
                traces: Arc::new(TraceStore::new()),
            },
            machine,
            handle: runtime.handle().clone(),
            job_seq: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            state,
            local_addr,
            _runtime: runtime,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle for out-of-band control (tests, signal handlers).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Accept loop. Returns after [`ServerState::begin_shutdown`] once all
    /// in-flight requests have drained.
    pub fn run(self) {
        self.listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    state.inflight.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        // Connection threads do blocking I/O.
                        let _ = stream.set_nonblocking(false);
                        handle_connection(&state, stream);
                        state.inflight.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.state.is_draining() && self.state.inflight.load(Ordering::SeqCst) == 0 {
                        return;
                    }
                    // Short poll: accept latency lands directly on every
                    // request's tail, so trade a little idle CPU for it.
                    std::thread::sleep(Duration::from_micros(300));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }
}

fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    let response = match read_request(&mut stream) {
        Ok(req) => route(state, &req),
        Err(e) => Response::error(400, &e),
    };
    let _ = response.write_to(&mut stream);
}

fn route(state: &ServerState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/job") => handle_job(state, req),
        ("GET", "/stats") => Response::json(200, state.stats_json()),
        ("GET", "/healthz") => Response::json(200, "{\"ok\":true}"),
        ("POST", "/shutdown") => {
            state.begin_shutdown();
            Response::json(200, "{\"draining\":true}")
        }
        ("GET", path) if path.starts_with("/trace/") => {
            match path["/trace/".len()..].parse::<u64>().ok() {
                Some(id) => match state.ctx.traces.get(id) {
                    Some(chrome) => Response::json(200, chrome),
                    None => Response::error(404, "no trace under that job id"),
                },
                None => Response::error(400, "trace id must be a job id (integer)"),
            }
        }
        ("POST" | "GET", _) => Response::error(404, "unknown route"),
        _ => Response::error(405, "unsupported method"),
    }
}

fn handle_job(state: &ServerState, req: &Request) -> Response {
    if state.is_draining() {
        return Response::error(503, "server is draining").header("Retry-After", "5");
    }
    let body = match bwb_trace::json::parse(&req.body) {
        Ok(b) => b,
        Err(e) => return Response::error(400, &format!("body is not JSON: {e}")),
    };
    let job = match Job::parse(&body) {
        Ok(j) => j,
        Err(e) => return Response::error(400, &e),
    };
    let job_id = state.job_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let key = job.cache_key(&state.machine);

    if let Some(payload) = state.cache.get(key) {
        return Response::json(200, payload)
            .header("X-Cache", "hit")
            .header("X-Cache-Key", key.to_string())
            .header("X-Job-Id", job_id.to_string());
    }

    let flight = state.handle.block_on(
        state
            .flight
            .run_or_join(key, || job.execute(&state.ctx, job_id)),
    );
    match flight {
        Err(full) => Response::error(429, "admission queue is full")
            .header("Retry-After", full.retry_after_secs.to_string()),
        Ok(outcome) => {
            let cache_state = if outcome.coalesced {
                "coalesced"
            } else {
                "miss"
            };
            match outcome.payload {
                Ok(payload) => {
                    if !outcome.coalesced {
                        state.cache.insert(key, payload.clone());
                    }
                    Response::json(200, payload)
                        .header("X-Cache", cache_state)
                        .header("X-Cache-Key", key.to_string())
                        .header("X-Job-Id", job_id.to_string())
                }
                Err(e) => Response::error(400, &e).header("X-Cache", cache_state),
            }
        }
    }
}
