//! Aligned ASCII tables.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row_strs(&["a", "1.0"]);
        t.row_strs(&["long-name", "123.45"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert_eq!(lines[0].len(), lines[3].len());
        assert!(lines[3].starts_with("long-name"));
        assert!(lines[3].ends_with("123.45"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_mismatched_rows() {
        Table::new(&["a", "b"]).row_strs(&["only-one"]);
    }

    #[test]
    fn counts_rows() {
        let mut t = Table::new(&["x"]);
        t.row_strs(&["1"]).row_strs(&["2"]);
        assert_eq!(t.n_rows(), 2);
    }
}
