//! # bwb-report — text rendering for figure reproductions
//!
//! The paper's figures are bar charts and matrices; this crate renders the
//! equivalent data as aligned ASCII tables, horizontal bar charts, and CSV
//! files (written under `target/figures/` by the bench binaries).

pub mod bars;
pub mod csv;
pub mod table;

pub use bars::BarChart;
pub use csv::CsvWriter;
pub use table::Table;
