//! Horizontal ASCII bar charts — the rendering for the paper's bar figures.

/// A labelled horizontal bar chart.
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    title: String,
    entries: Vec<(String, f64, String)>,
    width: usize,
}

impl BarChart {
    pub fn new(title: &str) -> Self {
        BarChart {
            title: title.to_owned(),
            entries: Vec::new(),
            width: 50,
        }
    }

    /// Set the maximum bar width in characters (default 50).
    pub fn width(mut self, w: usize) -> Self {
        assert!(w >= 5);
        self.width = w;
        self
    }

    /// Add a bar with a value label suffix (e.g. "296 GB/s").
    pub fn bar(&mut self, label: &str, value: f64, suffix: &str) -> &mut Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "bar value must be finite non-negative"
        );
        self.entries
            .push((label.to_owned(), value, suffix.to_owned()));
        self
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn render(&self) -> String {
        let max = self.entries.iter().map(|e| e.1).fold(0.0f64, f64::max);
        let lwidth = self.entries.iter().map(|e| e.0.len()).max().unwrap_or(0);
        let mut out = format!("{}\n", self.title);
        for (label, value, suffix) in &self.entries {
            let n = if max > 0.0 {
                ((value / max) * self.width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "  {:<lw$} |{:<bw$}| {}\n",
                label,
                "█".repeat(n),
                suffix,
                lw = lwidth,
                bw = self.width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_bar_fills_width() {
        let mut c = BarChart::new("t").width(10);
        c.bar("a", 5.0, "5");
        c.bar("b", 10.0, "10");
        let s = c.render();
        let b_line = s.lines().find(|l| l.trim_start().starts_with("b")).unwrap();
        assert_eq!(b_line.matches('█').count(), 10);
        let a_line = s.lines().find(|l| l.trim_start().starts_with("a")).unwrap();
        assert_eq!(a_line.matches('█').count(), 5);
    }

    #[test]
    fn zero_values_render() {
        let mut c = BarChart::new("t");
        c.bar("z", 0.0, "0");
        assert!(c.render().contains('z'));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        BarChart::new("t").bar("x", f64::NAN, "");
    }
}
