//! Minimal CSV writing (no external dependency; RFC-4180 quoting for the
//! values we emit).

use std::io::Write;
use std::path::Path;

/// Buffered CSV writer.
pub struct CsvWriter {
    out: Vec<u8>,
    columns: usize,
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

impl CsvWriter {
    pub fn new(header: &[&str]) -> Self {
        let mut w = CsvWriter {
            out: Vec::new(),
            columns: header.len(),
        };
        w.write_row_internal(header.iter().map(|s| s.to_string()).collect());
        w
    }

    fn write_row_internal(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns, "CSV row arity");
        let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
        self.out.extend_from_slice(line.join(",").as_bytes());
        self.out.push(b'\n');
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.write_row_internal(cells.to_vec());
        self
    }

    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        self.write_row_internal(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// The CSV content as a string.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.out).expect("CSV content is UTF-8")
    }

    /// Write to a file, creating parent directories.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row_strs(&["1", "2"]);
        assert_eq!(w.as_str(), "a,b\n1,2\n");
    }

    #[test]
    fn quotes_fields_with_commas_and_quotes() {
        let mut w = CsvWriter::new(&["x"]);
        w.row_strs(&["hello, \"world\""]);
        assert_eq!(w.as_str(), "x\n\"hello, \"\"world\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        CsvWriter::new(&["a", "b"]).row_strs(&["1"]);
    }

    #[test]
    fn save_creates_directories() {
        let dir = std::env::temp_dir().join("bwb_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sub/out.csv");
        let mut w = CsvWriter::new(&["v"]);
        w.row_strs(&["1"]);
        w.save(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
