//! Minimal JSON parser and validator.
//!
//! The workspace's vendored `serde` is a marker-only shim, so the Chrome
//! exporter writes JSON by hand; this module is the other half of that
//! bargain — a small recursive-descent parser used to round-trip exported
//! traces and check them against the Chrome `trace_event` schema (the CI
//! trace-smoke gate and the integration tests).

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys keep insertion order via a Vec so that
/// `to_string` round-trips byte-identically for our own exporter output.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if *n == n.trunc() && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (round-trips [`parse`] output).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Parse a JSON document. Errors carry a byte offset and a short message.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are exporter-internal never-emitted;
                            // map them to the replacement char rather than
                            // implementing full pair decoding.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Validate a document against the Chrome `trace_event` JSON Object Format:
/// a top-level object with a `traceEvents` array whose entries each carry a
/// valid `ph`, string `name`, numeric `pid`/`tid`, numeric `ts` (except
/// metadata), and — for `"X"` events — a numeric non-negative `dur`.
/// Returns the list of violations (empty = valid).
pub fn validate_chrome(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    let Some(events) = doc.get("traceEvents").and_then(|e| e.as_array()) else {
        problems.push("missing top-level 'traceEvents' array".into());
        return problems;
    };
    let mut seen_phases: BTreeMap<String, usize> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let Some(ph) = e.get("ph").and_then(|p| p.as_str()) else {
            problems.push(format!("event {i}: missing 'ph'"));
            continue;
        };
        *seen_phases.entry(ph.to_owned()).or_insert(0) += 1;
        if !matches!(ph, "X" | "B" | "E" | "M" | "C" | "i" | "I") {
            problems.push(format!("event {i}: unknown phase '{ph}'"));
        }
        if e.get("name").and_then(|n| n.as_str()).is_none() {
            problems.push(format!("event {i}: missing string 'name'"));
        }
        for key in ["pid", "tid"] {
            if e.get(key).and_then(|v| v.as_f64()).is_none() {
                problems.push(format!("event {i}: missing numeric '{key}'"));
            }
        }
        if ph != "M" && e.get("ts").and_then(|v| v.as_f64()).is_none() {
            problems.push(format!("event {i}: missing numeric 'ts'"));
        }
        if ph == "X" {
            match e.get("dur").and_then(|v| v.as_f64()) {
                Some(d) if d >= 0.0 => {}
                Some(_) => problems.push(format!("event {i}: negative 'dur'")),
                None => problems.push(format!("event {i}: 'X' event without 'dur'")),
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(r#""a\"bA\n""#).unwrap(), Json::Str("a\"bA\n".into()));
        let v = parse(r#"{"a": [1, 2, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "x");
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64().unwrap(), 2.0);
        assert_eq!(arr[2].get("b").unwrap(), &Json::Bool(false));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn round_trips_compact_output() {
        let text = r#"{"displayTimeUnit":"ns","traceEvents":[{"ph":"X","name":"k \"q\"","ts":1.5,"dur":2,"pid":0,"tid":1,"args":{"bytes":4096}}]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn chrome_schema_validation() {
        let good = parse(
            r#"{"traceEvents":[
                {"ph":"M","name":"process_name","pid":0,"tid":0,"ts":0,"args":{"name":"rank 0"}},
                {"ph":"X","name":"loop","ts":0,"dur":5,"pid":0,"tid":0,"args":{}},
                {"ph":"C","name":"ctr","ts":1,"pid":0,"tid":0,"args":{"value":3}},
                {"ph":"i","name":"ev","ts":2,"s":"t","pid":0,"tid":0,"args":{}}
            ]}"#,
        )
        .unwrap();
        assert!(validate_chrome(&good).is_empty());

        let bad =
            parse(r#"{"traceEvents":[{"ph":"X","name":"a","ts":0,"pid":0,"tid":0}]}"#).unwrap();
        assert_eq!(
            validate_chrome(&bad),
            vec!["event 0: 'X' event without 'dur'"]
        );
        let bad =
            parse(r#"{"traceEvents":[{"ph":"Z","ts":0,"pid":0,"tid":0,"name":"a"}]}"#).unwrap();
        assert_eq!(validate_chrome(&bad), vec!["event 0: unknown phase 'Z'"]);
        let bad = parse(r#"{"events":[]}"#).unwrap();
        assert!(validate_chrome(&bad)[0].contains("traceEvents"));
    }
}
