//! Chrome `trace_event` JSON export (the "JSON Object Format" with a
//! `traceEvents` array), loadable in Perfetto / `chrome://tracing`.
//!
//! Hand-written emission: the vendored `serde` is a marker-only shim, so —
//! like the `analyze` CLI — the exporter formats JSON directly and the
//! schema tests round-trip it through [`crate::json`].
//!
//! Span pairs become `"ph":"X"` complete events; counters become `"C"`;
//! instants `"i"`. Loop spans carry `bytes`, `flops`, `points`, the
//! achieved `bw_gbs`, and — when a [`Roofline`] is supplied —
//! `bw_pct_of_roofline`, so an exported trace directly answers the paper's
//! Figure 8 question per kernel invocation.

use crate::record::{Cat, Kind, Trace};
use bwb_machine::Roofline;
use std::fmt::Write as _;

/// Export options.
#[derive(Debug, Clone, Default)]
pub struct ChromeOptions {
    /// Annotate loop spans with `bw_pct_of_roofline` against this roofline.
    pub roofline: Option<Roofline>,
}

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 as a JSON number (never NaN/inf, which JSON forbids).
fn num(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Microseconds (Chrome's `ts`/`dur` unit) from nanoseconds.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

fn args_json(cat: Cat, kind: Kind, args: [f64; 3], dur_ns: u64, roof: Option<&Roofline>) -> String {
    let [a0, a1, a2] = args;
    match (cat, kind) {
        (Cat::Loop, Kind::End) => {
            let mut s = format!(
                "{{\"bytes\":{},\"flops\":{},\"points\":{}",
                num(a0),
                num(a1),
                num(a2)
            );
            if dur_ns > 0 {
                let gbs = a0 / (dur_ns as f64 * 1e-9) / 1e9;
                if gbs.is_finite() {
                    let _ = write!(s, ",\"bw_gbs\":{:.3}", gbs);
                    if let Some(r) = roof {
                        if r.peak_gbs > 0.0 {
                            let _ = write!(
                                s,
                                ",\"bw_pct_of_roofline\":{:.2}",
                                gbs / r.peak_gbs * 100.0
                            );
                        }
                    }
                }
            }
            s.push('}');
            s
        }
        (Cat::Halo, Kind::End) => format!(
            "{{\"dim\":{},\"depth\":{},\"bytes\":{}}}",
            num(a0),
            num(a1),
            num(a2)
        ),
        (Cat::Mpi, _) => format!(
            "{{\"peer\":{},\"bytes\":{},\"tag\":{}}}",
            num(a0),
            num(a1),
            num(a2)
        ),
        (Cat::Tile, Kind::End) => format!(
            "{{\"tile\":{},\"j0\":{},\"j1\":{}}}",
            num(a0),
            num(a1),
            num(a2)
        ),
        (Cat::Color, Kind::End) => format!("{{\"color\":{},\"elements\":{}}}", num(a0), num(a1)),
        (Cat::App, Kind::End) => format!("{{\"iteration\":{}}}", num(a0)),
        _ => format!(
            "{{\"a0\":{},\"a1\":{},\"a2\":{}}}",
            num(a0),
            num(a1),
            num(a2)
        ),
    }
}

/// Render the whole trace as Chrome trace_event JSON.
pub fn to_chrome_json(trace: &Trace, opts: &ChromeOptions) -> String {
    let roof = opts.roofline.as_ref();
    let mut events: Vec<String> = Vec::new();

    // Metadata: name ranks (pids) and threads so Perfetto labels lanes.
    let mut pids: Vec<usize> = trace.threads.iter().map(|t| t.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"ts\":0,\
             \"args\":{{\"name\":\"rank {pid}\"}}}}"
        ));
    }
    for t in &trace.threads {
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\"ts\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            t.pid,
            t.tid,
            esc(&t.label)
        ));
    }

    for t in &trace.threads {
        // Stack pairing mirrors `tree::build_forest`, but emits "X" events
        // in place so malformed tails degrade gracefully (skipped).
        let mut stack: Vec<(u32, u64)> = Vec::new();
        for e in &t.events {
            let name = esc(trace.name(e.name));
            match e.kind {
                Kind::Begin => stack.push((e.name, e.ts_ns)),
                Kind::End => {
                    let Some((open, start)) = stack.pop() else {
                        continue;
                    };
                    if open != e.name {
                        stack.clear();
                        continue;
                    }
                    let dur = e.ts_ns.saturating_sub(start);
                    events.push(format!(
                        "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\
                         \"pid\":{},\"tid\":{},\"args\":{}}}",
                        name,
                        e.cat.label(),
                        us(start),
                        us(dur),
                        t.pid,
                        t.tid,
                        args_json(e.cat, Kind::End, e.args, dur, roof)
                    ));
                }
                Kind::Counter => events.push(format!(
                    "{{\"ph\":\"C\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"value\":{}}}}}",
                    name,
                    e.cat.label(),
                    us(e.ts_ns),
                    t.pid,
                    t.tid,
                    num(e.args[0])
                )),
                Kind::Instant => events.push(format!(
                    "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"s\":\"t\",\
                     \"pid\":{},\"tid\":{},\"args\":{}}}",
                    name,
                    e.cat.label(),
                    us(e.ts_ns),
                    t.pid,
                    t.tid,
                    args_json(e.cat, Kind::Instant, e.args, 0, roof)
                )),
            }
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::record::{Event, ThreadTrace};

    fn demo_trace() -> Trace {
        let mk = |ts, name, cat, kind, args| Event {
            ts_ns: ts,
            name,
            cat,
            kind,
            args,
        };
        Trace {
            names: vec!["advec \"x\"".into(), "wait".into(), "q".into()],
            threads: vec![ThreadTrace {
                pid: 1,
                tid: 4,
                label: "rank 1".into(),
                dropped: 0,
                events: vec![
                    mk(1_000, 0, Cat::Loop, Kind::Begin, [0.0; 3]),
                    mk(2_000, 0, Cat::Loop, Kind::End, [4000.0, 100.0, 16.0]),
                    mk(2_500, 1, Cat::Mpi, Kind::Instant, [3.0, 64.0, 9.0]),
                    mk(3_000, 2, Cat::Other, Kind::Counter, [7.5, 0.0, 0.0]),
                ],
            }],
        }
    }

    #[test]
    fn emits_parseable_chrome_json_with_roofline_args() {
        let roof = Roofline {
            peak_gflops: 1000.0,
            peak_gbs: 8.0,
        };
        let out = to_chrome_json(
            &demo_trace(),
            &ChromeOptions {
                roofline: Some(roof),
            },
        );
        let v = json::parse(&out).expect("exporter output parses as JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 1 process meta + 1 thread meta + X + i + C.
        assert_eq!(events.len(), 5);
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("complete event");
        assert_eq!(x.get("name").unwrap().as_str().unwrap(), "advec \"x\"");
        assert_eq!(x.get("dur").unwrap().as_f64().unwrap(), 1.0); // 1 µs
        let args = x.get("args").unwrap();
        assert_eq!(args.get("bytes").unwrap().as_f64().unwrap(), 4000.0);
        assert_eq!(args.get("flops").unwrap().as_f64().unwrap(), 100.0);
        // 4000 B / 1 µs = 4 GB/s = 50 % of the 8 GB/s roof.
        assert!((args.get("bw_gbs").unwrap().as_f64().unwrap() - 4.0).abs() < 1e-9);
        assert!((args.get("bw_pct_of_roofline").unwrap().as_f64().unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn nonfinite_args_stay_valid_json() {
        let mut t = demo_trace();
        t.threads[0].events[1].args = [f64::NAN, f64::INFINITY, 1.0];
        let out = to_chrome_json(&t, &ChromeOptions::default());
        assert!(json::parse(&out).is_ok());
        assert!(!out.contains("NaN") && !out.contains("inf"));
    }
}
