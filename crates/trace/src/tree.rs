//! Post-run aggregation: pairing each thread's Begin/End events into a
//! span forest, plus the well-formedness checks the integration tests (and
//! the `trace` CLI) gate on.

use crate::record::{Cat, Kind, Trace};

/// One closed span with its nested children.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    pub name: u32,
    pub cat: Cat,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Payload from the End event (see [`Cat`] for the field meanings).
    pub args: [f64; 3],
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Duration minus the children's durations.
    pub fn self_ns(&self) -> u64 {
        let kids: u64 = self.children.iter().map(|c| c.dur_ns()).sum();
        self.dur_ns().saturating_sub(kids)
    }

    /// Depth-first walk over this span and its descendants.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a SpanNode, usize)) {
        self.walk_at(0, f);
    }

    fn walk_at<'a>(&'a self, depth: usize, f: &mut impl FnMut(&'a SpanNode, usize)) {
        f(self, depth);
        for c in &self.children {
            c.walk_at(depth + 1, f);
        }
    }
}

/// One thread's span forest (top-level spans in time order).
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTree {
    pub pid: usize,
    pub tid: usize,
    pub label: String,
    pub roots: Vec<SpanNode>,
}

impl ThreadTree {
    /// Depth-first walk over every span of the forest.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a SpanNode, usize)) {
        for r in &self.roots {
            r.walk(f);
        }
    }
}

/// Build the per-thread span forests. Returns an error message per
/// malformed thread stream (unmatched End, name-mismatched End, or spans
/// left open); counters and instants are skipped.
pub fn build_forest(trace: &Trace) -> Result<Vec<ThreadTree>, Vec<String>> {
    let mut forests = Vec::new();
    let mut errors = Vec::new();
    for t in &trace.threads {
        let mut roots: Vec<SpanNode> = Vec::new();
        let mut stack: Vec<SpanNode> = Vec::new();
        let mut bad = false;
        for e in &t.events {
            match e.kind {
                Kind::Begin => stack.push(SpanNode {
                    name: e.name,
                    cat: e.cat,
                    start_ns: e.ts_ns,
                    end_ns: e.ts_ns,
                    args: [0.0; 3],
                    children: Vec::new(),
                }),
                Kind::End => match stack.pop() {
                    Some(mut open) if open.name == e.name => {
                        open.end_ns = e.ts_ns;
                        open.args = e.args;
                        match stack.last_mut() {
                            Some(parent) => parent.children.push(open),
                            None => roots.push(open),
                        }
                    }
                    Some(open) => {
                        errors.push(format!(
                            "thread {} ({}): End '{}' closes open span '{}'",
                            t.tid,
                            t.label,
                            trace.name(e.name),
                            trace.name(open.name)
                        ));
                        bad = true;
                        break;
                    }
                    None => {
                        errors.push(format!(
                            "thread {} ({}): End '{}' with no open span",
                            t.tid,
                            t.label,
                            trace.name(e.name)
                        ));
                        bad = true;
                        break;
                    }
                },
                Kind::Counter | Kind::Instant => {}
            }
        }
        if !bad && !stack.is_empty() {
            errors.push(format!(
                "thread {} ({}): {} span(s) left open, first '{}'",
                t.tid,
                t.label,
                stack.len(),
                trace.name(stack[0].name)
            ));
            bad = true;
        }
        if !bad {
            forests.push(ThreadTree {
                pid: t.pid,
                tid: t.tid,
                label: t.label.clone(),
                roots,
            });
        }
    }
    if errors.is_empty() {
        Ok(forests)
    } else {
        Err(errors)
    }
}

/// Well-formedness report: structural errors (from [`build_forest`]) plus
/// interval violations — siblings that overlap or run backwards, children
/// escaping their parent's interval, buffer saturation. Empty = clean.
pub fn validate(trace: &Trace) -> Vec<String> {
    let mut problems = Vec::new();
    for t in &trace.threads {
        if t.dropped > 0 {
            problems.push(format!(
                "thread {} ({}): {} event(s) dropped to buffer saturation",
                t.tid, t.label, t.dropped
            ));
        }
    }
    let forests = match build_forest(trace) {
        Ok(f) => f,
        Err(errs) => {
            problems.extend(errs);
            return problems;
        }
    };
    for f in &forests {
        check_intervals(trace, f.tid, &f.label, &f.roots, None, &mut problems);
    }
    problems
}

fn check_intervals(
    trace: &Trace,
    tid: usize,
    label: &str,
    spans: &[SpanNode],
    parent: Option<(u64, u64)>,
    problems: &mut Vec<String>,
) {
    let mut prev_end: Option<u64> = None;
    for s in spans {
        if s.end_ns < s.start_ns {
            problems.push(format!(
                "thread {tid} ({label}): span '{}' runs backwards",
                trace.name(s.name)
            ));
        }
        if let Some(pe) = prev_end {
            if s.start_ns < pe {
                problems.push(format!(
                    "thread {tid} ({label}): span '{}' overlaps its preceding sibling",
                    trace.name(s.name)
                ));
            }
        }
        if let Some((ps, pe)) = parent {
            if s.start_ns < ps || s.end_ns > pe {
                problems.push(format!(
                    "thread {tid} ({label}): span '{}' escapes its parent interval",
                    trace.name(s.name)
                ));
            }
        }
        check_intervals(
            trace,
            tid,
            label,
            &s.children,
            Some((s.start_ns, s.end_ns)),
            problems,
        );
        prev_end = Some(s.end_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Event, ThreadTrace};

    fn ev(ts: u64, name: u32, kind: Kind) -> Event {
        Event {
            ts_ns: ts,
            name,
            cat: Cat::Loop,
            kind,
            args: [0.0; 3],
        }
    }

    fn trace_of(events: Vec<Event>) -> Trace {
        Trace {
            names: vec!["a".into(), "b".into(), "c".into()],
            threads: vec![ThreadTrace {
                pid: 0,
                tid: 0,
                label: "t0".into(),
                dropped: 0,
                events,
            }],
        }
    }

    #[test]
    fn nests_and_validates_clean_stream() {
        let t = trace_of(vec![
            ev(0, 0, Kind::Begin),
            ev(10, 1, Kind::Begin),
            ev(20, 1, Kind::End),
            ev(25, 2, Kind::Begin),
            ev(30, 2, Kind::End),
            ev(40, 0, Kind::End),
        ]);
        let forest = build_forest(&t).unwrap();
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].roots.len(), 1);
        let root = &forest[0].roots[0];
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.dur_ns(), 40);
        assert_eq!(root.self_ns(), 40 - 10 - 5);
        assert!(validate(&t).is_empty());
        let mut seen = Vec::new();
        forest[0].walk(&mut |s, d| seen.push((s.name, d)));
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 1)]);
    }

    #[test]
    fn detects_unclosed_and_unmatched() {
        let t = trace_of(vec![ev(0, 0, Kind::Begin)]);
        assert!(build_forest(&t).is_err());
        assert!(validate(&t)[0].contains("left open"));

        let t = trace_of(vec![ev(0, 0, Kind::End)]);
        assert!(validate(&t)[0].contains("no open span"));

        let t = trace_of(vec![ev(0, 0, Kind::Begin), ev(5, 1, Kind::End)]);
        assert!(validate(&t)[0].contains("closes open span"));
    }

    #[test]
    fn detects_overlapping_siblings() {
        let t = trace_of(vec![
            ev(0, 0, Kind::Begin),
            ev(10, 0, Kind::End),
            ev(5, 1, Kind::Begin),
            ev(15, 1, Kind::End),
        ]);
        let problems = validate(&t);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("overlaps"));
    }

    #[test]
    fn saturation_is_reported() {
        let mut t = trace_of(vec![]);
        t.threads[0].dropped = 3;
        assert!(validate(&t)[0].contains("dropped"));
    }
}
