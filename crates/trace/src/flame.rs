//! ASCII flamegraph and per-thread timeline rendering.
//!
//! The flamegraph merges identical call paths across every traced thread
//! (the classic collapsed-stacks view, indented instead of stacked); the
//! timeline paints one lane per thread with a category letter per time
//! bucket, leaf spans winning over their ancestors — a poor man's Perfetto
//! for terminals and CI logs.

use crate::record::{Cat, Trace};
use crate::tree::{build_forest, SpanNode, ThreadTree};
use std::collections::BTreeMap;

/// One-letter lane code for the timeline view.
fn cat_letter(cat: Cat) -> char {
    match cat {
        Cat::Loop => 'L',
        Cat::Halo => 'H',
        Cat::Mpi => 'M',
        Cat::Tile => 'T',
        Cat::Color => 'C',
        Cat::App => 'A',
        Cat::Other => 'o',
    }
}

#[derive(Default)]
struct MergedNode {
    cat: Option<Cat>,
    count: u64,
    total_ns: u64,
    children: BTreeMap<String, MergedNode>,
}

fn merge_span(trace: &Trace, node: &mut MergedNode, span: &SpanNode) {
    let child = node
        .children
        .entry(trace.name(span.name).to_owned())
        .or_default();
    child.cat = Some(span.cat);
    child.count += 1;
    child.total_ns += span.dur_ns();
    for c in &span.children {
        merge_span(trace, child, c);
    }
}

fn render_merged(
    out: &mut String,
    name: &str,
    node: &MergedNode,
    depth: usize,
    root_ns: u64,
    bar_width: usize,
) {
    let frac = if root_ns > 0 {
        node.total_ns as f64 / root_ns as f64
    } else {
        0.0
    };
    let bar = "█".repeat(((frac * bar_width as f64).round() as usize).min(bar_width));
    out.push_str(&format!(
        "  {:indent$}{:<width$} |{:<bw$}| {:5.1}% {:>10.3} ms ×{}\n",
        "",
        name,
        bar,
        frac * 100.0,
        node.total_ns as f64 / 1e6,
        node.count,
        indent = depth * 2,
        width = 28usize.saturating_sub(depth * 2),
        bw = bar_width
    ));
    // Children sorted hottest-first; BTreeMap gives a deterministic
    // name-order tiebreak for equal times.
    let mut kids: Vec<(&String, &MergedNode)> = node.children.iter().collect();
    kids.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then_with(|| a.0.cmp(b.0)));
    for (kname, kid) in kids {
        render_merged(out, kname, kid, depth + 1, root_ns, bar_width);
    }
}

/// Render a merged flamegraph of the whole trace. `bar_width` is the width
/// of the proportional bar in characters (percentages are of total
/// traced span time across all threads).
pub fn flamegraph(trace: &Trace, bar_width: usize) -> String {
    let forest = match build_forest(trace) {
        Ok(f) => f,
        Err(errs) => {
            let mut out = String::from("flamegraph unavailable (malformed trace):\n");
            for e in errs {
                out.push_str(&format!("  {e}\n"));
            }
            return out;
        }
    };
    let mut root = MergedNode::default();
    for tree in &forest {
        for span in &tree.roots {
            merge_span(trace, &mut root, span);
        }
    }
    let root_ns: u64 = root.children.values().map(|c| c.total_ns).sum();
    let mut out = format!(
        "flamegraph — {} thread(s), {:.3} ms total span time\n",
        forest.len(),
        root_ns as f64 / 1e6
    );
    let mut tops: Vec<(&String, &MergedNode)> = root.children.iter().collect();
    tops.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then_with(|| a.0.cmp(b.0)));
    for (name, node) in tops {
        render_merged(&mut out, name, node, 0, root_ns, bar_width);
    }
    out
}

fn paint_lane(lane: &mut [char], spans: &[SpanNode], t0: u64, span_ns: u64) {
    for s in spans {
        // Children first: leaves claim their buckets before ancestors fill
        // the remainder.
        paint_lane(lane, &s.children, t0, span_ns);
        let width = lane.len();
        let to_bucket = |ts: u64| -> usize {
            (((ts.saturating_sub(t0)) as u128 * width as u128) / span_ns.max(1) as u128) as usize
        };
        let b0 = to_bucket(s.start_ns).min(width - 1);
        // End is exclusive: a span ending exactly on a bucket boundary must
        // not claim the following bucket from its parent or sibling.
        let b1 = to_bucket(s.end_ns.max(s.start_ns + 1) - 1).min(width - 1);
        let letter = cat_letter(s.cat);
        for slot in lane.iter_mut().take(b1 + 1).skip(b0) {
            if *slot == '.' {
                *slot = letter;
            }
        }
    }
}

fn time_range(forest: &[ThreadTree]) -> Option<(u64, u64)> {
    let mut t0 = u64::MAX;
    let mut t1 = 0u64;
    for t in forest {
        for r in &t.roots {
            t0 = t0.min(r.start_ns);
            t1 = t1.max(r.end_ns);
        }
    }
    (t1 > t0).then_some((t0, t1))
}

/// Render one timeline lane per thread, `width` buckets wide. Each bucket
/// shows the letter of the deepest span covering it (`.` = untraced idle).
pub fn timeline(trace: &Trace, width: usize) -> String {
    let width = width.max(10);
    let forest = match build_forest(trace) {
        Ok(f) => f,
        Err(_) => return "timeline unavailable (malformed trace)\n".to_owned(),
    };
    let Some((t0, t1)) = time_range(&forest) else {
        return "timeline empty (no closed spans)\n".to_owned();
    };
    let span_ns = t1 - t0;
    let label_w = forest.iter().map(|t| t.label.len()).max().unwrap_or(0);
    let mut out = format!(
        "timeline — {:.3} ms, {} ns/char  \
         [L=loop H=halo M=mpi T=tile C=color A=app o=other .=idle]\n",
        span_ns as f64 / 1e6,
        span_ns / width as u64
    );
    for t in &forest {
        let mut lane = vec!['.'; width];
        paint_lane(&mut lane, &t.roots, t0, span_ns);
        out.push_str(&format!(
            "  {:<label_w$} |{}|\n",
            t.label,
            lane.iter().collect::<String>()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Event, Kind, ThreadTrace};

    fn ev(ts: u64, name: u32, cat: Cat, kind: Kind) -> Event {
        Event {
            ts_ns: ts,
            name,
            cat,
            kind,
            args: [0.0; 3],
        }
    }

    fn demo_trace() -> Trace {
        Trace {
            names: vec!["cycle".into(), "advec".into(), "wait".into()],
            threads: vec![ThreadTrace {
                pid: 0,
                tid: 0,
                label: "rank 0".into(),
                dropped: 0,
                events: vec![
                    ev(0, 0, Cat::App, Kind::Begin),
                    ev(0, 1, Cat::Loop, Kind::Begin),
                    ev(600, 1, Cat::Loop, Kind::End),
                    ev(700, 2, Cat::Mpi, Kind::Begin),
                    ev(900, 2, Cat::Mpi, Kind::End),
                    ev(1_000, 0, Cat::App, Kind::End),
                ],
            }],
        }
    }

    #[test]
    fn flamegraph_merges_and_orders_by_time() {
        let s = flamegraph(&demo_trace(), 20);
        let cycle_at = s.find("cycle").unwrap();
        let advec_at = s.find("advec").unwrap();
        let wait_at = s.find("wait").unwrap();
        // Root first, then children hottest-first.
        assert!(cycle_at < advec_at && advec_at < wait_at);
        assert!(s.contains("100.0%"));
        assert!(s.contains("×1"));
    }

    #[test]
    fn timeline_leaf_paint_wins() {
        let s = timeline(&demo_trace(), 10);
        let lane = s
            .lines()
            .find(|l| l.contains("rank 0"))
            .and_then(|l| l.split('|').nth(1))
            .unwrap();
        // 0-600 ns loop, 700-900 mpi, rest app; 10 buckets of 100 ns.
        assert_eq!(lane.len(), 10);
        assert!(lane.starts_with("LLLLL"));
        assert!(lane.contains('M'));
        assert!(lane.contains('A'));
        assert!(!lane.contains('.'));
    }

    #[test]
    fn malformed_trace_degrades_gracefully() {
        let mut t = demo_trace();
        t.threads[0].events.truncate(1);
        assert!(flamegraph(&t, 20).contains("unavailable"));
        assert!(timeline(&t, 20).contains("unavailable"));
    }
}
