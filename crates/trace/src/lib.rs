//! # bwb-trace — low-overhead runtime tracing
//!
//! Observability for the bandwidth-bound mini-apps: every rank thread and
//! rayon pool worker records timestamped span and counter events into its
//! own lock-free ring buffer ([`record`]), which post-run aggregation turns
//! into per-thread span trees ([`tree`]), per-kernel metric rollups with
//! roofline attribution ([`rollup`]), Chrome `trace_event` JSON for
//! Perfetto ([`chrome`]), and ASCII flamegraphs/timelines for terminals
//! ([`flame`]). A minimal JSON parser ([`json`]) round-trips exported
//! traces for schema validation in CI.
//!
//! Tracing is off by default and zero-cost when off: each emission entry
//! point costs one relaxed atomic load (and compiles to a constant `false`
//! when the `runtime` feature is disabled). Typical use:
//!
//! ```
//! let ((), trace) = bwb_trace::with_tracing(|| {
//!     let mut span = bwb_trace::span(bwb_trace::Cat::Loop, "advec_cell");
//!     span.set_args(4096.0, 1024.0, 512.0); // bytes, flops, points
//! });
//! assert!(bwb_trace::validate(&trace).is_empty());
//! let json = bwb_trace::to_chrome_json(&trace, &Default::default());
//! assert!(bwb_trace::json::parse(&json).is_ok());
//! ```

pub mod chrome;
pub mod flame;
pub mod json;
pub mod record;
pub mod rollup;
pub mod tree;

pub use chrome::{to_chrome_json, ChromeOptions};
pub use flame::{flamegraph, timeline};
pub use record::{
    clear, counter, enabled, instant, set_capacity, set_enabled, set_rank, set_thread_label, span,
    span_retro, take, with_tracing, Cat, Event, Kind, SpanGuard, ThreadTrace, Trace,
    DEFAULT_CAPACITY,
};
pub use rollup::{Rollup, RollupRow};
pub use tree::{build_forest, validate, SpanNode, ThreadTree};
