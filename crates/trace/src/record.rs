//! The recording half of the tracer: a global on/off toggle, per-thread
//! lock-free ring buffers of fixed-size [`Event`]s, and the span/counter
//! emission API the instrumented crates call.
//!
//! # Zero cost when disabled
//!
//! Every emission entry point starts with [`enabled`] — one relaxed atomic
//! load when the `runtime` feature is on, and a compile-time `false` (the
//! whole call folds away) when it is off. No buffer is allocated, no name
//! interned, and no timestamp taken unless tracing is actually on, so
//! untraced runs pay a branch on a never-written cache line and nothing
//! else. This mirrors the `recording_active()` pattern of the dslcheck
//! recorder in `ops::access`, but — unlike checked execution — tracing does
//! *not* force serial execution: every thread (rank threads and rayon pool
//! workers alike) records into its own buffer.
//!
//! # The ring buffers
//!
//! Each recording thread owns one [`RingBuf`]: a preallocated slot array
//! plus a monotonically increasing published length. The owning thread is
//! the only writer; it stores the event into slot `len` and then publishes
//! `len + 1` with `Release` ordering, so any thread that reads the length
//! with `Acquire` sees fully written events in `[0, len)`. Recording
//! therefore takes no lock and issues no read-modify-write — a plain store
//! and an ordered store. When a buffer fills, further events are counted in
//! `dropped` and discarded (saturation keeps span pairing well-formed for
//! everything already recorded, unlike wrap-around overwriting).
//!
//! # Harvesting
//!
//! [`take`] snapshots every registered buffer into a [`Trace`] and resets
//! them. It must be called at quiescence — tracing disabled and no
//! instrumented operation in flight — which every caller in this workspace
//! satisfies by harvesting after `Universe::run` returns and parallel loops
//! have joined.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread buffer capacity in events (~3 MB per thread).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Category of a span, counter, or instant event. Determines how exporters
/// label the event and interpret its [`Event::args`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cat {
    /// A parallel-loop body (`args` on End: `[bytes, flops, points]`).
    Loop,
    /// Halo pack/exchange/unpack (`args` on End: `[dim, depth, bytes]`).
    Halo,
    /// MPI wait/barrier spans and send instants
    /// (`args`: `[peer, bytes, tag]`; peer/tag are `-1` when not meaningful).
    Mpi,
    /// Tiled-execution phases (`args` on End: `[tile, j0, j1]`).
    Tile,
    /// Colour-round execution (`args` on End: `[color, elements, 0]`).
    Color,
    /// Application-level phases (`args` on End: `[iteration, 0, 0]`).
    App,
    /// Anything else (counters default here).
    Other,
}

impl Cat {
    /// Short lowercase label (Chrome's `cat` field, timeline letters).
    pub fn label(self) -> &'static str {
        match self {
            Cat::Loop => "loop",
            Cat::Halo => "halo",
            Cat::Mpi => "mpi",
            Cat::Tile => "tile",
            Cat::Color => "color",
            Cat::App => "app",
            Cat::Other => "other",
        }
    }
}

/// Event kind: spans are Begin/End pairs; counters and instants stand alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kind {
    Begin,
    End,
    Counter,
    Instant,
}

/// One timestamped trace event. `name` indexes [`Trace::names`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Nanoseconds since the trace epoch (first enablement).
    pub ts_ns: u64,
    /// Interned name id.
    pub name: u32,
    pub cat: Cat,
    pub kind: Kind,
    /// Category-specific payload (see [`Cat`]); counters use `args[0]`.
    pub args: [f64; 3],
}

impl Event {
    const ZERO: Event = Event {
        ts_ns: 0,
        name: 0,
        cat: Cat::Other,
        kind: Kind::Instant,
        args: [0.0; 3],
    };
}

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static NEXT_TID: AtomicUsize = AtomicUsize::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static REGISTRY: Mutex<Vec<Arc<RingBuf>>> = Mutex::new(Vec::new());
static INTERNER: Mutex<Interner> = Mutex::new(Interner::new());

struct Interner {
    ids: BTreeMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    const fn new() -> Self {
        Interner {
            ids: BTreeMap::new(),
            names: Vec::new(),
        }
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }
}

/// Is tracing globally enabled? One relaxed load; `const false` without the
/// `runtime` feature, letting the optimizer delete every call site.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "runtime")]
    {
        ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "runtime"))]
    {
        false
    }
}

/// Turn tracing on or off (no-op without the `runtime` feature). Enabling
/// pins the trace epoch on first use.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "runtime")]
    {
        if on {
            EPOCH.get_or_init(Instant::now);
        }
        ENABLED.store(on, Ordering::SeqCst);
    }
    #[cfg(not(feature = "runtime"))]
    let _ = on;
}

/// Set the per-thread buffer capacity (events) used for buffers created
/// *after* this call. Existing buffers keep their capacity.
pub fn set_capacity(events: usize) {
    CAPACITY.store(events.max(16), Ordering::SeqCst);
}

#[inline]
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Per-thread ring buffers
// ---------------------------------------------------------------------------

/// Single-writer event buffer. The owning thread appends; any thread may
/// snapshot the published prefix.
struct RingBuf {
    slots: Box<[std::cell::UnsafeCell<Event>]>,
    /// Published event count; monotone while recording, reset at harvest.
    len: AtomicUsize,
    dropped: AtomicUsize,
    /// Process id for exporters: the shmpi rank, or 0 on undistributed runs.
    pid: AtomicUsize,
    tid: usize,
    label: Mutex<String>,
}

// SAFETY: slot `i` is written exactly once per fill cycle, by the single
// owning thread, before `len` is published past `i` with Release ordering;
// readers load `len` with Acquire and only read `[0, len)`. Resets (the
// `len` store in `take`/`clear`) happen only at documented quiescence, so a
// slot is never written concurrently with a read.
unsafe impl Sync for RingBuf {}

impl RingBuf {
    fn new(tid: usize, pid: usize, label: String) -> Self {
        let cap = CAPACITY.load(Ordering::SeqCst);
        RingBuf {
            slots: (0..cap)
                .map(|_| std::cell::UnsafeCell::new(Event::ZERO))
                .collect(),
            len: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
            pid: AtomicUsize::new(pid),
            tid,
            label: Mutex::new(label),
        }
    }

    /// Append one event (owning thread only).
    #[inline]
    fn push(&self, e: Event) {
        let n = self.len.load(Ordering::Relaxed);
        if n >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: single-writer discipline (see the `Sync` impl): this
        // thread owns slot `n`, which no reader touches until the Release
        // store below publishes it.
        unsafe {
            *self.slots[n].get() = e;
        }
        self.len.store(n + 1, Ordering::Release);
    }

    /// Copy out the published events and reset the buffer.
    fn drain(&self) -> (Vec<Event>, usize) {
        let n = self.len.load(Ordering::Acquire).min(self.slots.len());
        let events = (0..n)
            .map(|i| {
                // SAFETY: `i < len` was published with Release by the single
                // writer, so the slot is fully written; harvest runs at
                // quiescence, so no concurrent write exists.
                unsafe { *self.slots[i].get() }
            })
            .collect();
        let dropped = self.dropped.swap(0, Ordering::Relaxed);
        self.len.store(0, Ordering::Release);
        (events, dropped)
    }
}

thread_local! {
    /// This thread's buffer, created lazily on first traced event.
    static TL_BUF: RefCell<Option<Arc<RingBuf>>> = const { RefCell::new(None) };
    /// Rank/label requested before any event forced buffer creation.
    static TL_PENDING_PID: Cell<usize> = const { Cell::new(0) };
    static TL_PENDING_LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
    /// Thread-local interned-name cache: hot-path lookups take no lock.
    static TL_NAMES: RefCell<BTreeMap<String, u32>> = const { RefCell::new(BTreeMap::new()) };
}

fn with_buf<R>(f: impl FnOnce(&RingBuf) -> R) -> R {
    TL_BUF.with(|b| {
        let mut b = b.borrow_mut();
        let buf = b.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::SeqCst);
            let pid = TL_PENDING_PID.with(|p| p.get());
            let label = TL_PENDING_LABEL
                .with(|l| l.borrow_mut().take())
                .unwrap_or_else(|| format!("thread-{tid}"));
            let buf = Arc::new(RingBuf::new(tid, pid, label));
            REGISTRY.lock().unwrap().push(Arc::clone(&buf));
            buf
        });
        f(buf)
    })
}

fn intern(name: &str) -> u32 {
    TL_NAMES.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(&id) = cache.get(name) {
            return id;
        }
        let id = INTERNER.lock().unwrap().intern(name);
        cache.insert(name.to_owned(), id);
        id
    })
}

#[inline]
fn push_event(ts_ns: u64, name: u32, cat: Cat, kind: Kind, args: [f64; 3]) {
    with_buf(|b| {
        b.push(Event {
            ts_ns,
            name,
            cat,
            kind,
            args,
        })
    });
}

/// Attribute this thread's events to a rank (Chrome `pid`). Cheap when
/// tracing is disabled: the rank is parked in a thread-local until (unless)
/// a buffer is created.
pub fn set_rank(rank: usize) {
    TL_PENDING_PID.with(|p| p.set(rank));
    TL_BUF.with(|b| {
        if let Some(buf) = b.borrow().as_ref() {
            buf.pid.store(rank, Ordering::SeqCst);
        }
    });
}

/// Human-readable label for this thread in exported traces.
pub fn set_thread_label(label: &str) {
    TL_BUF.with(|b| match b.borrow().as_ref() {
        Some(buf) => *buf.label.lock().unwrap() = label.to_owned(),
        None => TL_PENDING_LABEL.with(|l| *l.borrow_mut() = Some(label.to_owned())),
    });
}

// ---------------------------------------------------------------------------
// Emission API
// ---------------------------------------------------------------------------

/// An open span; records its End event (with any args set meanwhile) on
/// drop. Inert — a branch on a `bool` — when tracing was disabled at open.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard {
    active: bool,
    name: u32,
    cat: Cat,
    args: [f64; 3],
}

impl SpanGuard {
    /// Attach the category-specific payload reported on the End event.
    #[inline]
    pub fn set_args(&mut self, a0: f64, a1: f64, a2: f64) {
        if self.active {
            self.args = [a0, a1, a2];
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            push_event(now_ns(), self.name, self.cat, Kind::End, self.args);
        }
    }
}

/// Open a span. When tracing is disabled this is a single predictable
/// branch and the returned guard does nothing.
#[inline]
pub fn span(cat: Cat, name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            active: false,
            name: 0,
            cat,
            args: [0.0; 3],
        };
    }
    let id = intern(name);
    push_event(now_ns(), id, cat, Kind::Begin, [0.0; 3]);
    SpanGuard {
        active: true,
        name: id,
        cat,
        args: [0.0; 3],
    }
}

/// Record a span retroactively: it ends now and lasted `dur`. Used where
/// the duration is measured by existing accounting (e.g. `shmpi` wait
/// time), so the span agrees with it exactly.
#[inline]
pub fn span_retro(cat: Cat, name: &str, dur: std::time::Duration, args: [f64; 3]) {
    if !enabled() {
        return;
    }
    let id = intern(name);
    let end = now_ns();
    let start = end.saturating_sub(dur.as_nanos() as u64);
    push_event(start, id, cat, Kind::Begin, [0.0; 3]);
    push_event(end, id, cat, Kind::End, args);
}

/// Record a zero-duration instant event (e.g. a send).
#[inline]
pub fn instant(cat: Cat, name: &str, args: [f64; 3]) {
    if !enabled() {
        return;
    }
    let id = intern(name);
    push_event(now_ns(), id, cat, Kind::Instant, args);
}

/// Record a counter sample.
#[inline]
pub fn counter(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let id = intern(name);
    push_event(now_ns(), id, Cat::Other, Kind::Counter, [value, 0.0, 0.0]);
}

// ---------------------------------------------------------------------------
// Harvest
// ---------------------------------------------------------------------------

/// One thread's harvested events.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTrace {
    /// Rank attribution (0 unless [`set_rank`] was called on the thread).
    pub pid: usize,
    /// Process-unique recording-thread id.
    pub tid: usize,
    pub label: String,
    /// Events lost to buffer saturation.
    pub dropped: usize,
    /// Events in emission order (timestamps non-decreasing per thread for
    /// the emission patterns in this workspace).
    pub events: Vec<Event>,
}

/// A harvested trace: per-thread event streams plus the interned name
/// table they index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    pub names: Vec<String>,
    pub threads: Vec<ThreadTrace>,
}

impl Trace {
    /// Resolve an interned name id.
    pub fn name(&self, id: u32) -> &str {
        self.names.get(id as usize).map_or("?", |s| s.as_str())
    }

    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    pub fn total_dropped(&self) -> usize {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.total_events() == 0
    }
}

/// Snapshot and reset every thread buffer. Threads that recorded nothing
/// are omitted. Call at quiescence (see module docs); typically right after
/// [`set_enabled`]`(false)`.
pub fn take() -> Trace {
    let bufs: Vec<Arc<RingBuf>> = REGISTRY.lock().unwrap().clone();
    let mut threads: Vec<ThreadTrace> = bufs
        .iter()
        .map(|b| {
            let (events, dropped) = b.drain();
            ThreadTrace {
                pid: b.pid.load(Ordering::SeqCst),
                tid: b.tid,
                label: b.label.lock().unwrap().clone(),
                dropped,
                events,
            }
        })
        .filter(|t| !t.events.is_empty() || t.dropped > 0)
        .collect();
    threads.sort_by_key(|t| (t.pid, t.tid));
    let names = INTERNER.lock().unwrap().names.clone();
    Trace { names, threads }
}

/// Discard all buffered events without building a [`Trace`].
pub fn clear() {
    for b in REGISTRY.lock().unwrap().iter() {
        let _ = b.drain();
    }
}

/// Convenience harness: clear, enable, run `f`, disable, harvest.
/// Panics on nested use (tracing already enabled).
pub fn with_tracing<R>(f: impl FnOnce() -> R) -> (R, Trace) {
    assert!(!enabled(), "nested with_tracing sessions are not supported");
    clear();
    set_enabled(true);
    let result = f();
    set_enabled(false);
    (result, take())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global, so exercise it from one test body
    // (Rust runs tests concurrently by default).
    #[test]
    fn record_harvest_roundtrip() {
        assert!(!enabled());
        // Disabled: emission is free and records nothing.
        {
            let mut g = span(Cat::Loop, "noop");
            g.set_args(1.0, 2.0, 3.0);
        }
        instant(Cat::Mpi, "noop", [0.0; 3]);
        counter("noop", 1.0);

        let ((), trace) = with_tracing(|| {
            set_rank(3);
            set_thread_label("tester");
            let mut g = span(Cat::Loop, "alpha");
            g.set_args(100.0, 50.0, 10.0);
            drop(g);
            span_retro(
                Cat::Mpi,
                "wait",
                std::time::Duration::from_micros(5),
                [1.0, 64.0, 7.0],
            );
            instant(Cat::Mpi, "send", [1.0, 64.0, 7.0]);
            counter("queue", 2.0);
            let t = std::thread::spawn(|| {
                set_thread_label("helper");
                let _g = span(Cat::App, "beta");
            });
            t.join().unwrap();
        });

        assert!(!enabled());
        assert_eq!(trace.total_dropped(), 0);
        let me = trace
            .threads
            .iter()
            .find(|t| t.label == "tester")
            .expect("main test thread recorded");
        assert_eq!(me.pid, 3);
        // alpha Begin/End + wait Begin/End + send + counter = 6 events.
        assert_eq!(me.events.len(), 6);
        assert_eq!(trace.name(me.events[0].name), "alpha");
        assert_eq!(me.events[0].kind, Kind::Begin);
        assert_eq!(me.events[1].kind, Kind::End);
        assert_eq!(me.events[1].args, [100.0, 50.0, 10.0]);
        // Retro span duration is exactly what was passed.
        assert_eq!(me.events[3].ts_ns - me.events[2].ts_ns, 5_000);
        // Timestamps are non-decreasing per thread.
        assert!(me.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));

        let helper = trace
            .threads
            .iter()
            .find(|t| t.label == "helper")
            .expect("spawned thread registered its own buffer");
        assert_eq!(helper.events.len(), 2);
        assert_eq!(trace.name(helper.events[0].name), "beta");

        // Buffers were reset by take().
        assert!(take().is_empty());

        // A second session reuses this thread's buffer.
        let ((), t2) = with_tracing(|| {
            let _g = span(Cat::Loop, "gamma");
        });
        assert_eq!(t2.total_events(), 2);
        assert_eq!(t2.name(t2.threads[0].events[0].name), "gamma");

        // Saturation: a fresh thread picks up a small capacity, overflows,
        // and reports the drops. (Same test body — the toggle, registry,
        // and capacity are process-global state.)
        set_capacity(16);
        set_enabled(true);
        std::thread::spawn(|| {
            for i in 0..40 {
                instant(Cat::Other, "tick", [i as f64, 0.0, 0.0]);
            }
        })
        .join()
        .unwrap();
        set_enabled(false);
        set_capacity(DEFAULT_CAPACITY);
        let trace = take();
        let mine: Vec<_> = trace.threads.iter().filter(|t| t.dropped > 0).collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].events.len(), 16);
        assert_eq!(mine[0].dropped, 24);
    }
}
