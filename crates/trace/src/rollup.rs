//! Metric rollups: collapse a span forest into per-(category, name)
//! totals, with achieved-bandwidth and roofline attribution for loop spans.

use crate::record::{Cat, Trace};
use crate::tree::{build_forest, ThreadTree};
use bwb_machine::Roofline;
use std::collections::BTreeMap;

/// Aggregated statistics for one `(category, name)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupRow {
    pub cat: Cat,
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    /// Total minus time attributed to child spans.
    pub self_ns: u64,
    /// Summed `args[0]`-as-bytes for Loop spans (0 for other categories).
    pub bytes: f64,
    /// Summed `args[1]`-as-flops for Loop spans.
    pub flops: f64,
}

impl RollupRow {
    /// Achieved effective bandwidth over the span's total time, GB/s.
    pub fn effective_gbs(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.bytes / (self.total_ns as f64 * 1e-9) / 1e9
    }

    /// Achieved bandwidth as a percentage of the roofline's memory peak —
    /// the per-loop Figure 8 quantity.
    pub fn bw_pct_of_roofline(&self, roofline: &Roofline) -> f64 {
        if roofline.peak_gbs <= 0.0 {
            return 0.0;
        }
        self.effective_gbs() / roofline.peak_gbs * 100.0
    }
}

/// Rollup over a whole trace, rows sorted by descending total time (name
/// as the deterministic tiebreak).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Rollup {
    pub rows: Vec<RollupRow>,
}

impl Rollup {
    /// Aggregate a built forest. (Use [`Rollup::from_trace`] unless the
    /// forest is already at hand.)
    pub fn from_forest(trace: &Trace, forest: &[ThreadTree]) -> Self {
        let mut acc: BTreeMap<(Cat, String), RollupRow> = BTreeMap::new();
        for tree in forest {
            tree.walk(&mut |s, _| {
                let key = (s.cat, trace.name(s.name).to_owned());
                let row = acc.entry(key.clone()).or_insert_with(|| RollupRow {
                    cat: key.0,
                    name: key.1,
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                    bytes: 0.0,
                    flops: 0.0,
                });
                row.count += 1;
                row.total_ns += s.dur_ns();
                row.self_ns += s.self_ns();
                if s.cat == Cat::Loop {
                    row.bytes += s.args[0];
                    row.flops += s.args[1];
                }
            });
        }
        let mut rows: Vec<RollupRow> = acc.into_values().collect();
        rows.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then_with(|| a.name.cmp(&b.name))
        });
        Rollup { rows }
    }

    /// Aggregate a trace (errors from malformed streams become an empty
    /// rollup; run [`crate::tree::validate`] first for diagnostics).
    pub fn from_trace(trace: &Trace) -> Self {
        match build_forest(trace) {
            Ok(forest) => Self::from_forest(trace, &forest),
            Err(_) => Rollup::default(),
        }
    }

    /// Render as an aligned table (via `bwb-report`); with a roofline, loop
    /// rows carry their percentage of the memory peak.
    pub fn render_table(&self, roofline: Option<&Roofline>) -> String {
        let mut t = bwb_report::Table::new(&[
            "category", "span", "count", "total ms", "self ms", "GB/s", "% roof",
        ]);
        for r in &self.rows {
            let (gbs, pct) = if r.cat == Cat::Loop && r.total_ns > 0 {
                (
                    format!("{:.1}", r.effective_gbs()),
                    roofline
                        .map(|rf| format!("{:.1}", r.bw_pct_of_roofline(rf)))
                        .unwrap_or_else(|| "-".into()),
                )
            } else {
                ("-".into(), "-".into())
            };
            t.row(&[
                r.cat.label().to_owned(),
                r.name.clone(),
                r.count.to_string(),
                format!("{:.3}", r.total_ns as f64 / 1e6),
                format!("{:.3}", r.self_ns as f64 / 1e6),
                gbs,
                pct,
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Event, Kind, ThreadTrace};

    fn loop_span(out: &mut Vec<Event>, name: u32, t0: u64, t1: u64, bytes: f64) {
        out.push(Event {
            ts_ns: t0,
            name,
            cat: Cat::Loop,
            kind: Kind::Begin,
            args: [0.0; 3],
        });
        out.push(Event {
            ts_ns: t1,
            name,
            cat: Cat::Loop,
            kind: Kind::End,
            args: [bytes, 10.0, 1.0],
        });
    }

    fn demo_trace() -> Trace {
        let mut events = Vec::new();
        loop_span(&mut events, 0, 0, 1_000, 2_000.0);
        loop_span(&mut events, 0, 1_000, 2_000, 2_000.0);
        loop_span(&mut events, 1, 2_000, 2_500, 100.0);
        Trace {
            names: vec!["hot".into(), "cold".into()],
            threads: vec![ThreadTrace {
                pid: 0,
                tid: 0,
                label: "t0".into(),
                dropped: 0,
                events,
            }],
        }
    }

    #[test]
    fn aggregates_and_sorts_by_total_time() {
        let r = Rollup::from_trace(&demo_trace());
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].name, "hot");
        assert_eq!(r.rows[0].count, 2);
        assert_eq!(r.rows[0].total_ns, 2_000);
        assert_eq!(r.rows[0].bytes, 4_000.0);
        // 4000 bytes over 2 µs = 2 GB/s.
        assert!((r.rows[0].effective_gbs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn roofline_percentage_and_table() {
        let r = Rollup::from_trace(&demo_trace());
        let roof = Roofline {
            peak_gflops: 100.0,
            peak_gbs: 4.0,
        };
        assert!((r.rows[0].bw_pct_of_roofline(&roof) - 50.0).abs() < 1e-9);
        let table = r.render_table(Some(&roof));
        assert!(table.contains("hot"));
        assert!(table.contains("50.0"));
    }
}
