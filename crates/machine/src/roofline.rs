//! Roofline model: classify a kernel as bandwidth- or compute-bound on a
//! platform and predict its attainable performance.
//!
//! The paper's thesis is that the Xeon MAX's HBM *shifts the roofline ridge
//! point* from ~36 flop/byte (Ice Lake) down to ~9.4 flop/byte, so kernels
//! that were bandwidth-bound become compute- or latency-bound. This module
//! makes that statement executable.

use crate::platform::Platform;
use serde::{Deserialize, Serialize};

/// The binding resource for a kernel on a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RooflineRegime {
    /// Attainment limited by memory bandwidth.
    BandwidthBound,
    /// Attainment limited by peak arithmetic.
    ComputeBound,
}

/// One kernel placed on the roofline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Arithmetic intensity in FLOP per byte of main-memory traffic.
    pub intensity_flop_per_byte: f64,
    /// Attainable GFLOP/s.
    pub attainable_gflops: f64,
    /// Attainable bandwidth GB/s (= attainable_gflops / intensity when
    /// bandwidth-bound; capped by the bandwidth ceiling otherwise).
    pub attainable_gbs: f64,
    pub regime: RooflineRegime,
}

/// Roofline for one platform and precision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak arithmetic, GFLOP/s.
    pub peak_gflops: f64,
    /// Streaming bandwidth ceiling, GB/s (measured Triad, not theoretical).
    pub peak_gbs: f64,
}

impl Roofline {
    /// Build an FP32 roofline at base clock using measured Triad bandwidth.
    pub fn fp32(p: &Platform) -> Self {
        Roofline {
            peak_gflops: p.peak_fp32_base_gflops(),
            peak_gbs: p.measured_triad_gbs,
        }
    }

    /// Build an FP64 roofline at base clock using measured Triad bandwidth.
    pub fn fp64(p: &Platform) -> Self {
        Roofline {
            peak_gflops: p.peak_fp64_gflops(p.base_ghz),
            peak_gbs: p.measured_triad_gbs,
        }
    }

    /// Ridge point: the arithmetic intensity where the two ceilings meet.
    pub fn ridge_flop_per_byte(&self) -> f64 {
        self.peak_gflops / self.peak_gbs
    }

    /// Place a kernel with the given arithmetic intensity on the roofline.
    pub fn evaluate(&self, intensity_flop_per_byte: f64) -> RooflinePoint {
        assert!(
            intensity_flop_per_byte.is_finite() && intensity_flop_per_byte >= 0.0,
            "arithmetic intensity must be a finite non-negative number"
        );
        let bw_limited = self.peak_gbs * intensity_flop_per_byte;
        if bw_limited < self.peak_gflops {
            RooflinePoint {
                intensity_flop_per_byte,
                attainable_gflops: bw_limited,
                attainable_gbs: self.peak_gbs,
                regime: RooflineRegime::BandwidthBound,
            }
        } else {
            RooflinePoint {
                intensity_flop_per_byte,
                attainable_gflops: self.peak_gflops,
                attainable_gbs: if intensity_flop_per_byte > 0.0 {
                    self.peak_gflops / intensity_flop_per_byte
                } else {
                    self.peak_gbs
                },
                regime: RooflineRegime::ComputeBound,
            }
        }
    }

    /// Predicted runtime (seconds) for a kernel moving `bytes` and doing
    /// `flops` operations: the max of the two resource times.
    pub fn time_seconds(&self, bytes: f64, flops: f64) -> f64 {
        let t_bw = bytes / (self.peak_gbs * 1e9);
        let t_fl = flops / (self.peak_gflops * 1e9);
        t_bw.max(t_fl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;

    #[test]
    fn ridge_point_shifts_down_on_hbm() {
        let max = Roofline::fp32(&platforms::xeon_max_9480());
        let icx = Roofline::fp32(&platforms::xeon_8360y());
        assert!((max.ridge_flop_per_byte() - 9.4).abs() < 0.5);
        assert!((icx.ridge_flop_per_byte() - 36.0).abs() < 2.0);
    }

    #[test]
    fn low_intensity_is_bandwidth_bound_everywhere() {
        for p in platforms::all_platforms() {
            let r = Roofline::fp64(&p);
            // Triad: 2 flops per 24 bytes ≈ 0.083 flop/byte.
            let pt = r.evaluate(2.0 / 24.0);
            assert_eq!(pt.regime, RooflineRegime::BandwidthBound, "{}", p.name);
            assert_eq!(pt.attainable_gbs, p.measured_triad_gbs);
        }
    }

    #[test]
    fn kernel_bandwidth_bound_on_icelake_compute_bound_on_max() {
        // A kernel at 15 flop/byte — above MAX's ridge (9.4), below
        // Ice Lake's (36): the paper's "applications may become
        // compute-bound on Xeon MAX" scenario.
        let max = Roofline::fp32(&platforms::xeon_max_9480());
        let icx = Roofline::fp32(&platforms::xeon_8360y());
        assert_eq!(max.evaluate(15.0).regime, RooflineRegime::ComputeBound);
        assert_eq!(icx.evaluate(15.0).regime, RooflineRegime::BandwidthBound);
    }

    #[test]
    fn attainable_flops_continuous_at_ridge() {
        let r = Roofline {
            peak_gflops: 1000.0,
            peak_gbs: 100.0,
        };
        let ridge = r.ridge_flop_per_byte();
        let below = r.evaluate(ridge * 0.999).attainable_gflops;
        let above = r.evaluate(ridge * 1.001).attainable_gflops;
        assert!((below - above).abs() / above < 0.01);
    }

    #[test]
    fn time_is_max_of_resources() {
        let r = Roofline {
            peak_gflops: 1000.0,
            peak_gbs: 100.0,
        };
        // 1 GB at 100 GB/s = 10 ms; 1 GFLOP at 1000 GF/s = 1 ms → 10 ms.
        let t = r.time_seconds(1e9, 1e9);
        assert!((t - 0.01).abs() < 1e-12);
        // 100 GFLOP dominates: 100 ms.
        let t2 = r.time_seconds(1e9, 100e9);
        assert!((t2 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_intensity_is_pure_streaming() {
        let r = Roofline {
            peak_gflops: 1000.0,
            peak_gbs: 100.0,
        };
        let pt = r.evaluate(0.0);
        assert_eq!(pt.regime, RooflineRegime::BandwidthBound);
        assert_eq!(pt.attainable_gflops, 0.0);
        assert_eq!(pt.attainable_gbs, 100.0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_intensity_panics() {
        Roofline {
            peak_gflops: 1.0,
            peak_gbs: 1.0,
        }
        .evaluate(-1.0);
    }
}
