//! Memory system description: cache levels and main memory.
//!
//! The paper's central quantity is the ratio between cache bandwidth and
//! main-memory bandwidth (3.8× on Xeon MAX 9480, ~6.3× on Xeon 8360Y, ~14×
//! on EPYC 7V73X — §2 and Figure 9). We therefore describe the memory system
//! as an ordered list of [`CacheLevel`]s plus one [`MainMemory`], each with a
//! capacity, a sustained streaming bandwidth, and a load-to-use latency.

use serde::{Deserialize, Serialize};

/// The physical technology backing a platform's main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// On-package High Bandwidth Memory (Xeon MAX 9480 in HBM-only mode,
    /// A100's HBM2e).
    Hbm2e,
    /// Conventional DDR4 DIMMs (Xeon 8360Y, EPYC 7V73X).
    Ddr4,
    /// DDR5 (not used by the paper's systems; provided for extensions).
    Ddr5,
}

impl MemoryKind {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MemoryKind::Hbm2e => "HBM2e",
            MemoryKind::Ddr4 => "DDR4",
            MemoryKind::Ddr5 => "DDR5",
        }
    }

    /// Whether the memory is stacked on-package (true for HBM). On-package
    /// memory has dramatically higher bandwidth but, on Sapphire Rapids HBM,
    /// *not* lower latency — one of the paper's key observations.
    pub fn on_package(self) -> bool {
        matches!(self, MemoryKind::Hbm2e)
    }
}

/// Whether a cache level is private to a core or shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheScope {
    /// Private to one physical core (L1/L2 on all three CPUs).
    PerCore,
    /// Shared by all cores of one socket (L3 on Xeon; per-CCX on EPYC is
    /// modelled as socket-shared with the aggregate capacity).
    PerSocket,
    /// Shared by a NUMA domain (SNC4 slices of L3 on Xeon MAX).
    PerNuma,
}

/// One level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// 1 for L1d, 2 for L2, 3 for L3.
    pub level: u8,
    /// Capacity in bytes *per scope unit* (per core for `PerCore`, per
    /// socket for `PerSocket`).
    pub capacity_bytes: u64,
    /// Scope of sharing.
    pub scope: CacheScope,
    /// Sustained aggregate streaming bandwidth of this level across the whole
    /// machine, in GB/s (as a STREAM-like kernel would observe when resident).
    pub stream_bw_gbs: f64,
    /// Load-to-use latency in nanoseconds.
    pub latency_ns: f64,
    /// Associativity (ways); informational, used by the cache simulator.
    pub associativity: u32,
    /// Cache line size in bytes (64 on all modelled platforms).
    pub line_bytes: u32,
}

impl CacheLevel {
    /// Total capacity across the machine given the topology counts.
    pub fn total_capacity_bytes(&self, cores: u64, sockets: u64, numa_domains: u64) -> u64 {
        match self.scope {
            CacheScope::PerCore => self.capacity_bytes * cores,
            CacheScope::PerSocket => self.capacity_bytes * sockets,
            CacheScope::PerNuma => self.capacity_bytes * numa_domains,
        }
    }
}

/// Main memory description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MainMemory {
    pub kind: MemoryKind,
    /// Total capacity in GiB across the machine.
    pub capacity_gib: u64,
    /// Theoretical peak bandwidth, GB/s, whole machine (paper §2: 2×204.8
    /// GB/s for the DDR4 systems, ≈2×1300 GB/s for Xeon MAX).
    pub peak_bw_gbs: f64,
    /// Idle load-to-use latency in nanoseconds.
    pub latency_ns: f64,
}

impl MainMemory {
    /// Bytes of capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_gib * 1024 * 1024 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_kind_names() {
        assert_eq!(MemoryKind::Hbm2e.name(), "HBM2e");
        assert_eq!(MemoryKind::Ddr4.name(), "DDR4");
        assert_eq!(MemoryKind::Ddr5.name(), "DDR5");
    }

    #[test]
    fn hbm_is_on_package() {
        assert!(MemoryKind::Hbm2e.on_package());
        assert!(!MemoryKind::Ddr4.on_package());
        assert!(!MemoryKind::Ddr5.on_package());
    }

    #[test]
    fn cache_total_capacity_per_core() {
        let l2 = CacheLevel {
            level: 2,
            capacity_bytes: 2 << 20,
            scope: CacheScope::PerCore,
            stream_bw_gbs: 10_000.0,
            latency_ns: 14.0,
            associativity: 16,
            line_bytes: 64,
        };
        assert_eq!(l2.total_capacity_bytes(112, 2, 8), 112 * (2 << 20));
    }

    #[test]
    fn cache_total_capacity_per_socket() {
        let l3 = CacheLevel {
            level: 3,
            capacity_bytes: 768 << 20,
            scope: CacheScope::PerSocket,
            stream_bw_gbs: 4_000.0,
            latency_ns: 50.0,
            associativity: 16,
            line_bytes: 64,
        };
        assert_eq!(l3.total_capacity_bytes(120, 2, 4), 2 * (768 << 20));
    }

    #[test]
    fn cache_total_capacity_per_numa() {
        let l3 = CacheLevel {
            level: 3,
            capacity_bytes: 14 << 20,
            scope: CacheScope::PerNuma,
            stream_bw_gbs: 5_000.0,
            latency_ns: 33.0,
            associativity: 15,
            line_bytes: 64,
        };
        assert_eq!(l3.total_capacity_bytes(112, 2, 8), 8 * (14 << 20));
    }

    #[test]
    fn main_memory_capacity_bytes() {
        let m = MainMemory {
            kind: MemoryKind::Hbm2e,
            capacity_gib: 128,
            peak_bw_gbs: 2600.0,
            latency_ns: 130.0,
        };
        assert_eq!(m.capacity_bytes(), 128 * 1024 * 1024 * 1024);
    }
}
