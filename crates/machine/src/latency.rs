//! Core-to-core communication latency (paper Figure 2).
//!
//! The paper measures message-passing latency with the
//! `core-to-core-latency` tool's "one writer / one reader on many cache
//! lines" test between (1) sibling hyperthreads, (2) adjacent cores, and
//! (3) cores on different sockets; for the SMT-disabled EPYC 7V73X it
//! instead reports adjacent-core, cross-NUMA-same-socket (different
//! chiplet), and cross-socket latencies.
//!
//! [`LatencyProfile`] stores those four distances; [`CommDistance`]
//! classifies a pair of cores given the topology.

use serde::{Deserialize, Serialize};

/// Topological distance classes between two hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CommDistance {
    /// Same physical core, sibling SMT threads.
    Hyperthread,
    /// Different cores within the same NUMA domain.
    SameNuma,
    /// Different NUMA domains on the same socket (SNC slice or chiplet).
    CrossNuma,
    /// Different sockets.
    CrossSocket,
}

impl CommDistance {
    /// All distances, nearest first.
    pub const ALL: [CommDistance; 4] = [
        CommDistance::Hyperthread,
        CommDistance::SameNuma,
        CommDistance::CrossNuma,
        CommDistance::CrossSocket,
    ];

    /// Label used in Figure 2 style reports.
    pub fn label(self) -> &'static str {
        match self {
            CommDistance::Hyperthread => "hyperthread",
            CommDistance::SameNuma => "adjacent core",
            CommDistance::CrossNuma => "cross-NUMA (same socket)",
            CommDistance::CrossSocket => "cross-socket",
        }
    }
}

/// One-way cache-line message-passing latency per [`CommDistance`], in
/// nanoseconds. The numbers for the concrete platforms live in
/// [`crate::platforms`] and reproduce the magnitudes of Figure 2: no
/// significant improvement on Xeon MAX over Ice Lake (slight regression in
/// places), and a 1.6× worse cross-socket latency on the virtualized EPYC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Sibling-hyperthread latency; `None` when SMT is off (EPYC 7V73X).
    pub hyperthread_ns: Option<f64>,
    pub same_numa_ns: f64,
    pub cross_numa_ns: f64,
    pub cross_socket_ns: f64,
}

impl LatencyProfile {
    /// Latency for a distance class. For [`CommDistance::Hyperthread`] on an
    /// SMT-off machine this falls back to the adjacent-core latency (the
    /// closest measurable pairing, as the paper does for the EPYC).
    pub fn latency_ns(&self, d: CommDistance) -> f64 {
        match d {
            CommDistance::Hyperthread => self.hyperthread_ns.unwrap_or(self.same_numa_ns),
            CommDistance::SameNuma => self.same_numa_ns,
            CommDistance::CrossNuma => self.cross_numa_ns,
            CommDistance::CrossSocket => self.cross_socket_ns,
        }
    }

    /// Latencies must not decrease with distance; returns true when the
    /// profile is physically sensible.
    pub fn is_monotone(&self) -> bool {
        let ht = self.hyperthread_ns.unwrap_or(0.0);
        ht <= self.same_numa_ns
            && self.same_numa_ns <= self.cross_numa_ns
            && self.cross_numa_ns <= self.cross_socket_ns
    }

    /// An effective software message latency (one-way, small message) for a
    /// message-passing runtime whose transport is shared memory: the
    /// cache-line ping latency plus a fixed software envelope cost.
    ///
    /// `sw_overhead_ns` models the MPI stack (matching, queues). The paper's
    /// MPI_Wait analysis (Figure 7) is dominated by these latencies once the
    /// bandwidth bottleneck is removed.
    pub fn mpi_latency_ns(&self, d: CommDistance, sw_overhead_ns: f64) -> f64 {
        // A rendezvous exchange costs roughly two line transfers each way.
        2.0 * self.latency_ns(d) + sw_overhead_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> LatencyProfile {
        LatencyProfile {
            hyperthread_ns: Some(8.0),
            same_numa_ns: 50.0,
            cross_numa_ns: 70.0,
            cross_socket_ns: 120.0,
        }
    }

    #[test]
    fn distance_ordering_nearest_first() {
        let l = profile();
        let lats: Vec<f64> = CommDistance::ALL.iter().map(|&d| l.latency_ns(d)).collect();
        for w in lats.windows(2) {
            assert!(
                w[0] <= w[1],
                "latency must be monotone in distance: {lats:?}"
            );
        }
    }

    #[test]
    fn monotone_check_accepts_sane_profile() {
        assert!(profile().is_monotone());
    }

    #[test]
    fn monotone_check_rejects_inverted_profile() {
        let mut l = profile();
        l.cross_socket_ns = 1.0;
        assert!(!l.is_monotone());
    }

    #[test]
    fn smt_off_falls_back_to_adjacent() {
        let mut l = profile();
        l.hyperthread_ns = None;
        assert_eq!(l.latency_ns(CommDistance::Hyperthread), l.same_numa_ns);
        assert!(l.is_monotone());
    }

    #[test]
    fn mpi_latency_adds_software_overhead() {
        let l = profile();
        let raw = l.latency_ns(CommDistance::CrossSocket);
        let mpi = l.mpi_latency_ns(CommDistance::CrossSocket, 200.0);
        assert!(mpi > raw);
        assert_eq!(mpi, 2.0 * raw + 200.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            CommDistance::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
