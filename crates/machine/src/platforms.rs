//! Concrete descriptors for the four platforms of the paper (§2).
//!
//! Every number here is either taken directly from the paper's §2 / Figure 1
//! / Figure 2, from the public spec sheets of the parts, or (for the two
//! calibration parameters `mlp_per_core` and `kernel_launch_overhead_us`)
//! chosen so that the first-principles models bracket the paper's measured
//! values. The tests at the bottom assert the paper's §2 claims hold for
//! these descriptors — peak FLOPS, bandwidth ratios, flop/byte balance and
//! the cache:memory bandwidth ratios that drive Figure 9.

use crate::latency::LatencyProfile;
use crate::memory::{CacheLevel, CacheScope, MainMemory, MemoryKind};
use crate::platform::{Platform, PlatformKind};
use crate::topology::CpuTopology;

/// Intel Xeon CPU MAX 9480 (Sapphire Rapids + HBM), HBM-only mode, SNC4.
///
/// 2 sockets × 56 cores, HT on, 2×4 NUMA domains, 2×64 GB HBM2e.
/// Clocks 1.9 GHz base – 2.6 GHz all-core turbo. Peak FP32 13.6 TFLOP/s at
/// base. Theoretical bandwidth ≈ 2×1300 GB/s; measured BabelStream Triad
/// 1446 GB/s (application flags) / 1643 GB/s (streaming-store flags).
pub fn xeon_max_9480() -> Platform {
    Platform {
        kind: PlatformKind::XeonMax9480,
        name: "Intel Xeon CPU MAX 9480 (HBM-only, SNC4)".into(),
        topology: CpuTopology {
            sockets: 2,
            numa_per_socket: 4,
            cores_per_numa: 14,
            smt_per_core: 2,
        },
        base_ghz: 1.9,
        turbo_allcore_ghz: 2.6,
        vector_bits: 512,
        fma_units: 2,
        caches: vec![
            CacheLevel {
                level: 1,
                capacity_bytes: 48 << 10,
                scope: CacheScope::PerCore,
                stream_bw_gbs: 40_000.0,
                latency_ns: 1.0,
                associativity: 12,
                line_bytes: 64,
            },
            CacheLevel {
                level: 2,
                capacity_bytes: 2 << 20,
                scope: CacheScope::PerCore,
                stream_bw_gbs: 12_000.0,
                latency_ns: 5.5,
                associativity: 16,
                line_bytes: 64,
            },
            // 112.5 MB L3 total, sliced per SNC4 domain: ~14 MB per domain.
            CacheLevel {
                level: 3,
                capacity_bytes: 14 << 20,
                scope: CacheScope::PerNuma,
                stream_bw_gbs: 5495.0,
                latency_ns: 33.0,
                associativity: 15,
                line_bytes: 64,
            },
        ],
        memory: MainMemory {
            kind: MemoryKind::Hbm2e,
            capacity_gib: 128,
            peak_bw_gbs: 2600.0, // ≈ 2 × 1300 GB/s (paper §2, citing [12])
            latency_ns: 130.0,   // HBM on SPR is *not* lower-latency than DDR
        },
        measured_triad_gbs: 1446.0,
        measured_triad_ss_gbs: Some(1643.0),
        latency: LatencyProfile {
            hyperthread_ns: Some(9.0),
            same_numa_ns: 52.0,
            cross_numa_ns: 72.0,
            cross_socket_ns: 125.0,
        },
        // Calibration: 112 cores × 27 lines × 64 B / 130 ns ≈ 1489 GB/s — the
        // concurrency bound lands between the two measured Triad figures,
        // reproducing the "only 55–63% of peak" observation mechanistically.
        mlp_per_core: 27.0,
        kernel_launch_overhead_us: 14.0,
        is_gpu: false,
    }
}

/// Intel Xeon Platinum 8360Y ("Ice Lake"), Baskerville configuration.
///
/// 2 sockets × 36 cores, HT on, 512 GB DDR4. Clocks 2.4–2.8 GHz.
/// Peak FP32 11 TFLOP/s at base; Triad 296 GB/s (~72% of 2×204.8 GB/s).
pub fn xeon_8360y() -> Platform {
    Platform {
        kind: PlatformKind::Xeon8360Y,
        name: "Intel Xeon Platinum 8360Y (Ice Lake)".into(),
        topology: CpuTopology {
            sockets: 2,
            numa_per_socket: 1,
            cores_per_numa: 36,
            smt_per_core: 2,
        },
        base_ghz: 2.4,
        turbo_allcore_ghz: 2.8,
        vector_bits: 512,
        fma_units: 2,
        caches: vec![
            CacheLevel {
                level: 1,
                capacity_bytes: 48 << 10,
                scope: CacheScope::PerCore,
                stream_bw_gbs: 30_000.0,
                latency_ns: 1.0,
                associativity: 12,
                line_bytes: 64,
            },
            CacheLevel {
                level: 2,
                capacity_bytes: 1280 << 10,
                scope: CacheScope::PerCore,
                stream_bw_gbs: 9_000.0,
                latency_ns: 5.0,
                associativity: 20,
                line_bytes: 64,
            },
            CacheLevel {
                level: 3,
                capacity_bytes: 54 << 20,
                scope: CacheScope::PerSocket,
                stream_bw_gbs: 1865.0,
                latency_ns: 30.0,
                associativity: 12,
                line_bytes: 64,
            },
        ],
        memory: MainMemory {
            kind: MemoryKind::Ddr4,
            capacity_gib: 512,
            peak_bw_gbs: 409.6, // 2 × 204.8 GB/s
            latency_ns: 85.0,
        },
        measured_triad_gbs: 296.0,
        measured_triad_ss_gbs: None,
        latency: LatencyProfile {
            hyperthread_ns: Some(8.0),
            same_numa_ns: 48.0,
            cross_numa_ns: 48.0, // single NUMA domain per socket
            cross_socket_ns: 118.0,
        },
        // 72 cores × 10 × 64 B / 85 ns ≈ 542 GB/s ≫ 296 → controller-limited,
        // which is why DDR systems reach ~75% of pin bandwidth.
        mlp_per_core: 10.0,
        kernel_launch_overhead_us: 14.0,
        is_gpu: false,
    }
}

/// AMD EPYC 7V73X ("Milan-X" with 3D V-Cache), Azure HB120rs_v3.
///
/// 2 sockets × 60 visible cores, SMT off, 448 GB DDR4, 2×2 NUMA.
/// Clocks 2.2–3.5 GHz, AVX2 (256-bit). Peak FP32 8.45 TFLOP/s at base;
/// Triad 310 GB/s. Enormous 3D V-Cache: 768 MB L3 per socket.
pub fn epyc_7v73x() -> Platform {
    Platform {
        kind: PlatformKind::Epyc7V73X,
        name: "AMD EPYC 7V73X (Milan-X, 3D V-Cache)".into(),
        topology: CpuTopology {
            sockets: 2,
            numa_per_socket: 2,
            cores_per_numa: 30,
            smt_per_core: 1,
        },
        base_ghz: 2.2,
        turbo_allcore_ghz: 3.5,
        vector_bits: 256,
        fma_units: 2,
        caches: vec![
            CacheLevel {
                level: 1,
                capacity_bytes: 32 << 10,
                scope: CacheScope::PerCore,
                stream_bw_gbs: 25_000.0,
                latency_ns: 0.9,
                associativity: 8,
                line_bytes: 64,
            },
            CacheLevel {
                level: 2,
                capacity_bytes: 512 << 10,
                scope: CacheScope::PerCore,
                stream_bw_gbs: 8_000.0,
                latency_ns: 3.5,
                associativity: 8,
                line_bytes: 64,
            },
            // 3D V-Cache: 96 MB per CCD × 8 CCD = 768 MB per socket.
            CacheLevel {
                level: 3,
                capacity_bytes: 768 << 20,
                scope: CacheScope::PerSocket,
                stream_bw_gbs: 4340.0,
                latency_ns: 48.0,
                associativity: 16,
                line_bytes: 64,
            },
        ],
        memory: MainMemory {
            kind: MemoryKind::Ddr4,
            capacity_gib: 448,
            peak_bw_gbs: 409.6,
            latency_ns: 105.0,
        },
        measured_triad_gbs: 310.0,
        measured_triad_ss_gbs: None,
        latency: LatencyProfile {
            hyperthread_ns: None, // SMT disabled
            same_numa_ns: 45.0,
            cross_numa_ns: 95.0,    // different chiplet, same socket
            cross_socket_ns: 190.0, // 1.6× worse than the Xeons (VM effect)
        },
        mlp_per_core: 12.0,
        kernel_launch_overhead_us: 12.0,
        is_gpu: false,
    }
}

/// NVIDIA A100 40 GB PCIe — the GPU comparison point of Figures 6 and 9.
///
/// Modelled with the same descriptor: 108 "cores" (SMs), 1.41 GHz boost,
/// an effective 1024-bit × 2-pipe SIMT width giving the 19.5 FP32 TFLOP/s
/// peak, and 1555 GB/s HBM2e of which ~1310 GB/s is achievable (paper §6:
/// "10% lower than that measured on the Intel Xeon CPU MAX 9480").
pub fn a100_pcie_40gb() -> Platform {
    Platform {
        kind: PlatformKind::A100Pcie40GB,
        name: "NVIDIA A100 40GB PCIe".into(),
        topology: CpuTopology {
            sockets: 1,
            numa_per_socket: 1,
            cores_per_numa: 108,
            smt_per_core: 1,
        },
        base_ghz: 1.41,
        turbo_allcore_ghz: 1.41,
        vector_bits: 1024,
        fma_units: 2,
        caches: vec![
            CacheLevel {
                level: 1,
                capacity_bytes: 192 << 10,
                scope: CacheScope::PerCore,
                stream_bw_gbs: 100_000.0,
                latency_ns: 8.0,
                associativity: 4,
                line_bytes: 128,
            },
            CacheLevel {
                level: 2,
                capacity_bytes: 40 << 20,
                scope: CacheScope::PerSocket,
                stream_bw_gbs: 4500.0,
                latency_ns: 140.0,
                associativity: 16,
                line_bytes: 128,
            },
        ],
        memory: MainMemory {
            kind: MemoryKind::Hbm2e,
            capacity_gib: 40,
            peak_bw_gbs: 1555.0,
            latency_ns: 400.0,
        },
        measured_triad_gbs: 1310.0,
        measured_triad_ss_gbs: None,
        latency: LatencyProfile {
            hyperthread_ns: Some(25.0),
            same_numa_ns: 120.0,
            cross_numa_ns: 120.0,
            cross_socket_ns: 120.0,
        },
        // Massive SMT: ~2048 threads per SM keep far more lines in flight
        // than any CPU core — the concurrency bound comfortably exceeds the
        // controllers, hence the GPU's superior bandwidth utilization (§6).
        mlp_per_core: 160.0,
        kernel_launch_overhead_us: 7.0,
        is_gpu: true,
    }
}

/// All three CPUs, in the paper's order.
pub fn all_cpus() -> Vec<Platform> {
    vec![xeon_max_9480(), xeon_8360y(), epyc_7v73x()]
}

/// All four platforms including the A100.
pub fn all_platforms() -> Vec<Platform> {
    vec![
        xeon_max_9480(),
        xeon_8360y(),
        epyc_7v73x(),
        a100_pcie_40gb(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_counts_match_paper() {
        assert_eq!(xeon_max_9480().topology.physical_cores(), 112);
        assert_eq!(xeon_8360y().topology.physical_cores(), 72);
        assert_eq!(epyc_7v73x().topology.physical_cores(), 120);
    }

    #[test]
    fn numa_counts_match_paper() {
        assert_eq!(xeon_max_9480().topology.total_numa(), 8); // SNC4 × 2
        assert_eq!(xeon_8360y().topology.total_numa(), 2);
        assert_eq!(epyc_7v73x().topology.total_numa(), 4); // 2×2
    }

    #[test]
    fn peak_fp32_matches_paper_section2() {
        // Paper §2: 13.6 / 11 / 8.45 TFLOP/s at base clocks.
        let max = xeon_max_9480().peak_fp32_base_gflops() / 1000.0;
        let icx = xeon_8360y().peak_fp32_base_gflops() / 1000.0;
        let amd = epyc_7v73x().peak_fp32_base_gflops() / 1000.0;
        assert!((max - 13.6).abs() < 0.2, "MAX peak {max}");
        assert!((icx - 11.0).abs() < 0.2, "ICX peak {icx}");
        assert!((amd - 8.45).abs() < 0.1, "EPYC peak {amd}");
    }

    #[test]
    fn turbo_peak_reaches_18_6_tflops_on_max() {
        let p = xeon_max_9480();
        let tf = p.peak_fp32_gflops(p.turbo_allcore_ghz) / 1000.0;
        assert!((tf - 18.6).abs() < 0.2, "MAX turbo peak {tf}");
    }

    #[test]
    fn a100_peak_is_19_5_tflops() {
        let tf = a100_pcie_40gb().peak_fp32_base_gflops() / 1000.0;
        assert!((tf - 19.5).abs() < 0.3, "A100 peak {tf}");
    }

    #[test]
    fn triad_speedup_over_ddr_systems_matches_figure1() {
        // Paper: 4.8× with application flags, 5.5× with streaming stores.
        let max = xeon_max_9480();
        let icx = xeon_8360y();
        let amd = epyc_7v73x();
        for ddr in [&icx, &amd] {
            let r = max.measured_triad_gbs / ddr.measured_triad_gbs;
            assert!(r > 4.3 && r < 5.2, "default-flag ratio {r}");
            let rss = max.measured_triad_ss_gbs.unwrap() / ddr.measured_triad_gbs;
            assert!(rss > 5.0 && rss < 5.8, "SS-flag ratio {rss}");
        }
    }

    #[test]
    fn bandwidth_efficiency_is_55_to_63_percent_on_max() {
        let p = xeon_max_9480();
        let eff = p.measured_triad_gbs / p.memory.peak_bw_gbs;
        let eff_ss = p.measured_triad_ss_gbs.unwrap() / p.memory.peak_bw_gbs;
        assert!((eff - 0.55).abs() < 0.02, "default eff {eff}");
        assert!((eff_ss - 0.63).abs() < 0.02, "SS eff {eff_ss}");
    }

    #[test]
    fn ddr_systems_reach_about_75_percent_of_peak() {
        for p in [xeon_8360y(), epyc_7v73x()] {
            let eff = p.measured_triad_gbs / p.memory.peak_bw_gbs;
            assert!(eff > 0.70 && eff < 0.80, "{} eff {eff}", p.name);
        }
    }

    #[test]
    fn flop_byte_ratio_shift() {
        // Paper §2: ~9.4 on MAX vs ~36 on 8360Y and ~28 on EPYC (against
        // theoretical peak bandwidth... the paper's quoted 9.4 uses measured
        // Triad; we accept either convention within a band).
        let max = xeon_max_9480();
        let icx = xeon_8360y();
        let amd = epyc_7v73x();
        let r_max = max.peak_fp32_base_gflops() / max.measured_triad_gbs;
        let r_icx = icx.peak_fp32_base_gflops() / icx.measured_triad_gbs;
        let r_amd = amd.peak_fp32_base_gflops() / amd.measured_triad_gbs;
        assert!((r_max - 9.4).abs() < 0.5, "MAX flop/byte {r_max}");
        assert!((r_icx - 36.0).abs() < 2.0, "ICX flop/byte {r_icx}");
        assert!((r_amd - 28.0).abs() < 2.0, "EPYC flop/byte {r_amd}");
    }

    #[test]
    fn cache_to_memory_bw_ratios_match_paper() {
        // Paper §2/§6: 3.8× on MAX, ~6.3× on 8360Y, ~14× on EPYC.
        assert!((xeon_max_9480().cache_to_mem_bw_ratio() - 3.8).abs() < 0.1);
        assert!((xeon_8360y().cache_to_mem_bw_ratio() - 6.3).abs() < 0.2);
        assert!((epyc_7v73x().cache_to_mem_bw_ratio() - 14.0).abs() < 0.3);
    }

    #[test]
    fn latency_profiles_are_monotone() {
        for p in all_platforms() {
            assert!(p.latency.is_monotone(), "{}", p.name);
        }
    }

    #[test]
    fn epyc_cross_socket_latency_is_worst() {
        // Figure 2: EPYC cross-socket ≈1.6× worse than the Xeons.
        let amd = epyc_7v73x().latency.cross_socket_ns;
        let icx = xeon_8360y().latency.cross_socket_ns;
        let r = amd / icx;
        assert!(r > 1.4 && r < 1.8, "cross-socket ratio {r}");
    }

    #[test]
    fn max_latency_no_better_than_icelake() {
        // Figure 2: "no significant improvement (in some cases even slight
        // regression)" on Xeon MAX vs 8360Y.
        let max = xeon_max_9480().latency;
        let icx = xeon_8360y().latency;
        assert!(max.same_numa_ns >= icx.same_numa_ns);
        assert!(max.cross_socket_ns >= icx.cross_socket_ns);
    }

    #[test]
    fn concurrency_bound_binds_on_hbm_but_not_ddr() {
        // The mechanistic explanation of the 55–63% HBM efficiency: on MAX
        // the concurrency bound is near the measured Triad value, while on
        // the DDR parts it is far above (controller-limited instead).
        let max = xeon_max_9480();
        let c = max.concurrency_bw_gbs(112, false);
        assert!(c > 1400.0 && c < 1700.0, "MAX concurrency bound {c}");
        assert!(c < max.memory.peak_bw_gbs * 0.7);

        let icx = xeon_8360y();
        assert!(icx.concurrency_bw_gbs(72, false) > 1.5 * icx.measured_triad_gbs);
        let amd = epyc_7v73x();
        assert!(amd.concurrency_bw_gbs(120, false) > 1.5 * amd.measured_triad_gbs);
    }

    #[test]
    fn a100_achievable_bw_close_to_max_measured() {
        // Paper §6: A100 achievable peak 1310 GB/s, ~10% below MAX's 1446.
        let a = a100_pcie_40gb().measured_triad_gbs;
        let m = xeon_max_9480().measured_triad_gbs;
        assert!((m / a - 1.10).abs() < 0.05);
    }

    #[test]
    fn epyc_llc_dwarfs_the_xeons() {
        let amd = epyc_7v73x().llc_total_bytes();
        let max = xeon_max_9480().llc_total_bytes();
        let icx = xeon_8360y().llc_total_bytes();
        assert!(amd > 10 * max.min(icx));
        assert_eq!(amd, 2 * (768 << 20));
    }

    #[test]
    fn platform_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            all_platforms().iter().map(|p| p.kind.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
