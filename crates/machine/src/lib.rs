//! # bwb-machine — hardware platform models
//!
//! This crate describes the four hardware platforms evaluated in the paper
//! *"Comparative evaluation of bandwidth-bound applications on the Intel Xeon
//! CPU MAX Series"* (Reguly, SC'23):
//!
//! 1. **Intel Xeon CPU MAX 9480** — 2×56 cores, SNC4 (2×4 NUMA), 2×64 GB
//!    HBM2e in HBM-only mode, HT on.
//! 2. **Intel Xeon Platinum 8360Y** ("Ice Lake") — 2×36 cores, DDR4, HT on.
//! 3. **AMD EPYC 7V73X** ("Milan-X") — 2×60 cores, 3D V-Cache, SMT off.
//! 4. **NVIDIA A100 40GB PCIe** — the GPU comparison point of Figure 6/9.
//!
//! A [`Platform`] captures the architectural quantities every experiment in
//! the paper is a function of: core/socket/NUMA topology, SMT width, cache
//! capacities and bandwidths, main-memory kind/bandwidth/latency, clock
//! domains, vector width, and the core-to-core communication-latency profile
//! of Figure 2. The companion crates derive all figure reproductions from
//! these descriptors — no figure output is hard-coded.
//!
//! ## Quick example
//!
//! ```
//! use bwb_machine::platforms;
//!
//! let max = platforms::xeon_max_9480();
//! let icx = platforms::xeon_8360y();
//! // The paper's headline: ~4.8x higher measured STREAM bandwidth.
//! let ratio = max.measured_triad_gbs / icx.measured_triad_gbs;
//! assert!(ratio > 4.0 && ratio < 6.0);
//! // Flop/byte balance shifts from ~36 to ~9.4 (paper §2).
//! assert!(max.flop_byte_ratio() < icx.flop_byte_ratio() / 3.0);
//! ```

pub mod latency;
pub mod memory;
pub mod platform;
pub mod platforms;
pub mod probe;
pub mod roofline;
pub mod topology;

pub use latency::{CommDistance, LatencyProfile};
pub use memory::{CacheLevel, CacheScope, MainMemory, MemoryKind};
pub use platform::{Platform, PlatformKind};
pub use probe::{measure_thread_latency, LatencyProbe};
pub use roofline::{Roofline, RooflinePoint, RooflineRegime};
pub use topology::{CoreId, CpuTopology, PlacementPolicy, RankPlacement, ShardPolicy};
