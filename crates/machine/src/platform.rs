//! The [`Platform`] descriptor — everything the performance model needs to
//! know about one machine.

use crate::latency::LatencyProfile;
use crate::memory::{CacheLevel, MainMemory};
use crate::topology::CpuTopology;
use serde::{Deserialize, Serialize};

/// Which of the paper's platforms this descriptor models (plus `Custom` for
/// user-defined what-if machines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    XeonMax9480,
    Xeon8360Y,
    Epyc7V73X,
    A100Pcie40GB,
    Custom,
}

impl PlatformKind {
    pub fn label(self) -> &'static str {
        match self {
            PlatformKind::XeonMax9480 => "Xeon MAX 9480",
            PlatformKind::Xeon8360Y => "Xeon 8360Y",
            PlatformKind::Epyc7V73X => "EPYC 7V73X",
            PlatformKind::A100Pcie40GB => "A100 40GB PCIe",
            PlatformKind::Custom => "custom",
        }
    }
}

/// Full description of one platform.
///
/// All derived quantities (peak FLOPS, flop/byte ratio, concurrency-limited
/// bandwidth) are computed from first principles in methods so that
/// "what-if" machines behave consistently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    pub kind: PlatformKind,
    pub name: String,
    pub topology: CpuTopology,
    /// Base (all-core sustained, AVX-heavy) clock in GHz.
    pub base_ghz: f64,
    /// All-core turbo clock in GHz.
    pub turbo_allcore_ghz: f64,
    /// Native SIMD width in bits (512 for the Xeons, 256 for the EPYC's
    /// AVX2, 2048 effective for the GPU's warp-SIMT model).
    pub vector_bits: u32,
    /// FMA pipes per core.
    pub fma_units: u32,
    /// Cache hierarchy, ordered L1 → last level.
    pub caches: Vec<CacheLevel>,
    pub memory: MainMemory,
    /// Measured BabelStream Triad bandwidth at large sizes with the default
    /// flag set (paper Figure 1): 1446 GB/s (MAX), 296 (8360Y), 310 (EPYC),
    /// 1310 (A100 achievable).
    pub measured_triad_gbs: f64,
    /// Measured Triad with streaming-store tuned flags, where reported
    /// (1643 GB/s on MAX); `None` elsewhere.
    pub measured_triad_ss_gbs: Option<f64>,
    /// Core-to-core latency profile (Figure 2).
    pub latency: LatencyProfile,
    /// Sustained outstanding cache-line misses per core including hardware
    /// prefetch streams — the Little's-law concurrency that limits per-core
    /// bandwidth. Calibrated so that `concurrency_bw_gbs()` brackets the
    /// measured Triad numbers (see `platforms` module).
    pub mlp_per_core: f64,
    /// Per-kernel launch/scheduling overhead in microseconds for an
    /// offload-style runtime on this platform (SYCL-via-OpenCL on the CPUs,
    /// CUDA on the GPU). Drives the paper's observation that MPI+SYCL loses
    /// on apps with many small boundary kernels (§5.1).
    pub kernel_launch_overhead_us: f64,
    /// True for the GPU.
    pub is_gpu: bool,
}

impl Platform {
    /// Peak FP32 GFLOP/s at the given clock: `cores × GHz × fma × (vec/32) × 2`.
    pub fn peak_fp32_gflops(&self, ghz: f64) -> f64 {
        let lanes = self.vector_bits as f64 / 32.0;
        self.topology.physical_cores() as f64 * ghz * self.fma_units as f64 * lanes * 2.0
    }

    /// Peak FP64 GFLOP/s at the given clock (half the FP32 lanes).
    pub fn peak_fp64_gflops(&self, ghz: f64) -> f64 {
        self.peak_fp32_gflops(ghz) / 2.0
    }

    /// Peak FP32 at base clock — the number quoted in the paper's §2
    /// (13.6 / 11 / 8.45 TFLOP/s).
    pub fn peak_fp32_base_gflops(&self) -> f64 {
        self.peak_fp32_gflops(self.base_ghz)
    }

    /// Theoretical flop/byte balance at base clock against theoretical peak
    /// bandwidth (paper §2: 9.4 on MAX, ~36 on 8360Y, ~28 on EPYC; we use
    /// measured peak BW which the paper's narrative is based on).
    pub fn flop_byte_ratio(&self) -> f64 {
        self.peak_fp32_base_gflops() / self.memory.peak_bw_gbs
    }

    /// Last-level-cache streaming bandwidth (GB/s) — the "cache bandwidth"
    /// of Figure 1's small-size plateau.
    pub fn llc_stream_bw_gbs(&self) -> f64 {
        self.caches
            .iter()
            .max_by_key(|c| c.level)
            .map(|c| c.stream_bw_gbs)
            .unwrap_or(self.memory.peak_bw_gbs)
    }

    /// Ratio between cache and main-memory streaming bandwidth — 3.8× on
    /// MAX, ~6.3× on 8360Y, ~14× on EPYC (paper §2 & §6). This ratio bounds
    /// the achievable gain from cache-blocking tiling (Figure 9).
    pub fn cache_to_mem_bw_ratio(&self) -> f64 {
        self.llc_stream_bw_gbs() / self.measured_triad_gbs
    }

    /// Little's-law aggregate bandwidth bound: each active core sustains
    /// `mlp_per_core` outstanding 64-byte lines against the main-memory
    /// latency. With enough cores this exceeds the DDR peak (so DDR systems
    /// reach ~75% of pin bandwidth), but on HBM parts it is the binding
    /// constraint (the McCalpin ISC'23 observation the paper cites).
    pub fn concurrency_bw_gbs(&self, active_cores: u32, smt_active: bool) -> f64 {
        let line = 64.0; // bytes
        let smt_boost = if smt_active { 1.25 } else { 1.0 };
        let per_core = self.mlp_per_core * smt_boost * line / self.memory.latency_ns;
        per_core * active_cores as f64
    }

    /// Effective large-array streaming bandwidth for `active_cores` cores:
    /// the lesser of the measured machine peak (scaled by the active
    /// fraction of memory controllers) and the concurrency bound.
    pub fn effective_stream_bw_gbs(&self, active_cores: u32, smt_active: bool) -> f64 {
        let frac = (active_cores as f64 / self.topology.physical_cores() as f64).min(1.0);
        let controller_bw =
            self.measured_triad_gbs * frac.max(1.0 / self.topology.total_numa() as f64);
        controller_bw.min(self.concurrency_bw_gbs(active_cores, smt_active))
    }

    /// Total last-level cache capacity in bytes.
    pub fn llc_total_bytes(&self) -> u64 {
        let t = &self.topology;
        self.caches
            .iter()
            .max_by_key(|c| c.level)
            .map(|c| {
                c.total_capacity_bytes(
                    t.physical_cores() as u64,
                    t.sockets as u64,
                    t.total_numa() as u64,
                )
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{CacheScope, MemoryKind};

    fn toy() -> Platform {
        Platform {
            kind: PlatformKind::Custom,
            name: "toy".into(),
            topology: CpuTopology {
                sockets: 2,
                numa_per_socket: 1,
                cores_per_numa: 4,
                smt_per_core: 2,
            },
            base_ghz: 2.0,
            turbo_allcore_ghz: 3.0,
            vector_bits: 256,
            fma_units: 2,
            caches: vec![
                CacheLevel {
                    level: 1,
                    capacity_bytes: 32 << 10,
                    scope: CacheScope::PerCore,
                    stream_bw_gbs: 8000.0,
                    latency_ns: 1.5,
                    associativity: 8,
                    line_bytes: 64,
                },
                CacheLevel {
                    level: 3,
                    capacity_bytes: 32 << 20,
                    scope: CacheScope::PerSocket,
                    stream_bw_gbs: 1200.0,
                    latency_ns: 40.0,
                    associativity: 16,
                    line_bytes: 64,
                },
            ],
            memory: MainMemory {
                kind: MemoryKind::Ddr4,
                capacity_gib: 256,
                peak_bw_gbs: 400.0,
                latency_ns: 100.0,
            },
            measured_triad_gbs: 300.0,
            measured_triad_ss_gbs: None,
            latency: LatencyProfile {
                hyperthread_ns: Some(8.0),
                same_numa_ns: 50.0,
                cross_numa_ns: 60.0,
                cross_socket_ns: 120.0,
            },
            mlp_per_core: 20.0,
            kernel_launch_overhead_us: 5.0,
            is_gpu: false,
        }
    }

    #[test]
    fn peak_flops_formula() {
        let p = toy();
        // 8 cores × 2 GHz × 2 FMA × 8 lanes × 2 flops = 512 GF
        assert_eq!(p.peak_fp32_base_gflops(), 512.0);
        assert_eq!(p.peak_fp64_gflops(p.base_ghz), 256.0);
    }

    #[test]
    fn flop_byte_ratio() {
        let p = toy();
        assert!((p.flop_byte_ratio() - 512.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn llc_lookup_takes_highest_level() {
        let p = toy();
        assert_eq!(p.llc_stream_bw_gbs(), 1200.0);
        assert_eq!(p.llc_total_bytes(), 2 * (32 << 20));
    }

    #[test]
    fn cache_ratio() {
        let p = toy();
        assert!((p.cache_to_mem_bw_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn concurrency_bw_scales_with_cores() {
        let p = toy();
        let one = p.concurrency_bw_gbs(1, false);
        let eight = p.concurrency_bw_gbs(8, false);
        assert!((eight / one - 8.0).abs() < 1e-9);
        // 20 lines × 64 B / 100 ns = 12.8 GB/s per core
        assert!((one - 12.8).abs() < 1e-9);
    }

    #[test]
    fn smt_raises_concurrency_bound() {
        let p = toy();
        assert!(p.concurrency_bw_gbs(8, true) > p.concurrency_bw_gbs(8, false));
    }

    #[test]
    fn effective_bw_capped_by_machine_peak() {
        let p = toy();
        let bw = p.effective_stream_bw_gbs(8, false);
        assert!(bw <= p.measured_triad_gbs + 1e-9);
        // With only one core, the concurrency bound binds.
        let bw1 = p.effective_stream_bw_gbs(1, false);
        assert!(bw1 < 20.0);
    }
}
