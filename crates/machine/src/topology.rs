//! CPU topology: sockets → NUMA domains → cores → SMT threads, plus rank
//! placement policies used by the message-passing substrate.
//!
//! The paper's parallelization study (§5) compares *pure MPI* (one process
//! per physical/logical core) against *MPI+OpenMP* and *MPI+SYCL* (one
//! process per NUMA domain). [`PlacementPolicy`] captures those choices and
//! [`CpuTopology::place_ranks`] maps ranks to hardware threads so that the
//! communication-distance of each rank pair (and hence the injected MPI
//! latency) is known.

use crate::latency::CommDistance;
use serde::{Deserialize, Serialize};

/// Identifies one hardware thread: `(socket, numa_in_socket, core_in_numa,
/// smt_thread)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId {
    pub socket: u16,
    pub numa: u16,
    pub core: u16,
    pub smt: u8,
}

impl CoreId {
    /// Classify the communication distance between two hardware threads.
    pub fn distance_to(&self, other: &CoreId) -> CommDistance {
        if self.socket != other.socket {
            CommDistance::CrossSocket
        } else if self.numa != other.numa {
            CommDistance::CrossNuma
        } else if self.core != other.core {
            CommDistance::SameNuma
        } else {
            CommDistance::Hyperthread
        }
    }
}

/// Machine topology counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuTopology {
    pub sockets: u16,
    pub numa_per_socket: u16,
    pub cores_per_numa: u16,
    /// SMT ways per core (2 with hyperthreading, 1 without).
    pub smt_per_core: u8,
}

/// How ranks (or threads) are assigned to hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// One rank per physical core (HT unused by ranks). Pure-MPI w/o HT.
    OnePerCore,
    /// One rank per hardware thread (both hyperthreads). Pure-MPI w/ HT.
    OnePerThread,
    /// One rank per NUMA domain, pinned to that domain's first core
    /// (MPI+OpenMP / MPI+SYCL configurations).
    OnePerNuma,
    /// One rank per socket.
    OnePerSocket,
    /// One rank per physical core, round-robined across NUMA domains:
    /// rank `r` lands on domain `r mod total_numa` (the
    /// `I_MPI_PIN_ORDER=scatter` counterpart of the compact enumerations
    /// above). Consecutive ranks are topologically far apart, so this is
    /// the adversarial placement for nearest-neighbour stencil traffic —
    /// and the best one for per-rank bandwidth headroom.
    Scatter,
}

impl PlacementPolicy {
    /// Every policy, in a stable enumeration order.
    pub const ALL: [PlacementPolicy; 5] = [
        PlacementPolicy::OnePerNuma,
        PlacementPolicy::OnePerSocket,
        PlacementPolicy::OnePerCore,
        PlacementPolicy::OnePerThread,
        PlacementPolicy::Scatter,
    ];

    /// Stable machine-readable label (used in plan JSON and job specs).
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::OnePerCore => "one-per-core",
            PlacementPolicy::OnePerThread => "one-per-thread",
            PlacementPolicy::OnePerNuma => "one-per-numa",
            PlacementPolicy::OnePerSocket => "one-per-socket",
            PlacementPolicy::Scatter => "scatter",
        }
    }

    /// Inverse of [`Self::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == s)
    }
}

/// A computed placement: rank → hardware thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankPlacement {
    pub policy: PlacementPolicy,
    pub assignments: Vec<CoreId>,
}

impl RankPlacement {
    pub fn n_ranks(&self) -> usize {
        self.assignments.len()
    }

    /// Communication distance between two ranks.
    pub fn distance(&self, a: usize, b: usize) -> CommDistance {
        self.assignments[a].distance_to(&self.assignments[b])
    }

    /// Histogram of pairwise distances over all distinct rank pairs —
    /// useful for estimating average message latency of a halo exchange.
    pub fn distance_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for i in 0..self.assignments.len() {
            for j in (i + 1)..self.assignments.len() {
                let d = self.distance(i, j);
                let idx = CommDistance::ALL.iter().position(|&x| x == d).unwrap();
                h[idx] += 1;
            }
        }
        h
    }

    /// Fraction of nearest-neighbour pairs (rank i, rank i+1) that cross a
    /// socket boundary. Cartesian-decomposed stencil codes mostly talk to
    /// nearby ranks, so this is the latency-relevant statistic.
    pub fn neighbor_cross_socket_fraction(&self) -> f64 {
        if self.assignments.len() < 2 {
            return 0.0;
        }
        let n = self.assignments.len() - 1;
        let crossing = (0..n)
            .filter(|&i| self.distance(i, i + 1) == CommDistance::CrossSocket)
            .count();
        crossing as f64 / n as f64
    }
}

/// How a node's cores are carved into disjoint worker shards (the
/// `bwb-serve` worker pool). Mirrors the two placements the Aurora
/// Xeon-Max study exercises per node: one worker per NUMA domain vs
/// workers packed onto contiguous cores from one end of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardPolicy {
    /// Shard `i` owns NUMA domains `i, i + n, i + 2n, …`: every shard's
    /// ranks stay inside its own domains, shards spread across the machine.
    OnePerNuma,
    /// Shards own contiguous blocks of physical cores in compact
    /// enumeration order (shard 0 gets the first block, and so on).
    Packed,
}

impl ShardPolicy {
    pub const ALL: [ShardPolicy; 2] = [ShardPolicy::OnePerNuma, ShardPolicy::Packed];

    pub fn label(self) -> &'static str {
        match self {
            ShardPolicy::OnePerNuma => "one-per-numa",
            ShardPolicy::Packed => "packed",
        }
    }

    /// Inverse of [`Self::label`] (wire-format parsing).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == s)
    }
}

impl CpuTopology {
    pub fn total_numa(&self) -> u32 {
        self.sockets as u32 * self.numa_per_socket as u32
    }

    pub fn physical_cores(&self) -> u32 {
        self.total_numa() * self.cores_per_numa as u32
    }

    pub fn hardware_threads(&self) -> u32 {
        self.physical_cores() * self.smt_per_core as u32
    }

    /// Enumerate hardware threads in a compact, NUMA-major order: all first
    /// SMT threads of a NUMA domain, then (if requested) the sibling
    /// threads, then the next domain. This mirrors `I_MPI_PIN_ORDER=compact`.
    pub fn enumerate_threads(&self, use_smt: bool) -> Vec<CoreId> {
        let smt_ways = if use_smt { self.smt_per_core } else { 1 };
        let mut out = Vec::with_capacity(self.physical_cores() as usize * smt_ways as usize);
        for socket in 0..self.sockets {
            for numa in 0..self.numa_per_socket {
                for smt in 0..smt_ways {
                    for core in 0..self.cores_per_numa {
                        out.push(CoreId {
                            socket,
                            numa,
                            core,
                            smt,
                        });
                    }
                }
            }
        }
        out
    }

    /// Compute the rank placement under a policy.
    pub fn place_ranks(&self, policy: PlacementPolicy) -> RankPlacement {
        let assignments = match policy {
            PlacementPolicy::OnePerCore => self.enumerate_threads(false),
            PlacementPolicy::OnePerThread => self.enumerate_threads(true),
            PlacementPolicy::OnePerNuma => {
                let mut v = Vec::new();
                for socket in 0..self.sockets {
                    for numa in 0..self.numa_per_socket {
                        v.push(CoreId {
                            socket,
                            numa,
                            core: 0,
                            smt: 0,
                        });
                    }
                }
                v
            }
            PlacementPolicy::OnePerSocket => (0..self.sockets)
                .map(|socket| CoreId {
                    socket,
                    numa: 0,
                    core: 0,
                    smt: 0,
                })
                .collect(),
            PlacementPolicy::Scatter => {
                // Domain-major round-robin: core index varies slowest, the
                // domain varies fastest, so rank r sits on domain
                // r % total_numa at core r / total_numa.
                let domains = self.total_numa() as u16;
                let mut v = Vec::with_capacity(self.physical_cores() as usize);
                for core in 0..self.cores_per_numa {
                    for dom in 0..domains {
                        v.push(CoreId {
                            socket: dom / self.numa_per_socket,
                            numa: dom % self.numa_per_socket,
                            core,
                            smt: 0,
                        });
                    }
                }
                v
            }
        };
        RankPlacement {
            policy,
            assignments,
        }
    }

    /// Carve the node's physical cores into `shards` disjoint core sets.
    ///
    /// Returns one [`RankPlacement`] per shard whose assignments are that
    /// shard's cores in rank order; a shard universe of `n` ranks uses the
    /// first `n`. Core sets are pairwise disjoint and together cover every
    /// physical core (SMT siblings excluded — ranks never share a core
    /// with another shard's ranks). Errors if `shards` is zero or exceeds
    /// the carve-able units (NUMA domains for [`ShardPolicy::OnePerNuma`],
    /// physical cores for [`ShardPolicy::Packed`]) — callers like the
    /// `bwb-serve` worker pool surface that as a client error rather than
    /// crashing the process.
    pub fn carve_shards(
        &self,
        shards: usize,
        policy: ShardPolicy,
    ) -> Result<Vec<RankPlacement>, String> {
        if shards == 0 {
            return Err("need at least one shard".to_string());
        }
        let cores = self.enumerate_threads(false);
        let sets: Vec<Vec<CoreId>> = match policy {
            ShardPolicy::OnePerNuma => {
                let domains = self.total_numa() as usize;
                if shards > domains {
                    return Err(format!("{shards} shards over {domains} NUMA domains"));
                }
                // Round-robin whole domains over shards, keeping each
                // shard's domain list in machine order.
                (0..shards)
                    .map(|s| {
                        cores
                            .iter()
                            .filter(|c| {
                                let dom = (c.socket as usize * self.numa_per_socket as usize)
                                    + c.numa as usize;
                                dom % shards == s
                            })
                            .copied()
                            .collect()
                    })
                    .collect()
            }
            ShardPolicy::Packed => {
                if shards > cores.len() {
                    return Err(format!("{shards} shards over {} cores", cores.len()));
                }
                // Contiguous blocks; the first `rem` shards get one extra.
                let base = cores.len() / shards;
                let rem = cores.len() % shards;
                let mut out = Vec::with_capacity(shards);
                let mut at = 0usize;
                for s in 0..shards {
                    let len = base + usize::from(s < rem);
                    out.push(cores[at..at + len].to_vec());
                    at += len;
                }
                out
            }
        };
        Ok(sets
            .into_iter()
            .map(|assignments| RankPlacement {
                policy: PlacementPolicy::OnePerCore,
                assignments,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Xeon MAX 9480-like topology: 2 sockets × 4 NUMA × 14 cores × 2 SMT.
    fn max_topo() -> CpuTopology {
        CpuTopology {
            sockets: 2,
            numa_per_socket: 4,
            cores_per_numa: 14,
            smt_per_core: 2,
        }
    }

    #[test]
    fn counts() {
        let t = max_topo();
        assert_eq!(t.total_numa(), 8);
        assert_eq!(t.physical_cores(), 112);
        assert_eq!(t.hardware_threads(), 224);
    }

    #[test]
    fn distance_classification() {
        let a = CoreId {
            socket: 0,
            numa: 0,
            core: 0,
            smt: 0,
        };
        let ht = CoreId {
            socket: 0,
            numa: 0,
            core: 0,
            smt: 1,
        };
        let adj = CoreId {
            socket: 0,
            numa: 0,
            core: 1,
            smt: 0,
        };
        let xn = CoreId {
            socket: 0,
            numa: 1,
            core: 0,
            smt: 0,
        };
        let xs = CoreId {
            socket: 1,
            numa: 0,
            core: 0,
            smt: 0,
        };
        assert_eq!(a.distance_to(&ht), CommDistance::Hyperthread);
        assert_eq!(a.distance_to(&adj), CommDistance::SameNuma);
        assert_eq!(a.distance_to(&xn), CommDistance::CrossNuma);
        assert_eq!(a.distance_to(&xs), CommDistance::CrossSocket);
        // symmetric
        assert_eq!(xs.distance_to(&a), CommDistance::CrossSocket);
    }

    #[test]
    fn one_per_core_uses_physical_cores_only() {
        let t = max_topo();
        let p = t.place_ranks(PlacementPolicy::OnePerCore);
        assert_eq!(p.n_ranks(), 112);
        assert!(p.assignments.iter().all(|c| c.smt == 0));
    }

    #[test]
    fn one_per_thread_uses_all_threads() {
        let t = max_topo();
        let p = t.place_ranks(PlacementPolicy::OnePerThread);
        assert_eq!(p.n_ranks(), 224);
        let smt1 = p.assignments.iter().filter(|c| c.smt == 1).count();
        assert_eq!(smt1, 112);
    }

    #[test]
    fn one_per_numa_gives_numa_count_ranks() {
        let t = max_topo();
        let p = t.place_ranks(PlacementPolicy::OnePerNuma);
        assert_eq!(p.n_ranks(), 8);
        // All on distinct NUMA domains.
        let mut seen = std::collections::HashSet::new();
        for c in &p.assignments {
            assert!(seen.insert((c.socket, c.numa)));
        }
    }

    #[test]
    fn one_per_socket() {
        let t = max_topo();
        let p = t.place_ranks(PlacementPolicy::OnePerSocket);
        assert_eq!(p.n_ranks(), 2);
        assert_eq!(p.distance(0, 1), CommDistance::CrossSocket);
    }

    #[test]
    fn enumerate_threads_compact_keeps_neighbors_close() {
        let t = max_topo();
        let p = t.place_ranks(PlacementPolicy::OnePerCore);
        // With compact placement, consecutive ranks should rarely cross a
        // socket: exactly one boundary out of 111 neighbour pairs.
        let f = p.neighbor_cross_socket_fraction();
        assert!(
            f < 0.02,
            "compact placement should keep neighbours close, got {f}"
        );
    }

    #[test]
    fn carved_shards_are_disjoint_and_cover_all_cores() {
        let t = max_topo();
        for policy in [ShardPolicy::OnePerNuma, ShardPolicy::Packed] {
            for shards in [1, 2, 4, 8] {
                let carved = t.carve_shards(shards, policy).unwrap();
                assert_eq!(carved.len(), shards);
                let mut seen = std::collections::HashSet::new();
                for p in &carved {
                    assert!(!p.assignments.is_empty());
                    for c in &p.assignments {
                        assert!(seen.insert(*c), "{policy:?}/{shards}: core {c:?} reused");
                    }
                }
                assert_eq!(
                    seen.len(),
                    t.physical_cores() as usize,
                    "{policy:?}/{shards}: carve must cover every physical core"
                );
            }
        }
    }

    #[test]
    fn one_per_numa_shards_keep_domains_whole() {
        let t = max_topo();
        let carved = t.carve_shards(8, ShardPolicy::OnePerNuma).unwrap();
        // 8 shards over 8 domains: each shard is exactly one domain.
        for p in &carved {
            assert_eq!(p.assignments.len(), t.cores_per_numa as usize);
            let first = (p.assignments[0].socket, p.assignments[0].numa);
            assert!(p.assignments.iter().all(|c| (c.socket, c.numa) == first));
        }
    }

    #[test]
    fn packed_shards_are_contiguous_blocks() {
        let t = max_topo();
        let carved = t.carve_shards(4, ShardPolicy::Packed).unwrap();
        let all = t.enumerate_threads(false);
        let mut at = 0usize;
        for p in &carved {
            assert_eq!(p.assignments, all[at..at + p.assignments.len()].to_vec());
            at += p.assignments.len();
        }
        assert_eq!(at, all.len());
    }

    #[test]
    fn over_carving_is_an_error_not_a_panic() {
        let err = max_topo()
            .carve_shards(9, ShardPolicy::OnePerNuma)
            .unwrap_err();
        assert!(err.contains("NUMA domains"), "{err}");
        let err = max_topo().carve_shards(0, ShardPolicy::Packed).unwrap_err();
        assert!(err.contains("at least one"), "{err}");
        let err = max_topo()
            .carve_shards(113, ShardPolicy::Packed)
            .unwrap_err();
        assert!(err.contains("cores"), "{err}");
    }

    #[test]
    fn scatter_round_robins_numa_domains() {
        let t = max_topo();
        let p = t.place_ranks(PlacementPolicy::Scatter);
        // Covers every physical core exactly once, SMT unused.
        assert_eq!(p.n_ranks(), 112);
        let distinct: std::collections::HashSet<_> = p.assignments.iter().collect();
        assert_eq!(distinct.len(), 112);
        assert!(p.assignments.iter().all(|c| c.smt == 0));
        // Rank r sits on domain r % 8: the first 8 ranks are pairwise on
        // distinct domains, and consecutive ranks never share one.
        for r in 0..8usize {
            let c = p.assignments[r];
            let dom = c.socket as usize * t.numa_per_socket as usize + c.numa as usize;
            assert_eq!(dom, r % 8);
        }
        for r in 0..111 {
            assert_ne!(
                p.distance(r, r + 1),
                CommDistance::SameNuma,
                "ranks {r},{} must not share a domain",
                r + 1
            );
        }
        // Scatter is adversarial for neighbour traffic: 2 of every 8
        // consecutive-rank hops cross the socket (domain 3 -> 4 and
        // 7 -> 0), where the compact enumeration has exactly one crossing
        // in the whole chain.
        let f = p.neighbor_cross_socket_fraction();
        assert!((f - 0.25).abs() < 0.01, "got {f}");
    }

    #[test]
    fn distance_histogram_counts_all_pairs() {
        let t = CpuTopology {
            sockets: 2,
            numa_per_socket: 1,
            cores_per_numa: 2,
            smt_per_core: 1,
        };
        let p = t.place_ranks(PlacementPolicy::OnePerCore);
        let h = p.distance_histogram();
        // 4 ranks → 6 pairs: within each socket 1 pair ×2 sockets = 2
        // same-numa pairs; 4 cross-socket pairs.
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[1], 2);
        assert_eq!(h[3], 4);
    }
}
