//! Host latency probe — the runnable counterpart of Figure 2.
//!
//! The paper uses the `core-to-core-latency` tool's "one writer / one
//! reader on many cache lines" test. This module implements the same idea
//! portably: two threads ping-pong a sequence number through a shared
//! atomic cache line, and the round-trip time divided by two approximates
//! the one-way core-to-core communication latency between wherever the OS
//! scheduled the two threads.
//!
//! Without `sched_setaffinity` (kept out to stay dependency-free and
//! portable) the pairing is whatever the scheduler picks, so treat results
//! as a representative same-machine latency rather than a per-distance
//! breakdown; the per-distance matrix for the paper's machines lives in
//! the platform descriptors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cache-line-padded atomic, so the ping and pong lines do not false-share.
#[repr(align(128))]
struct PaddedAtomic(AtomicU64);

/// Result of one probe run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProbe {
    /// Estimated one-way latency, nanoseconds (median of the batches).
    pub one_way_ns: f64,
    /// Round trips measured.
    pub round_trips: u64,
}

/// Measure thread-to-thread ping-pong latency on this host.
///
/// `round_trips` bounces a counter between two threads that many times
/// (batched into 16 groups; the median batch rate is reported to suppress
/// scheduler noise).
pub fn measure_thread_latency(round_trips: u64) -> LatencyProbe {
    assert!(round_trips >= 32, "need enough round trips to time");
    let ping = Arc::new(PaddedAtomic(AtomicU64::new(0)));
    let pong = Arc::new(PaddedAtomic(AtomicU64::new(0)));

    let batches = 16u64;
    let per_batch = round_trips / batches;

    // Spin briefly, then yield: on an oversubscribed machine a pure spin
    // loop can starve the partner thread indefinitely.
    #[inline]
    fn wait_until(cell: &AtomicU64, target: u64) {
        let mut spins = 0u32;
        while cell.load(Ordering::Acquire) < target {
            spins += 1;
            if spins < 1 << 12 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    let responder = {
        let ping = Arc::clone(&ping);
        let pong = Arc::clone(&pong);
        let total = per_batch * batches;
        std::thread::spawn(move || {
            for i in 1..=total {
                wait_until(&ping.0, i);
                pong.0.store(i, Ordering::Release);
            }
        })
    };

    let mut batch_ns = Vec::with_capacity(batches as usize);
    let mut seq = 0u64;
    for _ in 0..batches {
        let t0 = Instant::now();
        for _ in 0..per_batch {
            seq += 1;
            ping.0.store(seq, Ordering::Release);
            wait_until(&pong.0, seq);
        }
        batch_ns.push(t0.elapsed().as_nanos() as f64 / per_batch as f64);
    }
    responder.join().expect("responder thread");

    batch_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_round_trip = batch_ns[batch_ns.len() / 2];
    LatencyProbe {
        one_way_ns: median_round_trip / 2.0,
        round_trips: per_batch * batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_returns_plausible_latency() {
        let p = measure_thread_latency(2_000);
        // Anything from L1-adjacent SMT siblings (~5 ns) to a heavily
        // oversubscribed scheduler hop (~1 ms with yields) is plausible;
        // outside that the probe is broken.
        assert!(
            p.one_way_ns > 1.0 && p.one_way_ns < 5_000_000.0,
            "one-way latency {} ns",
            p.one_way_ns
        );
        // 2000 rounds down to itself at batch size 16.
        assert_eq!(p.round_trips, 2_000);
    }

    #[test]
    #[should_panic(expected = "round trips")]
    fn too_few_round_trips_rejected() {
        measure_thread_latency(8);
    }
}
