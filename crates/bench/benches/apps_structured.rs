//! Structured-mesh application kernels on the host — the per-app measured
//! material behind Figures 3, 5, 6 and 8: one representative time step per
//! app, in serial and threaded variants.

use bwb_core::apps::{acoustic, cloverleaf2d, miniweather, opensbli};
use bwb_core::ops::{ExecMode, Profile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_cloverleaf2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("cloverleaf2d_cycle");
    for &(label, mode) in &[("serial", ExecMode::Serial), ("rayon", ExecMode::Rayon)] {
        let n = 256;
        let mut sim = cloverleaf2d::Clover2::new(cloverleaf2d::Config {
            nx: n,
            ny: n,
            iterations: 0,
            mode,
            ..cloverleaf2d::Config::default()
        });
        let mut profile = Profile::new();
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("cycle", label), &n, |b, _| {
            b.iter(|| sim.cycle(&mut profile, None))
        });
    }
    g.finish();
}

fn bench_acoustic(c: &mut Criterion) {
    let mut g = c.benchmark_group("acoustic_step");
    for &(label, mode) in &[("serial", ExecMode::Serial), ("rayon", ExecMode::Rayon)] {
        let n = 96;
        let mut sim = acoustic::Acoustic::new(acoustic::Config {
            n,
            iterations: 0,
            mode,
            ..acoustic::Config::default()
        });
        let mut profile = Profile::new();
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("leapfrog", label), &n, |b, _| {
            b.iter(|| sim.step_once(&mut profile))
        });
    }
    g.finish();
}

fn bench_opensbli_variants(c: &mut Criterion) {
    // The SA-vs-SN trade (Figure 6's §6 discussion): same physics, SA
    // moves more bytes, SN recomputes — measure both.
    let mut g = c.benchmark_group("opensbli_step");
    for &(label, variant) in &[
        ("store_all", opensbli::Variant::StoreAll),
        ("store_none", opensbli::Variant::StoreNone),
    ] {
        let n = 48;
        let mut sim = sim_for(variant, n);
        let mut profile = Profile::new();
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("rk3", label), &n, |b, _| {
            b.iter(|| sim.step(&mut profile))
        });
    }
    g.finish();
}

fn sim_for(variant: opensbli::Variant, n: usize) -> opensbli::OpenSbli {
    opensbli::OpenSbli::new(opensbli::Config {
        n,
        iterations: 0,
        variant,
        mode: ExecMode::Rayon,
        ..opensbli::Config::default()
    })
}

fn bench_miniweather(c: &mut Criterion) {
    let mut g = c.benchmark_group("miniweather_step");
    let mut sim = miniweather::MiniWeather::new(miniweather::Config {
        nx: 200,
        nz: 100,
        mode: ExecMode::Rayon,
        ..miniweather::Config::default()
    });
    let mut profile = Profile::new();
    g.throughput(Throughput::Elements(200 * 100));
    g.bench_function("rk3_split", |b| b.iter(|| sim.step(&mut profile)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cloverleaf2d, bench_acoustic, bench_opensbli_variants, bench_miniweather
}
criterion_main!(benches);
