//! BabelStream kernels on the host (the measured counterpart of Figure 1).
//!
//! Reports bytes-throughput per kernel; compare the serial and threaded
//! variants and the cache-resident vs memory-resident sizes.

use bwb_core::stream::{BabelStream, Kernel, Par};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("babelstream");
    // Cache-resident (256 KiB/array) and memory-resident (64 MiB/array).
    for &(label, n) in &[("cache", 1usize << 15), ("memory", 1usize << 23)] {
        for &par in &[Par::Serial, Par::Rayon] {
            let mut s = BabelStream::new(n, par);
            for &k in &[Kernel::Copy, Kernel::Triad, Kernel::Dot] {
                g.throughput(Throughput::Bytes((k.arrays_moved() * n * 8) as u64));
                g.bench_with_input(
                    BenchmarkId::new(format!("{}/{:?}", k.name(), par), label),
                    &n,
                    |b, _| {
                        b.iter(|| match k {
                            Kernel::Copy => s.copy(),
                            Kernel::Triad => s.triad(),
                            Kernel::Dot => {
                                std::hint::black_box(s.dot());
                            }
                            _ => unreachable!(),
                        })
                    },
                );
            }
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stream
}
criterion_main!(benches);
