//! Mailbox transport microbenchmarks: the mutex+condvar `LockedMailbox`
//! against the lock-free `SpscMailbox` (per-source SPSC rings + receiver
//! stash), over the two traffic shapes the apps actually generate.
//!
//! * **ping-pong** — two ranks alternate one envelope each way; every
//!   `take_blocking` races a fresh delivery, so the receiver's
//!   sleep/wake path (condvar vs Dekker-flag + park) dominates. This is
//!   the halo-exchange critical path when ranks run in lockstep.
//! * **halo mix** — one receiver drains a burst of messages from
//!   several sources under distinct tags, out of tag order (posted
//!   receives never match delivery order exactly); exercises the
//!   queue-scan (locked) vs ring-drain + stash-scan (SPSC) paths the
//!   structured-mesh apps hit once per exchange phase.
//!
//! Numbers land in EXPERIMENTS.md; the correctness side of the story is
//! `loom_spsc.rs` (exhaustive DPOR) and the bit-identity test in
//! `bwb-dslcheck`.

use bwb_core::shmpi::{Envelope, Mailbox, MailboxKind, Pattern};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

const KINDS: [(&str, MailboxKind); 2] =
    [("locked", MailboxKind::Locked), ("spsc", MailboxKind::Spsc)];

fn env(source: usize, tag: u32, bytes: usize) -> Envelope {
    Envelope {
        source,
        tag,
        data: Box::new(vec![0u8; bytes]),
        bytes,
    }
}

/// Two threads, one mailbox each, alternating single envelopes: the
/// latency-bound shape. `iters` round trips per measurement.
fn bench_ping_pong(c: &mut Criterion) {
    let mut g = c.benchmark_group("mailbox_ping_pong");
    for (label, kind) in KINDS {
        // Amortize the two thread spawns over a fixed batch and report
        // the per-round-trip time.
        const ROUNDS: u32 = 2_000;
        g.bench_function(BenchmarkId::new("round_trip", label), |b| {
            b.iter_custom(|_iters| {
                let a = Arc::new(Mailbox::with_kind(kind, 2));
                let z = Arc::new(Mailbox::with_kind(kind, 2));
                let (a2, z2) = (a.clone(), z.clone());
                let pat = |src| Pattern {
                    source: Some(src),
                    tag: 7,
                };
                let start = std::time::Instant::now();
                let peer = std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        let _ = z2.take_blocking(pat(0));
                        a2.deliver(env(1, 7, 64));
                    }
                });
                for _ in 0..ROUNDS {
                    z.deliver(env(0, 7, 64));
                    let _ = a.take_blocking(pat(1));
                }
                peer.join().unwrap();
                start.elapsed() / ROUNDS
            })
        });
    }
    g.finish();
}

/// One receiver, several senders bursting distinct-tag halo strips; the
/// receiver takes them in a fixed (non-delivery) tag order, as posted
/// halo receives do. Throughput-bound shape.
fn bench_halo_mix(c: &mut Criterion) {
    const SOURCES: usize = 4;
    const TAGS: [u32; 4] = [0x4000_0000, 0x4000_0001, 0x4000_0002, 0x4000_0003];
    const MSG_BYTES: usize = 4096;
    let mut g = c.benchmark_group("mailbox_halo_mix");
    g.throughput(Throughput::Bytes((SOURCES * TAGS.len() * MSG_BYTES) as u64));
    for (label, kind) in KINDS {
        // Amortize the sender spawns over a fixed number of bursts and
        // report the per-burst time (one burst = the throughput unit).
        const BURSTS: u32 = 500;
        g.bench_function(BenchmarkId::new("burst_drain", label), |b| {
            b.iter_custom(|_iters| {
                let mb = Arc::new(Mailbox::with_kind(kind, SOURCES + 1));
                let start = std::time::Instant::now();
                let senders: Vec<_> = (0..SOURCES)
                    .map(|src| {
                        let mb = mb.clone();
                        std::thread::spawn(move || {
                            for _ in 0..BURSTS {
                                for &tag in &TAGS {
                                    mb.deliver(env(src, tag, MSG_BYTES));
                                }
                            }
                        })
                    })
                    .collect();
                for _ in 0..BURSTS {
                    // Reverse tag order on purpose: forces the pattern
                    // scan past newer traffic, as posted receives do.
                    for &tag in TAGS.iter().rev() {
                        for src in 0..SOURCES {
                            let _ = mb.take_blocking(Pattern {
                                source: Some(src),
                                tag,
                            });
                        }
                    }
                }
                for s in senders {
                    s.join().unwrap();
                }
                start.elapsed() / BURSTS
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ping_pong, bench_halo_mix);
criterion_main!(benches);
