//! Tracing overhead on the real workload, plus the hard tracing-off gate.
//!
//! Two claims, per the trace subsystem's design contract:
//!
//! * **Tracing off is unmeasurable.** A disabled emission entry point is one
//!   relaxed atomic load; this file *asserts* (before any Criterion group
//!   runs) that a disabled `span` call averages under 250 ns, so
//!   `cargo bench --bench trace_overhead` fails outright if someone makes
//!   the disabled path allocate. CI gates on this exit status.
//! * **Tracing on stays under 5% on CloverLeaf2D 960².** The Criterion
//!   groups below measure the same hydro cycle with the recorder off and
//!   on; compare the two medians in the report.

use bwb_core::apps::cloverleaf2d;
use bwb_core::ops::{ExecMode, Profile};
use bwb_core::trace;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

/// Hard gate: the disabled fast path must stay in the nanosecond range.
/// Budget is 250 ns/call — two orders of magnitude above the expected cost
/// (one relaxed load), so only a real regression (allocation, lock, TLS
/// init per call) trips it.
fn assert_disabled_span_is_free() {
    assert!(!trace::enabled(), "benches must start with tracing off");
    const CALLS: u32 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..CALLS {
        let mut s = trace::span(trace::Cat::Loop, "disabled_probe");
        s.set_args(black_box(i as f64), 0.0, 0.0);
    }
    let ns_per_call = t0.elapsed().as_nanos() as f64 / CALLS as f64;
    assert!(
        ns_per_call < 250.0,
        "disabled span costs {ns_per_call:.1} ns/call (budget 250 ns) — \
         the tracing-off path is no longer free"
    );
    println!("tracing-off gate: disabled span = {ns_per_call:.1} ns/call (budget 250)");
}

fn clover_sim(n: usize) -> (cloverleaf2d::Clover2, Profile) {
    let sim = cloverleaf2d::Clover2::new(cloverleaf2d::Config {
        nx: n,
        ny: n,
        iterations: 0,
        mode: ExecMode::Serial,
        ..cloverleaf2d::Config::default()
    });
    (sim, Profile::new())
}

/// CloverLeaf2D 960² hydro cycle with the recorder disabled (baseline).
fn bench_cycle_tracing_off(c: &mut Criterion) {
    let n = 960;
    let (mut sim, mut profile) = clover_sim(n);
    let mut g = c.benchmark_group("trace_overhead");
    g.throughput(Throughput::Elements((n * n) as u64));
    g.sample_size(10);
    g.bench_function("clover960_tracing_off", |b| {
        assert!(!trace::enabled());
        b.iter(|| sim.cycle(&mut profile, None))
    });
    g.finish();
}

/// Same cycle with the recorder enabled; events are discarded between
/// samples so the ring buffers never saturate. Compare against the off
/// median: the contract is <5% slowdown.
fn bench_cycle_tracing_on(c: &mut Criterion) {
    let n = 960;
    let (mut sim, mut profile) = clover_sim(n);
    let mut g = c.benchmark_group("trace_overhead");
    g.throughput(Throughput::Elements((n * n) as u64));
    g.sample_size(10);
    trace::clear();
    trace::set_enabled(true);
    g.bench_function("clover960_tracing_on", |b| {
        b.iter(|| {
            let r = sim.cycle(&mut profile, None);
            trace::clear();
            r
        })
    });
    trace::set_enabled(false);
    trace::clear();
    g.finish();
}

fn gate(_c: &mut Criterion) {
    // Runs first (group order below) so the bench binary fails fast when
    // the disabled path regresses.
    assert_disabled_span_is_free();
}

criterion_group!(gates, gate);
criterion_group!(cycles, bench_cycle_tracing_off, bench_cycle_tracing_on);
criterion_main!(gates, cycles);
