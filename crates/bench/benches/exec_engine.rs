//! Execution-engine microbenchmarks: the measured material behind the
//! chunked/slice-path/tile-parallel overhaul (DESIGN.md §2, §5).
//!
//! Two comparisons on a CloverLeaf2D-shaped working set (960², f64,
//! halo 2 — the paper's 2-D hydro footprint):
//!
//!  * `slice_path` — the same kernel through the per-point driver
//!    ([`par_loop2`]) and the slice fast path ([`par_loop2_rows`]), rayon
//!    mode: the pointwise ideal-gas EOS (2 in / 2 out) and a 5-point
//!    viscosity-shaped stencil (1 in / 1 out).
//!  * `tiled_chain` — a 4-loop reach-1 chain executed with
//!    [`LoopChain2::execute_tiled`] in serial vs rayon (tile-parallel)
//!    mode at several tile heights.

use bwb_core::ops::{par_loop2, par_loop2_rows, Dat2, ExecMode, LoopChain2, Profile, Range2};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const N: usize = 960;
const GAMMA: f64 = 1.4;

fn field(name: &str, a: usize, b: usize, bias: f64) -> Dat2<f64> {
    let mut d = Dat2::new(name, N, N, 2);
    d.init_with(move |i, j| {
        bias + 0.001 * ((i * a as isize + j * b as isize).rem_euclid(13)) as f64
    });
    d
}

fn bench_slice_path(c: &mut Criterion) {
    let rho = field("rho", 3, 7, 1.0);
    let e = field("e", 5, 11, 2.0);
    let mut p = Dat2::new("p", N, N, 2);
    let mut ss = Dat2::new("ss", N, N, 2);
    let mut profile = Profile::new();

    let mut g = c.benchmark_group("exec_engine/slice_path");
    g.throughput(Throughput::Elements((N * N) as u64));
    g.sample_size(20);

    g.bench_function(BenchmarkId::new("ideal_gas", "per_point"), |b| {
        b.iter(|| {
            par_loop2(
                &mut profile,
                "ig_pp",
                ExecMode::Rayon,
                Range2::interior(N, N),
                &mut [&mut p, &mut ss],
                &[&rho, &e],
                5.0,
                |_i, _j, out, ins| {
                    let (r, en) = (ins.get(0, 0, 0), ins.get(1, 0, 0));
                    let pv = (GAMMA - 1.0) * r * en;
                    out.set(0, pv);
                    out.set(1, (GAMMA * pv / r).sqrt());
                },
            )
        })
    });
    g.bench_function(BenchmarkId::new("ideal_gas", "rows"), |b| {
        b.iter(|| {
            par_loop2_rows(
                &mut profile,
                "ig_rows",
                ExecMode::Rayon,
                Range2::interior(N, N),
                &mut [&mut p, &mut ss],
                &[&rho, &e],
                5.0,
                |_j, out, ins| {
                    let r = ins.row(0);
                    let en = ins.row(1);
                    let (po, so) = out.rows2(0, 1);
                    for i in 0..po.len() {
                        let pv = (GAMMA - 1.0) * r[i] * en[i];
                        po[i] = pv;
                        so[i] = (GAMMA * pv / r[i]).sqrt();
                    }
                },
            )
        })
    });

    g.bench_function(BenchmarkId::new("stencil5", "per_point"), |b| {
        b.iter(|| {
            par_loop2(
                &mut profile,
                "st_pp",
                ExecMode::Rayon,
                Range2::interior(N, N),
                &mut [&mut p],
                &[&rho],
                6.0,
                |_i, _j, out, ins| {
                    out.set(
                        0,
                        ins.get(0, 0, 0)
                            + 0.25
                                * (ins.get(0, -1, 0)
                                    + ins.get(0, 1, 0)
                                    + ins.get(0, 0, -1)
                                    + ins.get(0, 0, 1)),
                    );
                },
            )
        })
    });
    g.bench_function(BenchmarkId::new("stencil5", "rows"), |b| {
        b.iter(|| {
            par_loop2_rows(
                &mut profile,
                "st_rows",
                ExecMode::Rayon,
                Range2::interior(N, N),
                &mut [&mut p],
                &[&rho],
                6.0,
                |_j, out, ins| {
                    let cc = ins.row(0);
                    let xm = ins.row_off(0, -1, 0);
                    let xp = ins.row_off(0, 1, 0);
                    let ym = ins.row_off(0, 0, -1);
                    let yp = ins.row_off(0, 0, 1);
                    let o = out.row(0);
                    for i in 0..o.len() {
                        o[i] = cc[i] + 0.25 * (xm[i] + xp[i] + ym[i] + yp[i]);
                    }
                },
            )
        })
    });
    g.finish();
}

fn build_chain(mode: ExecMode) -> (LoopChain2<f64>, Vec<Dat2<f64>>) {
    const LOOPS: usize = 4;
    let store: Vec<Dat2<f64>> = (0..=LOOPS)
        .map(|f| {
            let mut d = Dat2::new(&format!("f{f}"), N, N, 1);
            if f == 0 {
                d.init_with(|i, j| ((i * 3 + j * 5) % 11) as f64);
            }
            d
        })
        .collect();
    let mut chain = LoopChain2::new(mode);
    for l in 0..LOOPS {
        chain.add(
            &format!("s{l}"),
            Range2::interior(N, N),
            1,
            4.0,
            vec![l + 1],
            vec![l],
            |_i, _j, out, ins| {
                out.set(
                    0,
                    0.25 * (ins.get(0, -1, 0)
                        + ins.get(0, 1, 0)
                        + ins.get(0, 0, -1)
                        + ins.get(0, 0, 1)),
                );
            },
        );
    }
    (chain, store)
}

fn bench_tiled_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_engine/tiled_chain");
    g.throughput(Throughput::Elements((N * N * 4) as u64));
    g.sample_size(10);
    for tile in [8usize, 32, 128] {
        for &(label, mode) in &[("serial", ExecMode::Serial), ("parallel", ExecMode::Rayon)] {
            let (chain, mut store) = build_chain(mode);
            let mut profile = Profile::new();
            g.bench_with_input(BenchmarkId::new(label, tile), &tile, |b, &t| {
                b.iter(|| chain.execute_tiled(&mut store, &mut profile, t))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_slice_path, bench_tiled_chain);
criterion_main!(benches);
