//! Message-passing latency between in-process ranks (the measured
//! counterpart of Figure 2): ping-pong round trips through the shmpi
//! mailboxes, and allreduce latency as a function of world size.

use bwb_core::shmpi::{ReduceOp, Universe};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("pingpong");
    for &msg in &[8usize, 512, 65536] {
        g.bench_with_input(BenchmarkId::new("roundtrip", msg), &msg, |b, &msg| {
            b.iter(|| {
                let out = Universe::run(2, move |comm| {
                    let n = 64;
                    if comm.rank() == 0 {
                        for _ in 0..n {
                            comm.send(1, 0, vec![0u8; msg]);
                            let _ = comm.recv::<u8>(1, 1);
                        }
                    } else {
                        for _ in 0..n {
                            let _ = comm.recv::<u8>(0, 0);
                            comm.send(0, 1, vec![0u8; msg]);
                        }
                    }
                });
                std::hint::black_box(out.wall_seconds)
            })
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce");
    for &ranks in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("sum", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let out = Universe::run(ranks, |comm| {
                    let mut acc = 0.0f64;
                    for i in 0..16 {
                        acc += comm.allreduce_scalar(comm.rank() as f64 + i as f64, ReduceOp::Sum);
                    }
                    acc
                });
                std::hint::black_box(out.results[0])
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pingpong, bench_allreduce
}
criterion_main!(benches);
