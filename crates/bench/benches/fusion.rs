//! Plan-guided fused traversal vs the baseline schedule, on the real apps.
//!
//! Each pair runs the same certified-bit-identical computation two ways:
//!
//!  * `opensbli_rhs` — one Store-All SSP-RK3 step with the 10-loop
//!    derivative+combine RHS either as ten separate `par_loop3_planes`
//!    passes (baseline) or as one plan-guided fused traversal sharing each
//!    `(j,k)` plane slice across all ten bodies.
//!  * `clover_cycle` — one CloverLeaf2D hydro cycle with `ideal_gas` and
//!    `viscosity` either as two passes or one fused pass.
//!
//! The plan is derived the honest way — record the app, run the dataflow
//! analyzer, export the certificates — so the bench also exercises the full
//! analyze→plan→execute pipeline rather than a hand-built plan.

use bwb_core::apps::{cloverleaf2d, opensbli};
use bwb_core::ops::access::with_recording_full;
use bwb_core::ops::{ExecMode, OptPlan, Profile};
use bwb_dslcheck::DataflowReport;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn opensbli_plan(cfg: &opensbli::Config) -> OptPlan {
    let rcfg = cfg.clone();
    let ((), rec) = with_recording_full(move || {
        let mut sim = opensbli::OpenSbli::new(rcfg);
        let mut p = Profile::new();
        sim.step(&mut p);
    });
    DataflowReport::analyze("opensbli_sa", &opensbli::loop_specs(), &rec).export_plan()
}

fn clover_plan(cfg: &cloverleaf2d::Config) -> OptPlan {
    let rcfg = cfg.clone();
    let ((), rec) = with_recording_full(move || {
        let mut sim = cloverleaf2d::Clover2::new(rcfg);
        let mut p = Profile::new();
        for _ in 0..2 {
            sim.cycle(&mut p, None);
        }
        sim.field_summary(&mut p);
    });
    DataflowReport::analyze("cloverleaf2d", &cloverleaf2d::loop_specs(), &rec).export_plan()
}

fn bench_opensbli(c: &mut Criterion) {
    let n = 48;
    let cfg = opensbli::Config {
        n,
        iterations: 1,
        variant: opensbli::Variant::StoreAll,
        mode: ExecMode::Serial,
        ..opensbli::Config::default()
    };
    let plan = opensbli_plan(&cfg);
    assert!(
        !plan.groups.is_empty(),
        "opensbli_sa must certify a fusion group"
    );

    let mut g = c.benchmark_group("fusion/opensbli_rhs");
    g.throughput(Throughput::Elements(n.pow(3) as u64));
    g.sample_size(10);
    for (label, plan) in [("baseline", None), ("fused", Some(plan))] {
        let cfg = opensbli::Config {
            plan,
            ..cfg.clone()
        };
        g.bench_function(BenchmarkId::new("step", label), |b| {
            let mut sim = opensbli::OpenSbli::new(cfg.clone());
            let mut p = Profile::new();
            b.iter(|| sim.step(&mut p))
        });
    }
    g.finish();
}

fn bench_clover(c: &mut Criterion) {
    let n = 192;
    let cfg = cloverleaf2d::Config {
        nx: n,
        ny: n,
        iterations: 1,
        mode: ExecMode::Serial,
        advection: cloverleaf2d::Advection::VanLeer,
        ..cloverleaf2d::Config::default()
    };
    let plan = clover_plan(&cfg);
    assert!(
        !plan.groups.is_empty(),
        "cloverleaf2d must certify a fusion group"
    );

    let mut g = c.benchmark_group("fusion/clover_cycle");
    g.throughput(Throughput::Elements((n * n) as u64));
    g.sample_size(10);
    for (label, plan) in [("baseline", None), ("fused", Some(plan))] {
        let cfg = cloverleaf2d::Config {
            plan,
            ..cfg.clone()
        };
        g.bench_function(BenchmarkId::new("cycle", label), |b| {
            let mut sim = cloverleaf2d::Clover2::new(cfg.clone());
            let mut p = Profile::new();
            b.iter(|| sim.cycle(&mut p, None))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_opensbli, bench_clover);
criterion_main!(benches);
