//! Cache-blocking tiling on the host (the measured counterpart of
//! Figure 9): a chain of stencil loops executed untiled vs tiled at
//! several tile heights. On any machine with a cache-to-memory bandwidth
//! gap the tiled execution wins once the per-tile working set fits.

use bwb_core::ops::{Dat2, ExecMode, LoopChain2, Profile, Range2};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn chain(n: usize, loops: usize, mode: ExecMode) -> (LoopChain2<f64>, Vec<Dat2<f64>>) {
    let mut store: Vec<Dat2<f64>> = (0..=loops)
        .map(|f| {
            let mut d = Dat2::new(&format!("f{f}"), n, n, 1);
            if f == 0 {
                d.init_with(|i, j| ((i * 7 + j * 13) % 32) as f64);
            }
            d
        })
        .collect();
    store[0].fill_all(0.5);
    let mut chain = LoopChain2::new(mode);
    for l in 0..loops {
        chain.add(
            &format!("blur{l}"),
            Range2::interior(n, n),
            1,
            5.0,
            vec![l + 1],
            vec![l],
            |_i, _j, out, ins| {
                out.set(
                    0,
                    0.2 * (ins.get(0, 0, 0)
                        + ins.get(0, -1, 0)
                        + ins.get(0, 1, 0)
                        + ins.get(0, 0, -1)
                        + ins.get(0, 0, 1)),
                );
            },
        );
    }
    (chain, store)
}

fn bench_tiling(c: &mut Criterion) {
    let n = 1024; // 8 MB per field: the chain working set exceeds L2
    let loops = 6;
    let mut g = c.benchmark_group("loop_chain_tiling");
    g.throughput(Throughput::Elements((n * n * loops) as u64));

    let (ch, mut store) = chain(n, loops, ExecMode::Rayon);
    let mut profile = Profile::new();
    g.bench_function("untiled", |b| {
        b.iter(|| ch.execute(&mut store, &mut profile))
    });

    for &tile in &[32usize, 128, 512] {
        let (ch, mut store) = chain(n, loops, ExecMode::Rayon);
        let mut profile = Profile::new();
        g.bench_with_input(BenchmarkId::new("tiled", tile), &tile, |b, &tile| {
            b.iter(|| ch.execute_tiled(&mut store, &mut profile, tile))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tiling
}
criterion_main!(benches);
