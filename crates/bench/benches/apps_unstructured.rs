//! Unstructured-mesh kernels on the host — the measured material behind
//! Figure 4: the indirect flux kernels under the serial, colored, and
//! gather ("MPI vec" shape) execution schemes.

use bwb_core::apps::{mgcfd, volna};
use bwb_core::op2::{par_loop_gather, ExecModeU, GatherScratch};
use bwb_core::ops::Profile;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_mgcfd_flux(c: &mut Criterion) {
    let mut g = c.benchmark_group("mgcfd_compute_flux");
    for &(label, mode) in &[
        ("serial", ExecModeU::Serial),
        ("colored", ExecModeU::Colored),
    ] {
        let mut sim = mgcfd::MgCfd::new(mgcfd::Config {
            n: 129,
            levels: 1,
            mode,
            ..mgcfd::Config::default()
        });
        sim.perturb(0.05);
        let edges = sim.levels[0].edges.size as u64;
        let mut profile = Profile::new();
        g.throughput(Throughput::Elements(edges));
        g.bench_with_input(BenchmarkId::new("rusanov", label), &edges, |b, _| {
            b.iter(|| sim.compute_flux(&mut profile, 0))
        });
    }
    g.finish();
}

fn bench_volna_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("volna_step");
    for &(label, mode) in &[
        ("serial", ExecModeU::Serial),
        ("colored", ExecModeU::Colored),
    ] {
        let mut sim = volna::Volna::new(volna::Config {
            n: 128,
            iterations: 0,
            mode,
            ..volna::Config::default()
        });
        let cells = sim.cells.size as u64;
        let mut profile = Profile::new();
        g.throughput(Throughput::Elements(cells));
        g.bench_with_input(BenchmarkId::new("nswe", label), &cells, |b, _| {
            b.iter(|| sim.step(&mut profile))
        });
    }
    g.finish();
}

fn bench_gather_lanes(c: &mut Criterion) {
    // The "MPI vec" execution shape at different lane widths: functionally
    // identical, staging accounted — compare against serial/colored above.
    use bwb_core::op2::{DatU, Map, Set};
    let n = 1 << 15;
    let nodes = Set::new("nodes", n + 1);
    let edges = Set::new("edges", n);
    let idx: Vec<u32> = (0..n).flat_map(|e| [e as u32, e as u32 + 1]).collect();
    let map = Map::new("e2n", &edges, &nodes, 2, idx);

    let mut g = c.benchmark_group("gather_lanes");
    g.throughput(Throughput::Elements(n as u64));
    for &lanes in &[1usize, 8, 16] {
        let mut acc = DatU::<f64>::new("acc", &nodes, 1);
        let mut profile = Profile::new();
        let mut scratch = GatherScratch::new();
        let m = &map;
        g.bench_with_input(BenchmarkId::new("inc", lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                par_loop_gather(
                    &mut profile,
                    "inc",
                    lanes,
                    n,
                    &mut [&mut acc],
                    &mut scratch,
                    8,
                    16,
                    4.0,
                    |e, out| {
                        out.add(0, m.get(e, 0), 0, 1.0);
                        out.add(0, m.get(e, 1), 0, -0.5);
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mgcfd_flux, bench_volna_step, bench_gather_lanes
}
criterion_main!(benches);
