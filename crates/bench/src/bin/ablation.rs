//! Ablation studies over the design choices DESIGN.md calls out: vary one
//! architectural parameter at a time and watch the figure-level outputs
//! move. This demonstrates that the reproductions derive from mechanisms,
//! not fitted outputs.
//!
//! ```sh
//! cargo run --release -p bwb-bench --bin ablation
//! ```

use bwb_core::apps::characterize::characterize;
use bwb_core::apps::AppId;
use bwb_core::machine::platforms;
use bwb_core::perfmodel::{paper_scale, predict, ModelInput, RunConfig};
use bwb_core::report::Table;

fn best_seconds(p: &bwb_core::machine::Platform, app: AppId) -> f64 {
    let ch = characterize(app);
    let (points, iterations) = paper_scale(app);
    let configs = if app.is_unstructured() {
        RunConfig::unstructured_set()
    } else {
        RunConfig::structured_set()
    };
    configs
        .iter()
        .filter_map(|&config| {
            predict(&ModelInput {
                platform: p,
                character: &ch,
                config,
                points,
                iterations,
            })
        })
        .map(|pr| pr.seconds)
        .fold(f64::INFINITY, f64::min)
}

/// Ablation 1: sweep the Xeon MAX's achievable bandwidth from DDR-class to
/// HBM-class and beyond — where does each app stop benefiting?
fn ablate_bandwidth() {
    println!("## Ablation 1: Xeon MAX bandwidth sweep (everything else fixed)\n");
    let apps = [
        AppId::CloverLeaf2D,
        AppId::OpenSbliSn,
        AppId::MgCfd,
        AppId::MiniBude,
    ];
    let mut header = vec!["triad GB/s".to_owned()];
    header.extend(apps.iter().map(|a| a.label().to_owned()));
    let hrefs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hrefs);
    let baseline: Vec<f64> = {
        let mut p = platforms::xeon_max_9480();
        p.measured_triad_gbs = 300.0;
        p.measured_triad_ss_gbs = None;
        apps.iter().map(|&a| best_seconds(&p, a)).collect()
    };
    for bw in [300.0, 600.0, 1000.0, 1446.0, 2000.0, 2600.0] {
        let mut p = platforms::xeon_max_9480();
        p.measured_triad_gbs = bw;
        p.measured_triad_ss_gbs = None;
        let mut cells = vec![format!("{bw:.0}")];
        for (i, &a) in apps.iter().enumerate() {
            let s = baseline[i] / best_seconds(&p, a);
            cells.push(format!("{s:.2}x"));
        }
        t.row(&cells);
    }
    println!("{}", t.render());
    println!("reading: bandwidth-bound apps scale almost linearly until the latency/compute");
    println!("terms bind; miniBUDE never moves — the paper's flop/byte-shift argument.\n");
}

/// Ablation 2: sweep memory latency — who is latency-sensitive?
fn ablate_latency() {
    println!("## Ablation 2: memory-latency sweep on the Xeon MAX\n");
    let apps = [
        AppId::CloverLeaf2D,
        AppId::Acoustic,
        AppId::MgCfd,
        AppId::Volna,
    ];
    let mut header = vec!["latency ns".to_owned()];
    header.extend(apps.iter().map(|a| a.label().to_owned()));
    let hrefs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hrefs);
    let base: Vec<f64> = apps
        .iter()
        .map(|&a| best_seconds(&platforms::xeon_max_9480(), a))
        .collect();
    for lat in [65.0, 130.0, 260.0, 520.0] {
        let mut p = platforms::xeon_max_9480();
        p.memory.latency_ns = lat;
        let mut cells = vec![format!("{lat:.0}")];
        for (i, &a) in apps.iter().enumerate() {
            cells.push(format!("{:.2}x", best_seconds(&p, a) / base[i]));
        }
        t.row(&cells);
    }
    println!("{}", t.render());
    println!("reading: two mechanisms respond — the unstructured apps' irregular-miss stalls,");
    println!("and (above ~2x) the Little's-law concurrency bound that throttles even streaming");
    println!("bandwidth, the McCalpin effect behind the MAX's 55-63% STREAM efficiency\n");
}

/// Ablation 3: sweep the SYCL-like per-kernel launch overhead — the §5.1
/// CloverLeaf observation as a dose-response curve.
fn ablate_launch_overhead() {
    println!("## Ablation 3: per-kernel launch overhead vs SYCL penalty\n");
    use bwb_core::perfmodel::{Compiler, Parallelization, Zmm};
    let mut t = Table::new(&[
        "launch µs",
        "CloverLeaf 2D SYCL/OpenMP",
        "OpenSBLI SN SYCL/OpenMP",
    ]);
    for us in [0.0, 5.0, 14.0, 30.0, 60.0] {
        let mut p = platforms::xeon_max_9480();
        p.kernel_launch_overhead_us = us;
        let rel = |app: AppId| {
            let ch = characterize(app);
            let (points, iterations) = paper_scale(app);
            let tfor = |par: Parallelization| {
                predict(&ModelInput {
                    platform: &p,
                    character: &ch,
                    config: RunConfig {
                        compiler: Compiler::OneApi,
                        zmm: Zmm::High,
                        hyperthreading: false,
                        par,
                    },
                    points,
                    iterations,
                })
                .unwrap()
                .seconds
            };
            tfor(Parallelization::MpiSyclFlat) / tfor(Parallelization::MpiOpenMp)
        };
        t.row(&[
            format!("{us:.0}"),
            format!("{:.3}", rel(AppId::CloverLeaf2D)),
            format!("{:.3}", rel(AppId::OpenSbliSn)),
        ]);
    }
    println!("{}", t.render());
    println!("reading: CloverLeaf's many small boundary kernels pay the launch tax fastest\n");
}

/// Ablation 4: tiling reuse factor (Figure 9's lever).
fn ablate_tiling_reuse() {
    println!("## Ablation 4: what chain-reuse factor would the paper's tiling gains imply?\n");
    let ch = characterize(AppId::CloverLeaf2D);
    let (points, iterations) = paper_scale(AppId::CloverLeaf2D);
    let mut t = Table::new(&["reuse", "MAX gain", "8360Y gain", "EPYC gain"]);
    for reuse in [2.0, 4.0, 8.0, 16.0] {
        let mut cells = vec![format!("{reuse:.0}")];
        for p in platforms::all_cpus() {
            let cfg = RunConfig {
                compiler: bwb_core::perfmodel::Compiler::OneApi,
                zmm: bwb_core::perfmodel::Zmm::High,
                hyperthreading: p.topology.smt_per_core > 1,
                par: bwb_core::perfmodel::Parallelization::Mpi,
            };
            let pr = predict(&ModelInput {
                platform: &p,
                character: &ch,
                config: cfg,
                points,
                iterations,
            })
            .unwrap();
            let bytes = points as f64 * ch.bytes_per_point_iter * iterations as f64;
            let t_dram = pr.t_bandwidth / reuse;
            let t_llc = bytes * 0.75 / (p.llc_stream_bw_gbs() * 1e9);
            let tiled = t_dram.max(pr.t_compute * 1.15)
                + t_llc
                + pr.t_cache
                + pr.t_latency
                + pr.t_mpi
                + pr.t_launch;
            cells.push(format!("{:.2}x", pr.seconds / tiled));
        }
        t.row(&cells);
    }
    println!("{}", t.render());
    println!("reading: gains saturate at the cache:memory bandwidth ratio (3.8/6.3/14)\n");
}

fn main() {
    ablate_bandwidth();
    ablate_latency();
    ablate_launch_overhead();
    ablate_tiling_reuse();
}
