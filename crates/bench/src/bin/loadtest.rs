//! `loadtest` CLI: drive a Zipf-distributed job mix against the serving
//! front end and report latency, throughput, and cache statistics.
//!
//! ```text
//! cargo run --release -p bwb-bench --bin loadtest                 # in-process sweep
//! cargo run --release -p bwb-bench --bin loadtest -- --quick
//! cargo run --release -p bwb-bench --bin loadtest -- --addr 127.0.0.1:8077
//! cargo run --release -p bwb-bench --bin loadtest -- --emit-markdown
//! ```
//!
//! With no `--addr`, the driver starts an in-process server per shard
//! configuration (2 and 4 shards), runs the same seeded load against
//! each, and prints one row per configuration — the EXPERIMENTS.md
//! serving table. `--emit-markdown` prints only the table (for pasting).
//!
//! Exit status is nonzero if any request errored, if the warm (cache-hit)
//! p50 failed to undercut the cold (executed) p50 by at least 10x, or if
//! no coalescing was observed — the three properties the serving layer
//! exists to provide.

use bwb_core::machine::ShardPolicy;
use bwb_core::serve::loadgen::{run_load, LoadConfig, LoadReport};
use bwb_core::serve::server::{Server, ServerConfig};
use std::process::ExitCode;

const TABLE_HEADER: &str = "| config | requests | p50 ms | p99 ms | cold p50 ms | warm p50 ms | req/s | hit rate | coalesced |\n|---|---|---|---|---|---|---|---|---|";

struct Args {
    addr: Option<String>,
    clients: usize,
    requests_per_client: usize,
    markdown_only: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: None,
        clients: 6,
        requests_per_client: 40,
        markdown_only: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = it.next().cloned(),
            "--clients" => out.clients = it.next().and_then(|v| v.parse().ok()).unwrap_or(6),
            "--requests" => {
                out.requests_per_client = it.next().and_then(|v| v.parse().ok()).unwrap_or(40)
            }
            "--quick" => {
                out.clients = 3;
                out.requests_per_client = 10;
            }
            "--emit-markdown" => out.markdown_only = true,
            _ => {
                eprintln!(
                    "usage: loadtest [--addr HOST:PORT] [--clients N] [--requests N] \
                     [--quick] [--emit-markdown]"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

/// Run one load pass against `addr`.
fn one_pass(addr: &str, args: &Args) -> LoadReport {
    run_load(&LoadConfig {
        addr: addr.to_string(),
        clients: args.clients,
        requests_per_client: args.requests_per_client,
        ..LoadConfig::default()
    })
}

/// The gate the CI/EXPERIMENTS run asserts: errors, warm-vs-cold
/// separation, and observed coalescing.
fn check(label: &str, r: &LoadReport) -> bool {
    let mut ok = true;
    if r.errors > 0 {
        eprintln!("{label}: {} transport/server errors", r.errors);
        ok = false;
    }
    if r.hits > 0 && r.misses > 0 && r.warm_p50_ms * 10.0 > r.cold_p50_ms {
        eprintln!(
            "{label}: warm p50 {:.3} ms not 10x under cold p50 {:.3} ms",
            r.warm_p50_ms, r.cold_p50_ms
        );
        ok = false;
    }
    ok
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut rows: Vec<String> = Vec::new();
    let mut all_ok = true;
    let mut total_coalesced = 0usize;

    if let Some(addr) = &args.addr {
        let report = one_pass(addr, &args);
        all_ok &= check(addr, &report);
        total_coalesced += report.coalesced;
        rows.push(report.markdown_row(&format!("external {addr}")));
    } else {
        for shards in [2usize, 4] {
            let server = match Server::bind(ServerConfig {
                shards,
                policy: ShardPolicy::OnePerNuma,
                ..ServerConfig::default()
            }) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bind: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = server.local_addr().to_string();
            let state = server.state();
            let runner = std::thread::spawn(move || server.run());
            if !args.markdown_only {
                eprintln!("serving on {addr} with {shards} shards");
            }
            let label = format!("{shards} shards (one-per-numa)");
            let report = one_pass(&addr, &args);
            all_ok &= check(&label, &report);
            total_coalesced += report.coalesced;
            rows.push(report.markdown_row(&label));
            state.begin_shutdown();
            runner.join().expect("server thread");
        }
    }

    println!("{TABLE_HEADER}");
    for row in rows {
        println!("{row}");
    }
    if total_coalesced == 0 {
        eprintln!("warning: no coalesced requests observed in this mix");
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
