//! Reproduce the paper's Figure 2: message-passing latency on the modelled
//! platforms, plus a live thread-to-thread probe on this host (the
//! runnable analogue of the core-to-core-latency tool the paper uses).

fn main() {
    bwb_bench::emit(bwb_core::Figure::Fig2Latency);

    println!("\nhost probe (thread ping-pong, scheduler-placed):");
    let p = bwb_core::machine::measure_thread_latency(200_000);
    println!(
        "  one-way latency ~ {:.0} ns over {} round trips",
        p.one_way_ns, p.round_trips
    );
}
