//! Reproduce the paper's Figure 6 (see the module docs of bwb-perfmodel
//! and EXPERIMENTS.md for the paper-vs-model comparison).

fn main() {
    bwb_bench::emit(bwb_core::Figure::Fig6Platforms);
}
