//! Plan-guided optimizing executor driver: record each supported app,
//! derive its certificate plan from the `dslcheck` dataflow analysis,
//! rerun with the plan applied, and report three things side by side:
//!
//! 1. **bit-identity** — the optimized run's checksum/field bits must equal
//!    the baseline's exactly (the whole point of certified transforms);
//! 2. **measured traffic** — baseline vs plan-guided moved bytes from the
//!    cache-simulator replay of the recording ([`bwb_dslcheck::replay`]),
//!    i.e. an actually-simulated number, not a model output;
//! 3. **modelled bound** — the `TrafficModel` streaming-gain prediction,
//!    printed next to the measurement so EXPERIMENTS.md can compare them.
//!
//! ```text
//! cargo run --release -p bwb-bench --bin optexec                # full sizes
//! cargo run --release -p bwb-bench --bin optexec -- --quick     # CI sizes
//! cargo run --release -p bwb-bench --bin optexec -- --emit-bench  # + BENCH_<host>.json
//! ```
//!
//! Exit status is 0 only when every app is bit-identical under its plan and
//! no plan-guided replay moves more bytes than its baseline — CI gates on
//! this (the `opt-exec` job).

use std::process::ExitCode;
use std::time::Instant;

use bwb_core::apps::{acoustic, cloverleaf2d, opensbli};
use bwb_core::ops::access::with_recording_full;
use bwb_core::ops::{ExecMode, OptPlan, Profile};
use bwb_core::shmpi::Universe;
use bwb_dslcheck::{replay, DataflowReport, ReplayConfig, ReplayStats};

/// One app's baseline-vs-optimized comparison.
struct AppResult {
    name: &'static str,
    /// `"k=v k=v"` config summary for the report.
    config: String,
    bit_identical: bool,
    /// Median wall time per rep, milliseconds.
    base_ms: f64,
    opt_ms: f64,
    /// Cache-simulator replay of the recorded segment.
    base_replay: ReplayStats,
    opt_replay: ReplayStats,
    /// Modelled NT-store gain bound from `TrafficModel` (×, ≥ 1).
    modelled_gain: f64,
    /// Certificates the derived plan carries.
    fusion_groups: usize,
    elisions: usize,
    nt: usize,
    /// Cross-rank bytes actually sent (distributed apps only).
    comm_bytes: Option<(u64, u64)>,
}

impl AppResult {
    fn traffic_reduction_pct(&self) -> f64 {
        let b = self.base_replay.moved_bytes as f64;
        if b == 0.0 {
            return 0.0;
        }
        100.0 * (b - self.opt_replay.moved_bytes as f64) / b
    }

    fn ok(&self) -> bool {
        self.bit_identical && self.opt_replay.moved_bytes <= self.base_replay.moved_bytes
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Time `reps` calls of `f`, returning the median milliseconds.
fn time_reps<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut ms: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    median(&mut ms)
}

/// OpenSBLI Store-All: the 10-loop derivative+combine RHS fuses under the
/// certified plan; bit-compare the all-field checksum.
fn run_opensbli(reps: usize, quick: bool) -> AppResult {
    let (n, iters) = if quick { (12, 2) } else { (28, 4) };
    let cfg = opensbli::Config {
        n,
        iterations: iters,
        variant: opensbli::Variant::StoreAll,
        mode: ExecMode::Serial,
        ..opensbli::Config::default()
    };

    let rcfg = cfg.clone();
    let ((), rec) = with_recording_full(move || {
        let mut sim = opensbli::OpenSbli::new(rcfg);
        let mut p = Profile::new();
        sim.step(&mut p);
    });
    let report = DataflowReport::analyze("opensbli_sa", &opensbli::loop_specs(), &rec);
    let plan = report.export_plan();

    let checksum = |plan: Option<OptPlan>| -> u64 {
        let mut sim = opensbli::OpenSbli::new(opensbli::Config {
            plan,
            ..cfg.clone()
        });
        let mut p = Profile::new();
        for _ in 0..iters {
            sim.step(&mut p);
        }
        sim.checksum().to_bits()
    };
    let base_bits = checksum(None);
    let opt_bits = checksum(Some(plan.clone()));

    let base_ms = time_reps(reps, || {
        checksum(None);
    });
    let opt_ms = time_reps(reps, || {
        checksum(Some(plan.clone()));
    });

    let rcfg = ReplayConfig::default();
    AppResult {
        name: "opensbli_sa",
        config: format!("n={n} iters={iters}"),
        bit_identical: base_bits == opt_bits,
        base_ms,
        opt_ms,
        base_replay: replay(&rec, None, &rcfg),
        opt_replay: replay(&rec, Some(&plan), &rcfg),
        modelled_gain: report.traffic.streaming_gain_bound(),
        fusion_groups: plan.groups.len(),
        elisions: plan.elisions.len(),
        nt: plan.nt.len(),
        comm_bytes: None,
    }
}

/// Single-rank CloverLeaf2D: `ideal_gas`+`viscosity` fuse; bit-compare the
/// full density field.
fn run_clover_single(reps: usize, quick: bool) -> AppResult {
    let (nx, iters) = if quick { (24, 2) } else { (192, 4) };
    let cfg = cloverleaf2d::Config {
        nx,
        ny: nx,
        iterations: iters,
        mode: ExecMode::Serial,
        advection: cloverleaf2d::Advection::VanLeer,
        ..cloverleaf2d::Config::default()
    };

    let rcfg = cfg.clone();
    let ((), rec) = with_recording_full(move || {
        let mut sim = cloverleaf2d::Clover2::new(rcfg);
        let mut p = Profile::new();
        for _ in 0..2 {
            sim.cycle(&mut p, None);
        }
        sim.field_summary(&mut p);
    });
    let report = DataflowReport::analyze("cloverleaf2d", &cloverleaf2d::loop_specs(), &rec);
    let plan = report.export_plan();

    let density_bits = |plan: Option<OptPlan>| -> Vec<u64> {
        let mut sim = cloverleaf2d::Clover2::new(cloverleaf2d::Config {
            plan,
            ..cfg.clone()
        });
        let mut p = Profile::new();
        for _ in 0..iters {
            sim.cycle(&mut p, None);
        }
        let mut bits = Vec::with_capacity(nx * nx);
        for j in 0..nx as isize {
            for i in 0..nx as isize {
                bits.push(sim.density().get(i, j).to_bits());
            }
        }
        bits
    };
    let base_bits = density_bits(None);
    let opt_bits = density_bits(Some(plan.clone()));

    let base_ms = time_reps(reps, || {
        density_bits(None);
    });
    let opt_ms = time_reps(reps, || {
        density_bits(Some(plan.clone()));
    });

    let rcfg = ReplayConfig::default();
    AppResult {
        name: "cloverleaf2d",
        config: format!("nx={nx} iters={iters}"),
        bit_identical: base_bits == opt_bits,
        base_ms,
        opt_ms,
        base_replay: replay(&rec, None, &rcfg),
        opt_replay: replay(&rec, Some(&plan), &rcfg),
        modelled_gain: report.traffic.streaming_gain_bound(),
        fusion_groups: plan.groups.len(),
        elisions: plan.elisions.len(),
        nt: plan.nt.len(),
        comm_bytes: None,
    }
}

/// 4-rank distributed CloverLeaf2D: fusion plus elision of the certified
/// velocity-exchange sites; bit-compare the gathered global density and
/// report the cross-rank byte reduction from the elided exchanges.
fn run_clover_dist(reps: usize, quick: bool) -> AppResult {
    let (nx, iters) = if quick { (24, 2) } else { (96, 4) };
    let cfg = cloverleaf2d::Config {
        nx,
        ny: nx,
        iterations: iters,
        mode: ExecMode::Serial,
        advection: cloverleaf2d::Advection::VanLeer,
        ..cloverleaf2d::Config::default()
    };

    let rec_cfg = cfg.clone();
    let out = Universe::run(4, move |c| {
        let (_r, rec) =
            with_recording_full(|| cloverleaf2d::Clover2::run_distributed(c, rec_cfg.clone()));
        rec
    });
    let rec = out.results.into_iter().next().expect("rank 0 recording");
    let report = DataflowReport::analyze("clover2d_dist", &cloverleaf2d::loop_specs(), &rec);
    let plan = report.export_plan();

    let gathered = |plan: Option<OptPlan>| -> (Vec<u64>, u64) {
        let cfg = cloverleaf2d::Config {
            plan,
            ..cfg.clone()
        };
        let out = Universe::run(4, move |c| {
            let (_p, g) = cloverleaf2d::Clover2::run_distributed(c, cfg.clone());
            g
        });
        let field = out.results[0]
            .as_ref()
            .expect("gathered density on rank 0")
            .iter()
            .map(|v| v.to_bits())
            .collect();
        (field, out.stats.total_bytes())
    };
    let (base_bits, base_comm) = gathered(None);
    let (opt_bits, opt_comm) = gathered(Some(plan.clone()));

    let base_ms = time_reps(reps, || {
        gathered(None);
    });
    let opt_ms = time_reps(reps, || {
        gathered(Some(plan.clone()));
    });

    let rcfg = ReplayConfig::default();
    AppResult {
        name: "clover2d_dist",
        config: format!("nx={nx} iters={iters} ranks=4"),
        bit_identical: base_bits == opt_bits,
        base_ms,
        opt_ms,
        base_replay: replay(&rec, None, &rcfg),
        opt_replay: replay(&rec, Some(&plan), &rcfg),
        modelled_gain: report.traffic.streaming_gain_bound(),
        fusion_groups: plan.groups.len(),
        elisions: plan.elisions.len(),
        nt: plan.nt.len(),
        comm_bytes: Some((base_comm, opt_comm)),
    }
}

/// Acoustic leapfrog: the rotating output buffers are reuse-eligible for
/// streaming stores, but at n=64 f32 the streamed rows are 256 bytes —
/// under the written-run floor where per-row staging overhead dominates —
/// so the plan carries no NT certs and the optimized run keeps the plain
/// store path; bit-compare the final field energy.
fn run_acoustic(reps: usize, quick: bool) -> AppResult {
    let (n, iters) = if quick { (16, 3) } else { (64, 6) };
    let cfg = acoustic::Config {
        n,
        iterations: iters,
        mode: ExecMode::Serial,
        ..acoustic::Config::default()
    };

    let rcfg = cfg.clone();
    let ((), rec) = with_recording_full(move || {
        let mut sim = acoustic::Acoustic::new(rcfg);
        let mut p = Profile::new();
        for _ in 0..3 {
            sim.step_once(&mut p);
        }
        sim.energy(&mut p);
    });
    let report = DataflowReport::analyze("acoustic", &acoustic::loop_specs(), &rec);
    let plan = report.export_plan();

    let energy_bits = |plan: Option<OptPlan>| -> u64 {
        let mut sim = acoustic::Acoustic::new(acoustic::Config {
            plan,
            ..cfg.clone()
        });
        let mut p = Profile::new();
        for _ in 0..iters {
            sim.step_once(&mut p);
        }
        sim.energy(&mut p).to_bits()
    };
    let base_bits = energy_bits(None);
    let opt_bits = energy_bits(Some(plan.clone()));

    let base_ms = time_reps(reps, || {
        energy_bits(None);
    });
    let opt_ms = time_reps(reps, || {
        energy_bits(Some(plan.clone()));
    });

    let rcfg = ReplayConfig::default();
    AppResult {
        name: "acoustic",
        config: format!("n={n} iters={iters}"),
        bit_identical: base_bits == opt_bits,
        base_ms,
        opt_ms,
        base_replay: replay(&rec, None, &rcfg),
        opt_replay: replay(&rec, Some(&plan), &rcfg),
        modelled_gain: report.traffic.streaming_gain_bound(),
        fusion_groups: plan.groups.len(),
        elisions: plan.elisions.len(),
        nt: plan.nt.len(),
        comm_bytes: None,
    }
}

fn emit_bench(results: &[AppResult], reps: usize) {
    let host = std::process::Command::new("hostname")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let apps = results
        .iter()
        .map(|r| {
            let comm = r
                .comm_bytes
                .map(|(b, o)| format!(",\"comm_bytes\":{{\"baseline\":{b},\"optimized\":{o}}}"))
                .unwrap_or_default();
            format!(
                concat!(
                    "{{\"app\":\"{}\",\"config\":\"{}\",\"bit_identical\":{},",
                    "\"median_ms\":{{\"baseline\":{:.3},\"optimized\":{:.3}}},",
                    "\"measured_traffic_bytes\":{{\"baseline\":{},\"optimized\":{}}},",
                    "\"measured_reduction_pct\":{:.2},\"modelled_nt_gain\":{:.4},",
                    "\"certs\":{{\"fusion_groups\":{},\"elisions\":{},\"nt\":{}}}{}}}"
                ),
                r.name,
                r.config,
                r.bit_identical,
                r.base_ms,
                r.opt_ms,
                r.base_replay.moved_bytes,
                r.opt_replay.moved_bytes,
                r.traffic_reduction_pct(),
                r.modelled_gain,
                r.fusion_groups,
                r.elisions,
                r.nt,
                comm,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    // Analyzer wall-times, static (execution-free speccheck over the
    // declared chain) vs recorded (instrumented run + analysis), so the
    // certification-latency numbers in EXPERIMENTS.md are pinned to a
    // snapshot alongside the executor measurements they certify.
    let speccheck = bwb_dslcheck::crosscheck_all()
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "{{\"app\":\"{}\",\"certs\":{},",
                    "\"static_us\":{:.1},\"recorded_us\":{:.1}}}"
                ),
                c.app,
                c.static_certs,
                c.static_nanos as f64 / 1e3,
                c.dynamic_nanos as f64 / 1e3,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    // Placement-search wall times and searched-space sizes (the static
    // half of the placement story): how long placecheck takes to search
    // and self-verify every gate rank count per app, and how many
    // candidates its dominance proof covers — the scaling trajectory the
    // O(100)-rank work tracks.
    let placecheck = {
        let platform = bwb_core::machine::platforms::xeon_max_9480();
        bwb_dslcheck::placecheck::FLOW_APPS
            .iter()
            .map(|app| {
                let t0 = std::time::Instant::now();
                let mut searched = 0usize;
                let mut clean = true;
                for &n in &bwb_dslcheck::placecheck::GATE_RANKS {
                    let plan =
                        bwb_dslcheck::placecheck::search(app, n, &platform).expect("registry app");
                    searched += plan.space.len();
                    clean &= bwb_dslcheck::placecheck::verify_plan(&plan, &platform).is_empty();
                }
                format!(
                    "{{\"app\":\"{}\",\"searched\":{},\"clean\":{},\"search_us\":{:.1}}}",
                    app,
                    searched,
                    clean,
                    t0.elapsed().as_nanos() as f64 / 1e3,
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    let json = format!(
        "{{\"bench\":\"optexec\",\"host\":\"{host}\",\"reps\":{reps},\
         \"apps\":[{apps}],\"speccheck\":[{speccheck}],\"placecheck\":[{placecheck}]}}"
    );
    let path = format!("BENCH_{host}.json");
    std::fs::write(&path, &json).expect("write bench json");
    eprintln!("wrote {path}");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let emit = args.iter().any(|a| a == "--emit-bench");
    let reps = if quick { 1 } else { 3 };

    let results = vec![
        run_opensbli(reps, quick),
        run_clover_single(reps, quick),
        run_clover_dist(reps, quick),
        run_acoustic(reps, quick),
    ];

    println!(
        "{:<14} {:<22} {:>4} {:>9} {:>8} {:>12} {:>12} {:>7} {:>8} {:>14}  certs",
        "app",
        "config",
        "bits",
        "base ms",
        "opt ms",
        "base bytes",
        "opt bytes",
        "Δ%",
        "modelled",
        "comm B base→opt"
    );
    for r in &results {
        let comm = r
            .comm_bytes
            .map(|(b, o)| format!("{b}→{o}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<14} {:<22} {:>4} {:>9.2} {:>8.2} {:>12} {:>12} {:>6.1}% {:>7.3}x {:>14}  f={} e={} nt={}",
            r.name,
            r.config,
            if r.bit_identical { "ok" } else { "DIFF" },
            r.base_ms,
            r.opt_ms,
            r.base_replay.moved_bytes,
            r.opt_replay.moved_bytes,
            r.traffic_reduction_pct(),
            r.modelled_gain,
            comm,
            r.fusion_groups,
            r.elisions,
            r.nt,
        );
    }

    if emit {
        emit_bench(&results, reps);
    }

    if results.iter().all(|r| r.ok()) {
        ExitCode::SUCCESS
    } else {
        for r in results.iter().filter(|r| !r.ok()) {
            eprintln!(
                "FAIL {}: bit_identical={} base_bytes={} opt_bytes={}",
                r.name, r.bit_identical, r.base_replay.moved_bytes, r.opt_replay.moved_bytes
            );
        }
        ExitCode::FAILURE
    }
}
