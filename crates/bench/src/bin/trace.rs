//! `trace` CLI: run one application under the bwb-trace recorder, write a
//! Perfetto-loadable Chrome `trace_event` JSON to `target/trace/<app>.json`,
//! and print an ASCII summary (rollup table, flamegraph, per-thread
//! timeline) to stdout.
//!
//! ```text
//! cargo run --release -p bwb-bench --bin trace -- cloverleaf2d
//! cargo run --release -p bwb-bench --bin trace -- cloverleaf2d --ranks 4
//! cargo run --release -p bwb-bench --bin trace -- --list
//! ```
//!
//! Exit status is nonzero if the recorded trace fails well-formedness
//! validation or the exported JSON fails the trace_event schema check —
//! CI runs this as the trace smoke test.

use bwb_core::apps::{
    acoustic, cloverleaf2d, cloverleaf3d, mgcfd, minibude, miniweather, opensbli, volna,
};
use bwb_core::machine::{platforms, Roofline};
use bwb_core::shmpi::Universe;
use bwb_core::trace;
use std::process::ExitCode;

const APPS: &[&str] = &[
    "acoustic",
    "cloverleaf2d",
    "cloverleaf3d",
    "mgcfd",
    "minibude",
    "miniweather",
    "opensbli-sa",
    "opensbli-sn",
    "volna",
];

/// Run one app (CI-sized default config) with tracing enabled. `ranks > 1`
/// selects the distributed driver where the app has one.
fn run_traced(app: &str, ranks: usize) -> Result<trace::Trace, String> {
    let ((), tr) = trace::with_tracing(|| match app {
        "acoustic" => {
            let cfg = acoustic::Config::default();
            if ranks > 1 {
                let _ = Universe::run(ranks, move |c| {
                    acoustic::Acoustic::run_distributed(c, cfg.clone()).1
                });
            } else {
                let _ = acoustic::Acoustic::run(cfg);
            }
        }
        "cloverleaf2d" => {
            let cfg = cloverleaf2d::Config::default();
            if ranks > 1 {
                let _ = Universe::run(ranks, move |c| {
                    cloverleaf2d::Clover2::run_distributed(c, cfg.clone()).1
                });
            } else {
                let _ = cloverleaf2d::Clover2::run(cfg);
            }
        }
        "cloverleaf3d" => {
            let _ = cloverleaf3d::Clover3::run(cloverleaf3d::Config::default());
        }
        "mgcfd" => {
            let _ = mgcfd::MgCfd::run(mgcfd::Config::default());
        }
        "minibude" => {
            let _ = minibude::MiniBude::run(minibude::Config::default());
        }
        "miniweather" => {
            let _ = miniweather::MiniWeather::run(miniweather::Config::default());
        }
        "opensbli-sa" => {
            let _ = opensbli::OpenSbli::run(opensbli::Config {
                variant: opensbli::Variant::StoreAll,
                ..opensbli::Config::default()
            });
        }
        "opensbli-sn" => {
            let _ = opensbli::OpenSbli::run(opensbli::Config {
                variant: opensbli::Variant::StoreNone,
                ..opensbli::Config::default()
            });
        }
        "volna" => {
            let _ = volna::Volna::run(volna::Config::default());
        }
        other => panic!("unknown app '{other}' (use --list)"),
    });
    Ok(tr)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for a in APPS {
            println!("{a}");
        }
        return ExitCode::SUCCESS;
    }
    let app = match args.iter().find(|a| !a.starts_with("--")) {
        Some(a) if APPS.contains(&a.as_str()) => a.clone(),
        Some(a) => {
            eprintln!("unknown app '{a}'; use --list");
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!("usage: trace <app> [--ranks N] [--out DIR] | --list");
            return ExitCode::FAILURE;
        }
    };
    let ranks = args
        .iter()
        .position(|a| a == "--ranks")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/trace"));

    let tr = match run_traced(&app, ranks) {
        Ok(tr) => tr,
        Err(e) => {
            eprintln!("trace run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Gate on well-formedness before exporting anything.
    let problems = trace::validate(&tr);
    if !problems.is_empty() {
        eprintln!("malformed trace ({} problems):", problems.len());
        for p in &problems {
            eprintln!("  {p}");
        }
        return ExitCode::FAILURE;
    }

    // Export Chrome trace_event JSON with roofline annotations for the
    // paper's flagship platform, then re-parse as a schema self-check.
    let roof = Roofline::fp64(&platforms::xeon_max_9480());
    let json = trace::to_chrome_json(
        &tr,
        &trace::ChromeOptions {
            roofline: Some(roof),
        },
    );
    match trace::json::parse(&json) {
        Ok(doc) => {
            let schema = trace::json::validate_chrome(&doc);
            if !schema.is_empty() {
                eprintln!("exported JSON fails trace_event schema: {schema:?}");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("exported JSON unparseable: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join(format!("{app}.json"));
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }

    // ASCII summary.
    println!(
        "trace of {app} ({} threads, {} events, {} dropped)",
        tr.threads.len(),
        tr.total_events(),
        tr.total_dropped()
    );
    println!();
    println!(
        "{}",
        trace::Rollup::from_trace(&tr).render_table(Some(&roof))
    );
    println!("{}", trace::flamegraph(&tr, 24));
    println!("{}", trace::timeline(&tr, 72));
    println!(
        "[trace written to {}; open in https://ui.perfetto.dev]",
        path.display()
    );
    ExitCode::SUCCESS
}
