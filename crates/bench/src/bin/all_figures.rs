//! Reproduce all nine figures in sequence (EXPERIMENTS.md source).

fn main() {
    for f in bwb_core::Figure::ALL {
        bwb_bench::emit(f);
        println!("\n{}\n", "#".repeat(78));
    }
}
