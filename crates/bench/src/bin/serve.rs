//! `serve` CLI: run the benchmark-serving front end.
//!
//! ```text
//! cargo run --release -p bwb-bench --bin serve                  # ephemeral port
//! cargo run --release -p bwb-bench --bin serve -- --port 8077
//! cargo run --release -p bwb-bench --bin serve -- --shards 4 --policy packed
//! ```
//!
//! The server announces its address on stdout (`listening on <addr>`),
//! serves jobs until SIGINT (or `POST /shutdown`), then drains in-flight
//! work and prints the final cache/flight statistics. See
//! `bwb_core::serve` for the job API.

use bwb_core::machine::ShardPolicy;
use bwb_core::serve::server::{Server, ServerConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_sig: i32) {
    // Async-signal-safe: a single relaxed-ordering-free atomic store.
    STOP.store(true, Ordering::SeqCst);
}

extern "C" {
    /// POSIX `signal(2)`: always available on the linux-gnu targets this
    /// workspace builds for; declared directly since the workspace vendors
    /// no libc crate.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--port N] [--shards N] [--policy numa|packed] \
         [--max-concurrent N] [--max-queue N]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    fn num(it: &mut std::slice::Iter<'_, String>) -> usize {
        match it.next().and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => usage(),
        }
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--port" => cfg.addr = format!("127.0.0.1:{}", num(&mut it)),
            "--shards" => cfg.shards = num(&mut it),
            "--max-concurrent" => cfg.max_concurrent = num(&mut it),
            "--max-queue" => cfg.max_queue = num(&mut it),
            "--policy" => {
                cfg.policy = match it.next().map(String::as_str) {
                    Some("numa") => ShardPolicy::OnePerNuma,
                    Some("packed") => ShardPolicy::Packed,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }

    // SAFETY: installing a handler that only stores to a static AtomicBool;
    // `on_sigint` is async-signal-safe and `signal` is always available on
    // the linux-gnu target.
    unsafe { signal(SIGINT, on_sigint) };

    let server = match Server::bind(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {}: {e}", cfg.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    eprintln!(
        "shards={} policy={} max_concurrent={} max_queue={} (SIGINT drains)",
        cfg.shards,
        cfg.policy.label(),
        cfg.max_concurrent,
        cfg.max_queue
    );

    let state = server.state();
    let watcher_state = server.state();
    std::thread::spawn(move || loop {
        if STOP.load(Ordering::SeqCst) {
            watcher_state.begin_shutdown();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    });

    server.run();
    eprintln!("drained after {} jobs", state.jobs_submitted());
    ExitCode::SUCCESS
}
