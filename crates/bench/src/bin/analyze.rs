//! `dslcheck` CLI: run every registered app and chain under the access/race
//! analyzers and emit a machine-readable violation report.
//!
//! Exit status is 0 only when every app is clean — CI gates on this.
//!
//! ```text
//! cargo run --release -p bwb-bench --bin analyze          # human + JSON
//! cargo run --release -p bwb-bench --bin analyze -- --json  # JSON only
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let json_only = std::env::args().any(|a| a == "--json");
    let reports = bwb_dslcheck::check_all();

    if !json_only {
        for r in &reports {
            let status = if r.clean() { "ok" } else { "FAIL" };
            eprintln!(
                "{:<14} {:>3} loop invocations checked ... {status}",
                r.app, r.loops_checked
            );
            for v in &r.violations {
                eprintln!("    {v}");
            }
        }
    }

    // JSON report on stdout: one object with per-app summaries and the flat
    // violation list (each violation already renders itself as JSON).
    let total: usize = reports.iter().map(|r| r.violations.len()).sum();
    let apps = reports
        .iter()
        .map(|r| {
            format!(
                "{{\"app\":\"{}\",\"loops_checked\":{},\"violations\":{}}}",
                r.app,
                r.loops_checked,
                r.violations.len()
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let violations = reports
        .iter()
        .flat_map(|r| r.violations.iter().map(|v| v.to_json()))
        .collect::<Vec<_>>()
        .join(",");
    println!("{{\"total_violations\":{total},\"apps\":[{apps}],\"violations\":[{violations}]}}");

    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
