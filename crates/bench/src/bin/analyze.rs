//! `dslcheck` CLI: run every registered app and chain under the access/race
//! analyzers and emit a machine-readable violation report.
//!
//! Exit status is 0 only when every app is clean — CI gates on this.
//!
//! ```text
//! cargo run --release -p bwb-bench --bin analyze              # human + JSON
//! cargo run --release -p bwb-bench --bin analyze -- --json      # JSON only
//! cargo run --release -p bwb-bench --bin analyze -- --dataflow  # whole-chain
//! cargo run --release -p bwb-bench --bin analyze -- --comm      # commcheck
//! cargo run --release -p bwb-bench --bin analyze -- --static    # speccheck
//! cargo run --release -p bwb-bench --bin analyze -- --placement # placecheck
//! cargo run --release -p bwb-bench --bin analyze -- --export-plans plans/
//! cargo run --release -p bwb-bench --bin analyze -- --placement --export-placements placements/
//! ```
//!
//! `--dataflow` switches to the whole-chain dataflow report: per-app lint
//! table (dead stores, redundant/too-shallow exchanges), the fusion plan,
//! and the derived traffic summary with streaming-store eligibility.
//!
//! `--comm` switches to commcheck: record every registered distributed app
//! at 4 ranks under a Xeon MAX placement and verify the cross-rank
//! communication schedule — envelope matching, deadlock freedom, match
//! determinism (certified `MatchPlan`), and per-phase load balance.

use std::process::ExitCode;

fn access_report(json_only: bool) -> usize {
    let reports = bwb_dslcheck::check_all();

    if !json_only {
        for r in &reports {
            let status = if r.clean() { "ok" } else { "FAIL" };
            eprintln!(
                "{:<14} {:>3} loop invocations checked ... {status}",
                r.app, r.loops_checked
            );
            for v in &r.violations {
                eprintln!("    {v}");
            }
        }
    }

    // JSON report on stdout: one object with per-app summaries and the flat
    // violation list (each violation already renders itself as JSON).
    let total: usize = reports.iter().map(|r| r.violations.len()).sum();
    let apps = reports
        .iter()
        .map(|r| {
            format!(
                "{{\"app\":\"{}\",\"loops_checked\":{},\"violations\":{}}}",
                r.app,
                r.loops_checked,
                r.violations.len()
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let violations = reports
        .iter()
        .flat_map(|r| r.violations.iter().map(|v| v.to_json()))
        .collect::<Vec<_>>()
        .join(",");
    println!("{{\"total_violations\":{total},\"apps\":[{apps}],\"violations\":[{violations}]}}");
    total
}

fn dataflow_report(json_only: bool, export_dir: Option<&str>) -> usize {
    let reports = bwb_dslcheck::dataflow_all();

    if !json_only {
        eprintln!(
            "{:<14} {:>5} {:>4} {:>5} {:>4} {:>4} {:>3} {:>6} {:>8} {:>6}  status",
            "app", "loops", "exch", "fuse", "grps", "elid", "nt", "elid%", "gain", "lints"
        );
        for r in &reports {
            if !r.analyzed {
                let why = r.limitation.map(|l| l.label()).unwrap_or("limited");
                eprintln!(
                    "{:<14} {:>5}     -     -    -    -   -      -        -      -  limited ({why})",
                    r.app, r.loops,
                );
                continue;
            }
            let status = if r.clean() { "ok" } else { "FAIL" };
            eprintln!(
                "{:<14} {:>5} {:>4} {:>5} {:>4} {:>4} {:>3} {:>5.1}% {:>8.4} {:>6}  {status}",
                r.app,
                r.loops,
                r.exchanges,
                r.fusion.legal_pairs(),
                r.groups.len(),
                r.elisions.len(),
                r.nt.len(),
                100.0 * r.traffic.elidable_fraction(),
                r.traffic.streaming_gain_bound(),
                r.violations.len(),
            );
            for v in &r.violations {
                eprintln!("    {v}");
            }
        }
    }

    if let Some(dir) = export_dir {
        std::fs::create_dir_all(dir).expect("create export dir");
        for r in reports.iter().filter(|r| r.analyzed) {
            let path = std::path::Path::new(dir).join(format!("{}.json", r.app));
            std::fs::write(&path, r.export_plan().to_json()).expect("write plan");
            if !json_only {
                eprintln!("wrote {}", path.display());
            }
        }
    }

    let total: usize = reports.iter().map(|r| r.violations.len()).sum();
    let apps = reports
        .iter()
        .map(|r| r.to_json())
        .collect::<Vec<_>>()
        .join(",");
    println!("{{\"total_violations\":{total},\"apps\":[{apps}]}}");
    total
}

/// `--static`: execution-free certification. Derives every app's
/// optimization certificates purely from its declared chain, then
/// cross-validates against the recording-derived certificates — any
/// divergence (either direction) or parametric instability counts toward
/// the gating total. The table shows per-app analyzer wall times: the
/// static path never executes a kernel, so it is the number to compare
/// against the cost of an instrumented recording run.
fn static_report(json_only: bool, export_dir: Option<&str>) -> usize {
    let statics = bwb_dslcheck::static_all();
    let checks = bwb_dslcheck::crosscheck_all();

    if !json_only {
        eprintln!(
            "{:<14} {:>5} {:>4} {:>4} {:>4} {:>3} {:>9} {:>9} {:>6}  status",
            "app", "loops", "exch", "grps", "elid", "nt", "static", "recorded", "viol"
        );
        for s in &statics {
            let r = &s.report;
            let cc = checks.iter().find(|c| c.app == r.app);
            let dynamic_us = cc
                .map(|c| format!("{:>7}us", c.dynamic_nanos / 1_000))
                .unwrap_or_else(|| "        -".into());
            if !r.analyzed && r.violations.is_empty() {
                let why = r.limitation.map(|l| l.label()).unwrap_or("limited");
                eprintln!(
                    "{:<14}     -    -    -    -   -         -         -      -  limited ({why})",
                    r.app
                );
                continue;
            }
            let diverged = cc.map(|c| !c.exact()).unwrap_or(false);
            let status = if r.clean() && !diverged { "ok" } else { "FAIL" };
            eprintln!(
                "{:<14} {:>5} {:>4} {:>4} {:>4} {:>3} {:>7}us {dynamic_us} {:>6}  {status}",
                r.app,
                r.loops,
                r.exchanges,
                r.groups.len(),
                r.elisions.len(),
                r.nt.len(),
                s.nanos / 1_000,
                r.violations.len(),
            );
            for v in &r.violations {
                eprintln!("    {v}");
            }
            if let Some(c) = cc {
                for v in c.divergent.iter().chain(&c.missed).chain(&c.unstable) {
                    eprintln!("    {v}");
                }
            }
        }
    }

    if let Some(dir) = export_dir {
        std::fs::create_dir_all(dir).expect("create export dir");
        for s in statics.iter().filter(|s| s.report.analyzed) {
            if let Some(plan) = bwb_dslcheck::static_plan(&s.report.app) {
                let path = std::path::Path::new(dir).join(format!("{}.static.json", s.report.app));
                std::fs::write(&path, plan.to_json()).expect("write static plan");
                if !json_only {
                    eprintln!("wrote {}", path.display());
                }
            }
        }
    }

    let static_violations: usize = statics.iter().map(|s| s.report.violations.len()).sum();
    let divergences: usize = checks
        .iter()
        .map(|c| c.divergent.len() + c.missed.len() + c.unstable.len())
        .sum();
    let apps = statics
        .iter()
        .map(|s| {
            format!(
                "{{\"static_ns\":{},\"report\":{}}}",
                s.nanos,
                s.report.to_json()
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let crosschecks = checks
        .iter()
        .map(|c| {
            let list = |vs: &[bwb_dslcheck::Violation]| {
                vs.iter().map(|v| v.to_json()).collect::<Vec<_>>().join(",")
            };
            format!(
                "{{\"app\":\"{}\",\"static_certs\":{},\"dynamic_certs\":{},\
                 \"static_ns\":{},\"dynamic_ns\":{},\
                 \"divergent\":[{}],\"missed\":[{}],\"unstable\":[{}]}}",
                c.app,
                c.static_certs,
                c.dynamic_certs,
                c.static_nanos,
                c.dynamic_nanos,
                list(&c.divergent),
                list(&c.missed),
                list(&c.unstable),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let total = static_violations + divergences;
    println!("{{\"total_violations\":{total},\"apps\":[{apps}],\"crosscheck\":[{crosschecks}]}}");
    total
}

fn parametric_report(json_only: bool) -> usize {
    let reports = bwb_dslcheck::parametric_check_all();

    if !json_only {
        eprintln!(
            "{:<14} {:>9} {:>5} {:>6} {:>6} {:>7} {:>6} {:>11} {:>8}  status",
            "app", "family", "base", "phases", "match", "dlfree", "collfr", "crosschecks", "ms"
        );
        for r in &reports {
            let status = if r.clean() { "ok" } else { "FAIL" };
            if let Some(c) = &r.cert {
                let passed = c
                    .crosschecks
                    .iter()
                    .filter(|x| x.concrete_clean && x.template_match)
                    .count();
                eprintln!(
                    "{:<14} {:>9} {:>5} {:>6} {:>6} {:>7} {:>6} {:>8}/{:<2} {:>8.0}  {status}",
                    r.app,
                    c.family,
                    c.base_ranks,
                    c.phases,
                    c.matching_complete,
                    c.deadlock_free,
                    c.collision_free_to,
                    passed,
                    c.crosschecks.len(),
                    c.verify_ms,
                );
            } else {
                eprintln!("{:<14} (template lift failed)  {status}", r.app);
            }
            for v in &r.violations {
                eprintln!("    {v}");
            }
        }
    }

    let total: usize = reports
        .iter()
        .map(|r| r.violations.len() + usize::from(!r.clean() && r.violations.is_empty()))
        .sum();
    let apps = reports
        .iter()
        .map(|r| r.to_json())
        .collect::<Vec<_>>()
        .join(",");
    println!("{{\"total_violations\":{total},\"apps\":[{apps}]}}");
    total
}

fn comm_report(json_only: bool) -> usize {
    let reports = bwb_dslcheck::comm_check_all();

    if !json_only {
        eprintln!(
            "{:<14} {:>5} {:>5} {:>5} {:>4} {:>4} {:>6} {:>5}  status",
            "app", "sends", "recvs", "barr", "coll", "phs", "dlfree", "cert"
        );
        for r in &reports {
            let status = if r.clean() { "ok" } else { "FAIL" };
            eprintln!(
                "{:<14} {:>5} {:>5} {:>5} {:>4} {:>4} {:>6} {:>5}  {status}",
                r.app,
                r.sends,
                r.recvs,
                r.barriers,
                r.collectives,
                r.phases.len(),
                r.deadlock_free,
                r.match_plan.certified(),
            );
            for v in &r.violations {
                eprintln!("    {v}");
            }
        }
    }

    let total: usize = reports.iter().map(|r| r.violations.len()).sum();
    let apps = reports
        .iter()
        .map(|r| r.to_json())
        .collect::<Vec<_>>()
        .join(",");
    println!("{{\"total_violations\":{total},\"apps\":[{apps}]}}");
    total
}

/// `--placement`: placecheck. Statically derive every distributed
/// registry app's per-pair byte flows, search the placement-candidate
/// space (policies × NUMA-domain permutations) under the Xeon MAX latency
/// model at N in {4, 16, 64, 112}, self-verify each emitted plan's
/// dominance and link-flow claims, and crosscheck the flow models
/// byte-exactly against recorded runs at N in {4, 16}. With
/// `--export-placements <dir>` every certified plan is written to
/// `<dir>/<app>.n<ranks>.json` for `Universe::run_placed` / serve.
fn placement_report(json_only: bool, export_dir: Option<&str>) -> usize {
    let reports = bwb_dslcheck::placement_check_all();

    if !json_only {
        eprintln!(
            "{:<14} {:>6} {:>5} {:>22} {:>12} {:>12} {:>7} {:>6}  status",
            "app", "ranks", "space", "best", "best_ns", "baseline_ns", "gain%", "viol"
        );
        for r in &reports {
            let status = if r.clean() { "ok" } else { "FAIL" };
            for p in &r.plans {
                let gain = if p.baseline_cost_ns > 0.0 {
                    100.0 * (1.0 - p.best_cost_ns / p.baseline_cost_ns)
                } else {
                    0.0
                };
                eprintln!(
                    "{:<14} {:>6} {:>5} {:>22} {:>12.0} {:>12.0} {:>6.1}% {:>6}  {status}",
                    r.app,
                    p.ranks,
                    p.space.len(),
                    p.best,
                    p.best_cost_ns,
                    p.baseline_cost_ns,
                    gain,
                    r.violations.len(),
                );
            }
            for v in &r.violations {
                eprintln!("    {v}");
            }
        }
    }

    if let Some(dir) = export_dir {
        std::fs::create_dir_all(dir).expect("create export dir");
        for r in &reports {
            for p in &r.plans {
                let path = std::path::Path::new(dir).join(format!("{}.n{}.json", p.app, p.ranks));
                std::fs::write(&path, p.to_json()).expect("write placement plan");
                if !json_only {
                    eprintln!("wrote {}", path.display());
                }
            }
        }
    }

    let total: usize = reports.iter().map(|r| r.violations.len()).sum();
    let apps = reports
        .iter()
        .map(|r| r.to_json())
        .collect::<Vec<_>>()
        .join(",");
    println!("{{\"total_violations\":{total},\"apps\":[{apps}]}}");
    total
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let json_only = args.iter().any(|a| a == "--json");
    let comm = args.iter().any(|a| a == "--comm");
    // `--parametric` (with `--comm`) additionally lifts each registered
    // app's schedule to a rank-parametric template, verifies it for every
    // world size in its topology family, and cross-checks the certificate
    // against live replays at N in {4, 16, 64, 112}. Output is JSONL: one
    // JSON object for the concrete report, one for the parametric certs.
    let parametric = args.iter().any(|a| a == "--parametric");
    // `--export-plans <dir>` serializes each analyzed app's optimization
    // plan (loop IR + fusion/elision/NT certificates) to `<dir>/<app>.json`
    // for plan-guided executor runs; it implies `--dataflow`.
    let export_dir = args.iter().position(|a| a == "--export-plans").map(|i| {
        args.get(i + 1)
            .expect("--export-plans needs a directory")
            .clone()
    });
    // `--static` switches to execution-free certification: derive every
    // app's certificates from its declared chain alone, cross-check them
    // against the recording-derived ones, and gate on any divergence. With
    // `--export-plans <dir>` it writes `<dir>/<app>.static.json` plans.
    let static_mode = args.iter().any(|a| a == "--static");
    // `--placement` switches to placecheck: static NUMA-placement
    // certification of the distributed registry apps (search + dominance
    // self-verification + byte-exact crosscheck against recorded runs).
    // `--export-placements <dir>` writes each certified plan JSON.
    let placement = args.iter().any(|a| a == "--placement");
    let export_placements = args
        .iter()
        .position(|a| a == "--export-placements")
        .map(|i| {
            args.get(i + 1)
                .expect("--export-placements needs a directory")
                .clone()
        });
    let dataflow = (args.iter().any(|a| a == "--dataflow") || export_dir.is_some())
        && !static_mode
        && !placement;

    let total = if placement || export_placements.is_some() {
        placement_report(json_only, export_placements.as_deref())
    } else if comm || parametric {
        let mut total = if comm { comm_report(json_only) } else { 0 };
        if parametric {
            total += parametric_report(json_only);
        }
        total
    } else if static_mode {
        static_report(json_only, export_dir.as_deref())
    } else if dataflow {
        dataflow_report(json_only, export_dir.as_deref())
    } else {
        access_report(json_only)
    };

    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
