//! # bwb-bench — the benchmark harness
//!
//! Two kinds of targets:
//!
//! * **Criterion benches** (`cargo bench`) measure the *real* kernels on
//!   the host: BabelStream, message-passing latency, one representative
//!   kernel per application, and the tiled vs untiled loop chain. These are
//!   the honest, runnable counterparts of the paper's measurements.
//! * **Figure binaries** (`cargo run -p bwb-bench --bin figN`) print each
//!   paper figure's reproduction — host measurements where the hardware
//!   allows, model outputs for the cross-platform comparisons — and write
//!   the data as CSV under `target/figures/`.

use std::path::PathBuf;

/// Directory the figure binaries write their CSVs to.
pub fn figures_dir() -> PathBuf {
    PathBuf::from("target/figures")
}

/// Run one figure binary's standard flow: render + save CSV.
pub fn emit(figure: bwb_core::Figure) {
    let exp = bwb_core::Experiment::new(figure);
    println!("{}", exp.render());
    match exp.save_csv(&figures_dir()) {
        Ok(path) => println!("\n[data written to {}]", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
